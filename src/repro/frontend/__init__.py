"""Python-subset frontend: source → lowered IR → scheduled CDFG.

The frontend compiles a restricted Python function (typed scalar
parameters with numeric defaults; assignments over ``+ - * /`` and
comparisons; ``if``/``else``; bounded ``while`` loops) into the same
scheduled, resource-bound CDFGs the hand-written workloads produce —
so every downstream stage (GT/LT transformation pipeline, flow-proof
engine, controller extraction, token/batched simulation, fault
campaigns, design-space exploration) consumes compiled kernels
unchanged.

>>> kernel = compile_kernel('''
... def accumulate(n: float = 5.0, step: float = 1.0) -> float:
...     total = 0.0
...     i = 0.0
...     while i < n:
...         total = total + step
...         i = i + 1.0
...     return total
... ''', bounds={"ALU": 2})
>>> cdfg = kernel.build()
>>> kernel.golden()["total"]
5.0

Registering a kernel (:func:`register_kernel`) places its builder and
golden model in the workload registries, after which ``synthesize``,
``prove_workload``, exploration sweeps and fault campaigns resolve it
by name like any built-in workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.cache.fingerprint import fingerprint_cdfg
from repro.cdfg.graph import Cdfg
from repro.errors import FrontendError
from repro.frontend.emit import emit_cdfg
from repro.frontend.ir import (
    DEFAULT_BOUNDS,
    DEFAULT_MAX_STEPS,
    KernelIR,
    interpret,
)
from repro.frontend.parse import parse_kernel
from repro.frontend.schedule import ListScheduler, Schedule, normalize_bounds

__all__ = [
    "CompiledKernel",
    "compile_kernel",
    "load_kernel_file",
    "parse_bounds",
    "register_kernel",
    "unregister_kernel",
    "DEFAULT_BOUNDS",
    "DEFAULT_MAX_STEPS",
]


@dataclass
class CompiledKernel:
    """A parsed, scheduled kernel, ready to build CDFGs.

    ``build``/``golden`` have the exact calling convention of the
    workload registries (keyword parameter overrides, or one ``params``
    dict), so a compiled kernel drops into ``WORKLOADS`` /
    ``GOLDEN_MODELS`` untouched.
    """

    ir: KernelIR
    schedule: Schedule
    bounds: Dict[str, int]
    source: str = ""
    max_steps: int = DEFAULT_MAX_STEPS
    _fingerprint: Optional[str] = field(default=None, repr=False)

    @property
    def name(self) -> str:
        return self.ir.name

    @property
    def params(self) -> Dict[str, float]:
        """Parameter defaults, in declaration order."""
        return dict(self.ir.params)

    def _values(self, params: Optional[Mapping[str, float]], kwargs: Mapping[str, float]) -> Dict[str, float]:
        values = dict(self.ir.params)
        for overrides in (params or {}), kwargs:
            for key, value in overrides.items():
                if key not in values:
                    raise FrontendError(
                        f"kernel {self.name!r} has no parameter {key!r} "
                        f"(parameters: {', '.join(values)})"
                    )
                values[key] = value
        return values

    def build(self, params: Optional[Mapping[str, float]] = None, **kwargs: float) -> Cdfg:
        """Build the scheduled CDFG for the given parameter values."""
        return emit_cdfg(
            self.ir,
            self.schedule,
            self._values(params, kwargs),
            max_steps=self.max_steps,
        )

    def golden(self, params: Optional[Mapping[str, float]] = None, **kwargs: float) -> Dict[str, float]:
        """Golden register file: the IR interpreted with the exact
        arithmetic of :mod:`repro.rtl.semantics`."""
        values = self._values(params, kwargs)
        env = interpret(self.ir, values, max_steps=self.max_steps).registers
        golden = {name: values[name] for name in self.ir.inputs}
        golden.update({name: env[name] for name in self.ir.written})
        return golden

    def fingerprint(self) -> str:
        """Content fingerprint of the default-parameter CDFG.

        Compiled CDFGs are ordinary :class:`~repro.cdfg.graph.Cdfg`
        objects, so the incremental cache dedupes them with the same
        :func:`~repro.cache.fingerprint.fingerprint_cdfg` digest as the
        built-in workloads.
        """
        if self._fingerprint is None:
            self._fingerprint = fingerprint_cdfg(self.build())
        return self._fingerprint

    def describe(self) -> Dict[str, object]:
        """Summary payload for CLI/report output."""
        ops = self.ir.ops()
        return {
            "kernel": self.name,
            "params": dict(self.ir.params),
            "inputs": list(self.ir.inputs),
            "outputs": list(self.ir.outputs),
            "operations": len(ops),
            "bounds": dict(self.bounds),
            "functional_units": list(self.schedule.functional_units()),
            "fingerprint": self.fingerprint(),
        }


def compile_kernel(
    source: str,
    kernel: Optional[str] = None,
    bounds: Optional[Mapping[str, int]] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> CompiledKernel:
    """Compile Python source text to a scheduled kernel.

    ``kernel`` selects a function by name when the source defines more
    than one; ``bounds`` caps functional-unit instances per class
    (e.g. ``{"MUL": 2, "ALU": 1}``).
    """
    ir = parse_kernel(source, kernel=kernel)
    normalized = normalize_bounds(bounds)
    schedule = ListScheduler(normalized).schedule(ir)
    return CompiledKernel(
        ir=ir,
        schedule=schedule,
        bounds=normalized,
        source=source,
        max_steps=max_steps,
    )


def load_kernel_file(
    path: str,
    kernel: Optional[str] = None,
    bounds: Optional[Mapping[str, int]] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> CompiledKernel:
    """Compile a kernel from a ``.py`` file on disk."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        raise FrontendError(f"cannot read kernel file {path!r}: {exc}") from exc
    return compile_kernel(source, kernel=kernel, bounds=bounds, max_steps=max_steps)


def parse_bounds(text: Optional[str]) -> Dict[str, int]:
    """Parse a CLI bounds spec like ``"MUL=2,ALU=1"``."""
    bounds: Dict[str, int] = {}
    for chunk in (text or "").split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        name, _, count = chunk.partition("=")
        if not _ or not name.strip():
            raise FrontendError(
                f"malformed resource bound {chunk!r}; expected CLASS=COUNT "
                "(e.g. MUL=2,ALU=1)"
            )
        try:
            bounds[name.strip()] = int(count)
        except ValueError:
            raise FrontendError(
                f"malformed resource bound {chunk!r}: {count!r} is not an integer"
            ) from None
    return normalize_bounds(bounds) if bounds else dict(DEFAULT_BOUNDS)


def register_kernel(
    compiled: CompiledKernel,
    name: Optional[str] = None,
    replace: bool = False,
) -> str:
    """Register a compiled kernel as a named workload.

    After registration, ``build_workload(name)`` / ``golden_reference``
    — and therefore ``synthesize``, ``prove_workload``, the explorer
    and the fault-campaign runner — resolve the kernel by name.
    """
    from repro.workloads import GOLDEN_MODELS, WORKLOADS

    workload = (name or compiled.name).strip().lower()
    if not replace and workload in WORKLOADS:
        raise FrontendError(
            f"workload {workload!r} is already registered; pass a different "
            "name or replace=True"
        )
    WORKLOADS[workload] = compiled.build
    GOLDEN_MODELS[workload] = compiled.golden
    return workload


def unregister_kernel(name: str) -> None:
    """Remove a kernel registered with :func:`register_kernel`."""
    from repro.workloads import GOLDEN_MODELS, WORKLOADS

    workload = name.strip().lower()
    WORKLOADS.pop(workload, None)
    GOLDEN_MODELS.pop(workload, None)
