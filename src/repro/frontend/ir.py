"""Intermediate representation of a frontend kernel.

The Python-subset parser (:mod:`repro.frontend.parse`) lowers a kernel
to this IR: a block-structured tree of three-address :class:`KernelOp`
items (each wrapping one :class:`~repro.rtl.ast.RtlStatement`)
interleaved with :class:`IfBlock` / :class:`WhileBlock` nodes.  The IR
is the contract between the three frontend stages:

- the parser produces it (compound expressions broken into ``_tN``
  temporaries, loop/branch conditions materialized into ``_cN``
  condition registers);
- the list scheduler (:mod:`repro.frontend.schedule`) annotates every
  op with a ``(step, fu)`` assignment;
- the emitter (:mod:`repro.frontend.emit`) replays it through
  :class:`~repro.cdfg.builder.CdfgBuilder`.

:func:`interpret` executes the IR directly with the exact arithmetic
of :mod:`repro.rtl.semantics` — the same code path the CDFG token
simulator uses — so the interpreter doubles as the kernel's *golden
model*: every synthesis level of the compiled design must reproduce
its register file bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import KernelBoundError
from repro.rtl.ast import RtlStatement
from repro.rtl.semantics import evaluate_expr, execute_statement

#: Functional-unit class of each RTL operator.  Multiplies and divides
#: get their own (expensive) unit classes; additive operations,
#: comparisons and register copies (operator ``None``) share the ALU.
OPERATOR_CLASSES: Dict[Optional[str], str] = {
    "*": "MUL",
    "/": "DIV",
    "+": "ALU",
    "-": "ALU",
    "<": "ALU",
    "<=": "ALU",
    ">": "ALU",
    ">=": "ALU",
    "==": "ALU",
    "!=": "ALU",
    None: "ALU",  # register copy
}

#: Default per-class instance counts when no bounds are given.
DEFAULT_BOUNDS: Dict[str, int] = {"ALU": 1, "MUL": 1}

#: Iteration budget of the IR interpreter: the frontend only admits
#: *bounded* loops, and this is where the bound is enforced.
DEFAULT_MAX_STEPS = 1 << 16


def fu_class_of(statement: RtlStatement) -> str:
    """Functional-unit class a statement executes on."""
    return OPERATOR_CLASSES[statement.operator]


@dataclass
class KernelOp:
    """One three-address operation, annotated by the scheduler."""

    statement: RtlStatement
    #: position in the lowered program (global, pre-scheduling); the
    #: scheduler uses it as the deterministic tie-break and the emitter
    #: to restore write-after-read order inside one schedule step
    index: int
    #: control step within the op's scheduling run (set by the scheduler)
    step: int = -1
    #: bound functional-unit instance, e.g. ``"MUL2"`` (set by the scheduler)
    fu: str = ""

    @property
    def fu_class(self) -> str:
        return fu_class_of(self.statement)

    def __str__(self) -> str:
        return str(self.statement)


@dataclass
class IfBlock:
    """A two-way branch on the truth of ``condition`` (a register).

    Non-trivial conditions are materialized by the parser into a
    :class:`KernelOp` writing ``condition`` immediately before the
    block, so the register always holds the freshly evaluated value
    when the branch executes.
    """

    condition: str
    then_items: List["Item"] = field(default_factory=list)
    else_items: List["Item"] = field(default_factory=list)


@dataclass
class WhileBlock:
    """A bounded loop on the truth of ``condition`` (a register).

    ``latch`` names the condition-recomputation op the parser appended
    to the body (``None`` when the source condition is a bare register
    the body updates itself).  ``entry_statement`` re-evaluates the
    condition at loop entry; for a *top-level* loop it is folded into
    the condition register's initial value at build time, for a nested
    loop the parser emits it as a real pre-header op in the enclosing
    block instead.
    """

    condition: str
    body: List["Item"] = field(default_factory=list)
    entry_statement: Optional[RtlStatement] = None
    #: True when ``entry_statement`` is folded into the initial
    #: register file (top-level loops) rather than emitted as an op
    folded_entry: bool = False


Item = Union[KernelOp, IfBlock, WhileBlock]


@dataclass
class KernelIR:
    """A lowered kernel: parameters, register sets and the item tree."""

    name: str
    items: List[Item]
    #: parameter name -> default value, in declaration order
    params: Dict[str, float]
    #: parameters never written by the kernel: read-only CDFG inputs
    inputs: Tuple[str, ...]
    #: every register the kernel writes (params, locals, temporaries,
    #: condition registers), in first-write order
    written: Tuple[str, ...]
    #: registers named by a trailing ``return`` statement (reporting only)
    outputs: Tuple[str, ...] = ()

    def ops(self) -> List[KernelOp]:
        """All :class:`KernelOp` items, in program order."""
        return walk_ops(self.items)

    def registers(self) -> Tuple[str, ...]:
        """Initial register file names (written registers, since inputs
        are declared separately on the CDFG)."""
        return self.written


def walk_ops(items: List[Item]) -> List[KernelOp]:
    """All :class:`KernelOp` items of an item tree, in program order."""
    collected: List[KernelOp] = []

    def visit(level: List[Item]) -> None:
        for item in level:
            if isinstance(item, KernelOp):
                collected.append(item)
            elif isinstance(item, IfBlock):
                visit(item.then_items)
                visit(item.else_items)
            else:
                visit(item.body)

    visit(items)
    return collected


@dataclass
class Interpretation:
    """Result of :func:`interpret`: the golden register file plus the
    loop-entry condition values the emitter folds into initial state."""

    registers: Dict[str, float]
    #: id(WhileBlock) -> condition value at (first) loop entry, for
    #: every ``folded_entry`` loop
    entry_conditions: Dict[int, float]
    steps: int


def interpret(
    ir: KernelIR,
    values: Dict[str, float],
    max_steps: int = DEFAULT_MAX_STEPS,
) -> Interpretation:
    """Execute the lowered IR on concrete parameter ``values``.

    Uses :func:`repro.rtl.semantics.execute_statement` for every op, so
    arithmetic (including the int-0/1 results of comparisons) is
    bit-identical to the CDFG token simulator.  Raises
    :class:`~repro.errors.KernelBoundError` after ``max_steps``
    executed ops — the boundedness guarantee of the subset.
    """
    env: Dict[str, float] = dict(values)
    for register in ir.written:
        env.setdefault(register, 0.0)
    result = Interpretation(registers=env, entry_conditions={}, steps=0)

    def run(items: List[Item]) -> None:
        for item in items:
            if isinstance(item, KernelOp):
                _tick(result, ir, max_steps)
                execute_statement(item.statement, env)
            elif isinstance(item, IfBlock):
                if env[item.condition]:
                    run(item.then_items)
                else:
                    run(item.else_items)
            else:
                if item.folded_entry:
                    assert item.entry_statement is not None
                    value = evaluate_expr(item.entry_statement.expr, env)
                    env[item.condition] = value
                    result.entry_conditions.setdefault(id(item), value)
                while env[item.condition]:
                    run(item.body)

    run(ir.items)
    return result


def _tick(result: Interpretation, ir: KernelIR, max_steps: int) -> None:
    result.steps += 1
    if result.steps > max_steps:
        raise KernelBoundError(
            f"kernel {ir.name!r} exceeded its execution bound of "
            f"{max_steps} operations — the frontend subset only admits "
            "bounded loops (is a loop condition never updated?)"
        )
