"""Parse a restricted Python subset into the frontend IR.

The compilable subset, by design exactly expressive enough for the
paper's style of behavioural kernels (DIFFEQ, GCD, FIR, ...):

- one function definition with **typed scalar parameters**
  (``x: float = 0.0`` / ``n: int = 8``); every parameter needs a
  default, which becomes the workload's default input vector;
- **assignments** to plain names (``y = t1 + t2``, ``x += dx``);
  right-hand sides are arbitrarily nested expressions over names,
  non-negative numeric literals and the binary operators
  ``+ - * /`` and comparisons ``< <= > >= == !=`` — the parser breaks
  nesting into ``_tN`` temporaries, one RTL statement per operation;
- **``if``/``else``** on a bare name or a single comparison;
- **bounded ``while``** loops on a bare name or a single comparison
  (boundedness is enforced by the IR interpreter's step budget);
- an optional trailing **``return``** of a name or tuple of names
  (recorded as the kernel's declared outputs).

Everything else — calls, attributes, subscripts, ``for``, unary minus,
chained comparisons, ``and``/``or``, non-scalar types — is rejected
with a :class:`~repro.errors.FrontendError` naming the source line.

Condition lowering follows the hand-built workloads' idiom: a
comparison condition is materialized into a fresh ``_cN`` register.
For ``while`` loops the re-evaluation is appended to the body (the
*latch* op, mirroring DIFFEQ's ``C := X < a``); the loop-entry value is
folded into the initial register file for top-level loops and emitted
as a real pre-header op for nested ones (where the entry value is not
a build-time constant).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import FrontendError
from repro.frontend.ir import IfBlock, Item, KernelIR, KernelOp, WhileBlock, walk_ops
from repro.rtl.ast import BINARY_OPERATORS, BinaryExpr, Operand, RtlStatement

_BINOPS = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.Div: "/",
}

_CMPOPS = {
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
    ast.Eq: "==",
    ast.NotEq: "!=",
}

_PARAM_TYPES = ("float", "int")


def _fail(reason: str, node: Optional[ast.AST] = None) -> "FrontendError":
    lineno = getattr(node, "lineno", None)
    return FrontendError(reason, lineno=lineno)


class _Lowerer:
    """Stateful lowering of one function body."""

    def __init__(self, name: str, params: Dict[str, float]):
        self.name = name
        self.params = params
        self.defined: Set[str] = set(params)
        self.written: List[str] = []
        self._written_set: Set[str] = set()
        self._temp_count = 0
        self._cond_count = 0
        self.outputs: Tuple[str, ...] = ()

    # -- registers ------------------------------------------------------
    def _record_write(self, register: str) -> None:
        self.defined.add(register)
        if register not in self._written_set:
            self._written_set.add(register)
            self.written.append(register)

    def _fresh(self, prefix: str, count: int) -> str:
        name = f"_{prefix}{count}"
        while name in self.defined:
            count += 1
            name = f"_{prefix}{count}"
        return name

    def _fresh_temp(self) -> str:
        name = self._fresh("t", self._temp_count)
        self._temp_count += 1
        return name

    def _fresh_cond(self) -> str:
        name = self._fresh("c", self._cond_count)
        self._cond_count += 1
        return name

    # -- expressions ----------------------------------------------------
    def _operand(self, node: ast.expr, items: List[Item]) -> Operand:
        """Lower an expression to a single operand, spilling to temps."""
        if isinstance(node, ast.Name):
            if node.id not in self.defined:
                raise _fail(
                    f"register {node.id!r} read before assignment", node
                )
            return Operand(register=node.id)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(node.value, (int, float)):
                raise _fail(
                    f"unsupported literal {node.value!r} (only int/float)", node
                )
            if node.value < 0:
                raise _fail(
                    "negative literals are outside the subset "
                    "(write '0 - x' instead of unary minus)",
                    node,
                )
            return Operand(literal=node.value)
        if isinstance(node, (ast.BinOp, ast.Compare)):
            temp = self._fresh_temp()
            self._emit_assign(temp, node, items)
            return Operand(register=temp)
        raise _fail(
            f"unsupported expression {ast.dump(node)[:40]!r} — the subset "
            "admits names, non-negative literals, binary arithmetic and "
            "single comparisons",
            node,
        )

    def _expr(self, node: ast.expr, items: List[Item]):
        """Lower an expression into an RTL Expr (operand or one binop)."""
        if isinstance(node, ast.BinOp):
            op = _BINOPS.get(type(node.op))
            if op is None:
                raise _fail(
                    f"unsupported operator {type(node.op).__name__} "
                    f"(supported: {' '.join(sorted(set(_BINOPS.values())))})",
                    node,
                )
            left = self._operand(node.left, items)
            right = self._operand(node.right, items)
            return BinaryExpr(op=op, left=left, right=right)
        if isinstance(node, ast.Compare):
            return self._comparison(node, items)
        if isinstance(node, ast.UnaryOp):
            raise _fail(
                "unary operators are outside the subset "
                "(write '0 - x' instead of '-x')",
                node,
            )
        if isinstance(node, ast.BoolOp):
            raise _fail(
                "and/or are outside the subset (nest if blocks instead)", node
            )
        return self._operand(node, items)

    def _comparison(self, node: ast.Compare, items: List[Item]) -> BinaryExpr:
        if len(node.ops) != 1 or len(node.comparators) != 1:
            raise _fail("chained comparisons are outside the subset", node)
        op = _CMPOPS.get(type(node.ops[0]))
        if op is None:
            raise _fail(
                f"unsupported comparison {type(node.ops[0]).__name__}", node
            )
        assert op in BINARY_OPERATORS
        left = self._operand(node.left, items)
        right = self._operand(node.comparators[0], items)
        return BinaryExpr(op=op, left=left, right=right)

    def _emit_assign(self, dest: str, value: ast.expr, items: List[Item]) -> None:
        expr = self._expr(value, items)
        items.append(KernelOp(RtlStatement(dest=dest, expr=expr), index=-1))
        self._record_write(dest)

    # -- conditions -----------------------------------------------------
    def _condition(
        self, node: ast.expr, items: List[Item]
    ) -> Tuple[str, Optional[RtlStatement]]:
        """Lower a branch/loop condition.

        Returns ``(register, statement)``: for a bare name the register
        itself and ``None``; otherwise a fresh ``_cN`` register plus the
        statement that (re)computes it.  The caller decides where the
        statement lands (pre-block op, loop latch, folded entry).
        """
        if isinstance(node, ast.Name):
            if node.id not in self.defined:
                raise _fail(f"condition register {node.id!r} never assigned", node)
            return node.id, None
        if isinstance(node, ast.Compare):
            for operand in (node.left, *node.comparators):
                if not isinstance(operand, (ast.Name, ast.Constant)):
                    raise _fail(
                        "condition operands must be names or literals — "
                        "assign compound expressions to a register first",
                        node,
                    )
            register = self._fresh_cond()
            expr = self._comparison(node, items)
            self._record_write(register)
            return register, RtlStatement(dest=register, expr=expr)
        raise _fail(
            "conditions must be a bare name or a single comparison "
            "(e.g. 'while x < a:' or 'if d:')",
            node,
        )

    # -- statements -----------------------------------------------------
    def lower_body(self, body: Sequence[ast.stmt], depth: int) -> List[Item]:
        items: List[Item] = []
        for position, statement in enumerate(body):
            last = position == len(body) - 1
            if isinstance(statement, ast.Assign):
                if len(statement.targets) != 1 or not isinstance(
                    statement.targets[0], ast.Name
                ):
                    raise _fail(
                        "assignments must target a single plain name", statement
                    )
                self._emit_assign(statement.targets[0].id, statement.value, items)
            elif isinstance(statement, ast.AugAssign):
                if not isinstance(statement.target, ast.Name):
                    raise _fail("augmented assignment must target a name", statement)
                op = _BINOPS.get(type(statement.op))
                if op is None:
                    raise _fail(
                        f"unsupported augmented operator "
                        f"{type(statement.op).__name__}",
                        statement,
                    )
                target = statement.target.id
                if target not in self.defined:
                    raise _fail(
                        f"register {target!r} read before assignment", statement
                    )
                right = self._operand(statement.value, items)
                items.append(
                    KernelOp(
                        RtlStatement(
                            dest=target,
                            expr=BinaryExpr(
                                op=op, left=Operand(register=target), right=right
                            ),
                        ),
                        index=-1,
                    )
                )
                self._record_write(target)
            elif isinstance(statement, ast.If):
                register, cond = self._condition(statement.test, items)
                if cond is not None:
                    items.append(KernelOp(cond, index=-1))
                block = IfBlock(condition=register)
                block.then_items = self.lower_body(statement.body, depth + 1)
                block.else_items = self.lower_body(statement.orelse, depth + 1)
                items.append(block)
            elif isinstance(statement, ast.While):
                if statement.orelse:
                    raise _fail("while/else is outside the subset", statement)
                register, cond = self._condition(statement.test, items)
                block = WhileBlock(condition=register)
                block.body = self.lower_body(statement.body, depth + 1)
                if cond is not None:
                    block.entry_statement = cond
                    # latch: recompute the condition at the end of the body
                    block.body.append(KernelOp(cond, index=-1))
                    if depth == 0:
                        # loop entry value is a build-time constant:
                        # folded into the initial register file
                        block.folded_entry = True
                    else:
                        # entry value depends on the enclosing iteration:
                        # evaluate it with a real pre-header op
                        items.append(KernelOp(cond, index=-1))
                items.append(block)
            elif isinstance(statement, ast.Return):
                if depth != 0 or not last:
                    raise _fail(
                        "return is only allowed as the kernel's final statement",
                        statement,
                    )
                self.outputs = self._return_names(statement)
            elif isinstance(statement, ast.Pass):
                continue
            elif isinstance(statement, ast.Expr) and isinstance(
                statement.value, ast.Constant
            ) and isinstance(statement.value.value, str):
                continue  # docstring
            else:
                raise _fail(
                    f"unsupported statement {type(statement).__name__} — the "
                    "subset admits assignments, if/else, bounded while loops "
                    "and a trailing return",
                    statement,
                )
        return items

    def _return_names(self, statement: ast.Return) -> Tuple[str, ...]:
        value = statement.value
        if value is None:
            return ()
        elements = value.elts if isinstance(value, ast.Tuple) else [value]
        names = []
        for element in elements:
            if not isinstance(element, ast.Name) or element.id not in self.defined:
                raise _fail(
                    "return values must be names assigned by the kernel", statement
                )
            names.append(element.id)
        return tuple(names)


def _parse_params(function: ast.FunctionDef) -> Dict[str, float]:
    """Typed scalar parameters with defaults, in declaration order."""
    args = function.args
    if args.vararg or args.kwarg or args.kwonlyargs or args.posonlyargs:
        raise _fail(
            "only plain positional parameters are supported", function
        )
    defaults: List[ast.expr] = list(args.defaults)
    missing = len(args.args) - len(defaults)
    params: Dict[str, float] = {}
    for position, arg in enumerate(args.args):
        annotation = arg.annotation
        if not (isinstance(annotation, ast.Name) and annotation.id in _PARAM_TYPES):
            raise _fail(
                f"parameter {arg.arg!r} needs a scalar type annotation "
                f"({' or '.join(_PARAM_TYPES)})",
                arg,
            )
        if position < missing:
            raise _fail(
                f"parameter {arg.arg!r} needs a default value "
                "(it becomes the workload's default input)",
                arg,
            )
        default = defaults[position - missing]
        if not (
            isinstance(default, ast.Constant)
            and isinstance(default.value, (int, float))
            and not isinstance(default.value, bool)
        ):
            raise _fail(
                f"default of parameter {arg.arg!r} must be a numeric literal",
                arg,
            )
        if arg.arg in params:
            raise _fail(f"duplicate parameter {arg.arg!r}", arg)
        params[arg.arg] = float(default.value)
    return params


def _find_function(
    module: ast.Module, kernel: Optional[str]
) -> ast.FunctionDef:
    functions = [
        node for node in module.body if isinstance(node, ast.FunctionDef)
    ]
    if kernel is not None:
        for function in functions:
            if function.name == kernel:
                return function
        raise FrontendError(
            f"no kernel function named {kernel!r} "
            f"(found: {', '.join(f.name for f in functions) or 'none'})"
        )
    if len(functions) != 1:
        raise FrontendError(
            f"expected exactly one kernel function, found {len(functions)} "
            "(pass kernel=<name> to pick one)"
        )
    return functions[0]


def parse_kernel(source: str, kernel: Optional[str] = None) -> KernelIR:
    """Parse ``source`` (Python text) into a :class:`KernelIR`.

    ``kernel`` selects a function by name when the source defines more
    than one.  Raises :class:`~repro.errors.FrontendError` for anything
    outside the subset.
    """
    try:
        module = ast.parse(source)
    except SyntaxError as exc:
        raise FrontendError(f"invalid Python: {exc.msg}", lineno=exc.lineno) from None
    function = _find_function(module, kernel)
    params = _parse_params(function)
    lowerer = _Lowerer(function.name, params)
    items = lowerer.lower_body(function.body, depth=0)

    written = tuple(lowerer.written)
    written_set = set(written)
    inputs = tuple(name for name in params if name not in written_set)
    for index, op in enumerate(walk_ops(items)):
        op.index = index
    return KernelIR(
        name=function.name,
        items=items,
        params=params,
        inputs=inputs,
        written=written,
        outputs=lowerer.outputs,
    )
