"""Emission of a scheduled kernel IR through :class:`CdfgBuilder`.

The emitter replays the item tree in program order, with one twist: the
ops of each straight-line run are emitted in ``(step, program index)``
order, so the builder's program-order arc derivation reconstructs the
scheduler's decisions.  Two invariants make this sound:

- strict (read-after-write / write-after-write) dependences always
  cross a step boundary, so producers are emitted before consumers;
- a weak (write-after-read) pair sharing a step keeps reader before
  writer via the index tie-break, so register-allocation arcs still
  point from the old value's reader to the overwrite.

LOOP/ENDLOOP nodes are bound to the functional unit of the loop latch
(the op computing the condition at the end of the body), falling back
to the first ALU instance for bare-register conditions.  IF/ENDIF
nodes are bound to the single instance hosting the arms (see
:meth:`~repro.frontend.schedule.ListScheduler._if_host`): the
extraction requires the decision and every conditional op on one
controller, so the scheduler pins all arm ops to one instance and the
emitter binds the IF to it.  The condition itself may still be
computed on any unit — its producing channel keeps the done behind
the register write (``Signal.guards_condition``), so the host samples
a settled value.

Top-level loops have their entry condition *folded*: instead of a
pre-header op, the condition register's initial value is set to the
condition evaluated at loop entry (parameters are concrete at build
time, so this is a constant).  :func:`repro.frontend.ir.interpret`
records exactly those values while producing the golden register file.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cdfg.builder import CdfgBuilder
from repro.cdfg.graph import Cdfg
from repro.frontend.ir import (
    DEFAULT_MAX_STEPS,
    IfBlock,
    Item,
    KernelIR,
    KernelOp,
    WhileBlock,
    interpret,
    walk_ops,
)
from repro.frontend.schedule import Schedule


def emit_cdfg(
    ir: KernelIR,
    schedule: Schedule,
    values: Dict[str, float],
    name: Optional[str] = None,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> Cdfg:
    """Build the CDFG of a scheduled kernel for concrete ``values``."""
    interp = interpret(ir, values, max_steps=max_steps)
    builder = CdfgBuilder(name or ir.name)
    for fu in schedule.functional_units():
        builder.functional_unit(fu)
    for register in ir.inputs:
        builder.input(register, values[register])

    default_fu = _default_fu(schedule)
    _emit_items(builder, ir.items, default_fu)

    initial: Dict[str, float] = {}
    for register in ir.written:
        initial[register] = values.get(register, 0.0)
    for loop, value in _folded_entries(ir.items, interp.entry_conditions):
        initial[loop.condition] = value
    return builder.build(initial=initial)


def _default_fu(schedule: Schedule) -> str:
    """Fallback control-node binding: the first ALU, else the first FU."""
    alus = schedule.instances.get("ALU")
    if alus:
        return alus[0]
    units = schedule.functional_units()
    return units[0] if units else "ALU1"


def _condition_fu(items: Sequence[Item], position: int, condition: str, default: str) -> str:
    """Host FU of the block at ``position``.

    A while-block is hosted on its latch (the op computing the
    condition at the end of the body).  An if-block is hosted on the
    instance its arm ops were pinned to by the scheduler — hosting it
    anywhere else (e.g. on the unit that computes the condition) puts
    conditional ops on a non-deciding controller, which the burst-mode
    extraction cannot express.  Empty arms fall back to the
    materialized comparison's unit.
    """
    block = items[position]
    if isinstance(block, WhileBlock):
        for item in reversed(block.body):
            if isinstance(item, KernelOp) and item.statement.dest == condition:
                return item.fu or default
        return default
    assert isinstance(block, IfBlock)
    for op in walk_ops(list(block.then_items) + list(block.else_items)):
        if op.fu:
            return op.fu
    for i in range(position - 1, -1, -1):
        item = items[i]
        if not isinstance(item, KernelOp):
            break
        if item.statement.dest == condition:
            return item.fu or default
    return default


def _emit_items(builder: CdfgBuilder, items: Sequence[Item], default_fu: str) -> None:
    run: List[KernelOp] = []

    def flush() -> None:
        for op in sorted(run, key=lambda op: (op.step, op.index)):
            builder.op(str(op.statement), fu=op.fu or default_fu)
        run.clear()

    for position, item in enumerate(items):
        if isinstance(item, KernelOp):
            run.append(item)
            continue
        flush()
        fu = _condition_fu(items, position, item.condition, default_fu)
        if isinstance(item, WhileBlock):
            with builder.loop(item.condition, fu=fu):
                _emit_items(builder, item.body, default_fu)
        else:
            with builder.if_block(item.condition, fu=fu) as branch:
                _emit_items(builder, item.then_items, default_fu)
                with branch.otherwise():
                    _emit_items(builder, item.else_items, default_fu)
    flush()


def _folded_entries(items: Sequence[Item], entry_conditions: Dict[int, float]):
    """Yield every folded-entry loop with its recorded entry value."""
    for item in items:
        if isinstance(item, WhileBlock):
            if item.folded_entry and id(item) in entry_conditions:
                yield item, entry_conditions[id(item)]
            yield from _folded_entries(item.body, entry_conditions)
        elif isinstance(item, IfBlock):
            yield from _folded_entries(item.then_items, entry_conditions)
            yield from _folded_entries(item.else_items, entry_conditions)
