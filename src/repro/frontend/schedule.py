"""Resource-bounded list scheduling of the frontend IR.

In the style of polyphony's ``BlockBoundedListScheduler``: scheduling
never crosses a block boundary.  Each *run* — a maximal sequence of
straight-line ops between nested blocks — is scheduled independently
with a priority worklist:

1. build the run's dependence graph (read-after-write and
   write-after-write edges are *strict*: consumer starts at least one
   step after producer; write-after-read edges are *weak*: the
   overwrite may share the reader's step, since a datapath register
   presents its old value while the new one is latched);
2. derive each op's priority from its **ALAP slack** (longest-path
   ASAP/ALAP levels under unit latency) — zero-slack ops are on the
   run's critical path and are placed first;
3. walk control steps with a worklist: at each step, ready ops are
   placed in slack order onto the lowest-numbered free instance of
   their unit class until the per-class bound (``{"MUL": 2, "ALU": 1}``)
   is exhausted, then the step advances.

The result annotates every :class:`~repro.frontend.ir.KernelOp` with a
``(step, fu)`` pair.  Emission order inside a run is ``(step, program
index)``, which keeps the sequential semantics intact: strict edges
separate steps, and a weak (write-after-read) pair sharing a step keeps
its original reader-before-writer order via the index tie-break.

One exception to free instance choice: everything inside an if-block's
arms is pinned to a *single* instance (see :meth:`ListScheduler._if_host`)
— the distributed-control extraction requires the decision node and
all conditional ops on one controller, the way GCD binds the same
subtractor in both branches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.errors import FrontendError
from repro.frontend.ir import (
    DEFAULT_BOUNDS,
    IfBlock,
    Item,
    KernelIR,
    KernelOp,
    OPERATOR_CLASSES,
    WhileBlock,
    walk_ops,
)

#: Unit classes a bounds mapping may mention.
KNOWN_CLASSES: Tuple[str, ...] = tuple(sorted(set(OPERATOR_CLASSES.values())))


def normalize_bounds(bounds: Optional[Mapping[str, int]]) -> Dict[str, int]:
    """Validate and normalize a per-class resource-bound mapping."""
    normalized = dict(DEFAULT_BOUNDS)
    for name, count in (bounds or {}).items():
        cls = name.strip().upper()
        if cls not in KNOWN_CLASSES:
            raise FrontendError(
                f"unknown functional-unit class {name!r} in resource bounds "
                f"(known: {', '.join(KNOWN_CLASSES)})"
            )
        if not isinstance(count, int) or count < 1:
            raise FrontendError(
                f"resource bound for {cls} must be a positive integer, "
                f"got {count!r}"
            )
        normalized[cls] = count
    return normalized


@dataclass
class Schedule:
    """The kernel-wide scheduling result."""

    #: class -> instance names actually used, e.g. {"MUL": ("MUL1", "MUL2")}
    instances: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: per-run tables: list of (op, step, fu) in emission order
    runs: List[List[Tuple[KernelOp, int, str]]] = field(default_factory=list)

    def functional_units(self) -> Tuple[str, ...]:
        """All bound instance names, class-major, index-minor."""
        ordered: List[str] = []
        for cls in sorted(self.instances):
            ordered.extend(self.instances[cls])
        return tuple(ordered)

    def max_parallelism(self) -> Dict[str, int]:
        """Peak per-step instance usage of each class, over all runs."""
        peak: Dict[str, int] = {}
        for run in self.runs:
            usage: Dict[Tuple[int, str], int] = {}
            for op, step, __ in run:
                key = (step, op.fu_class)
                usage[key] = usage.get(key, 0) + 1
            for (__, cls), count in usage.items():
                peak[cls] = max(peak.get(cls, 0), count)
        return peak


class ListScheduler:
    """ALAP-slack priority-worklist scheduler under per-class bounds."""

    def __init__(self, bounds: Optional[Mapping[str, int]] = None):
        self.bounds = normalize_bounds(bounds)
        self._used: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def schedule(self, ir: KernelIR) -> Schedule:
        """Annotate every op of ``ir`` with a ``(step, fu)`` assignment."""
        result = Schedule()
        self._used = {}
        self._schedule_items(ir.items, result)
        result.instances = {
            cls: tuple(f"{cls}{i}" for i in range(1, self._used[cls] + 1))
            for cls in sorted(self._used)
        }
        return result

    def _schedule_items(
        self,
        items: Sequence[Item],
        result: Schedule,
        pinned: Optional[str] = None,
    ) -> None:
        run: List[KernelOp] = []
        for item in items:
            if isinstance(item, KernelOp):
                run.append(item)
                continue
            if run:
                result.runs.append(self._schedule_run(run, pinned))
                run = []
            if isinstance(item, IfBlock):
                host = pinned or self._if_host(item)
                self._schedule_items(item.then_items, result, host)
                self._schedule_items(item.else_items, result, host)
            else:
                assert isinstance(item, WhileBlock)
                self._schedule_items(item.body, result, pinned)
        if run:
            result.runs.append(self._schedule_run(run, pinned))

    def _if_host(self, block: IfBlock) -> Optional[str]:
        """The single instance hosting an if-block's arms.

        The distributed-control extraction only supports conditionals
        in which the decision node and every conditional operation live
        on *one* controller (the GCD pattern: "the same subtractor unit
        bound in both branches").  A unit active in only one arm — or
        in an arm it does not host — cannot be written as a burst-mode
        machine: on the untaken path it would have to fire on an empty
        input burst.  So all ops of both arms (and any nested blocks)
        serialize onto instance 1 of the first arm op's class, and the
        emitter binds the IF/ENDIF nodes to the same instance.
        """
        ops = walk_ops(list(block.then_items) + list(block.else_items))
        if not ops:
            return None
        cls = ops[0].fu_class
        self._used[cls] = max(self._used.get(cls, 0), 1)
        return f"{cls}1"

    # ------------------------------------------------------------------
    def _schedule_run(
        self, ops: List[KernelOp], pinned: Optional[str] = None
    ) -> List[Tuple[KernelOp, int, str]]:
        strict, weak = _dependence_edges(ops)
        slack = _alap_slack(ops, strict, weak)

        placed: Dict[int, int] = {}  # local index -> step
        order = sorted(range(len(ops)), key=lambda i: (slack[i], ops[i].index))
        step = 0
        guard = 0
        while len(placed) < len(ops):
            busy: Dict[str, Set[int]] = {}  # class -> occupied instance numbers
            progress = True
            while progress:
                progress = False
                for i in order:
                    if i in placed:
                        continue
                    if not all(j in placed and placed[j] < step for j in strict[i]):
                        continue
                    if not all(j in placed for j in weak[i]):
                        continue
                    if pinned is not None:
                        # single-host conditional region: one op per step
                        occupied = busy.setdefault("__host__", set())
                        if occupied:
                            continue
                        occupied.add(1)
                        placed[i] = step
                        ops[i].step = step
                        ops[i].fu = pinned
                        progress = True
                        continue
                    cls = ops[i].fu_class
                    occupied = busy.setdefault(cls, set())
                    if len(occupied) >= self.bounds.get(cls, 1):
                        continue
                    instance = min(
                        n
                        for n in range(1, self.bounds.get(cls, 1) + 1)
                        if n not in occupied
                    )
                    occupied.add(instance)
                    placed[i] = step
                    ops[i].step = step
                    ops[i].fu = f"{cls}{instance}"
                    self._used[cls] = max(self._used.get(cls, 0), instance)
                    progress = True
            step += 1
            guard += 1
            if guard > 2 * len(ops) + 4:  # pragma: no cover - defensive
                raise FrontendError("list scheduler failed to converge")
        return [
            (op, op.step, op.fu)
            for op in sorted(ops, key=lambda op: (op.step, op.index))
        ]


def _dependence_edges(
    ops: List[KernelOp],
) -> Tuple[List[Set[int]], List[Set[int]]]:
    """Per-op strict (RAW/WAW) and weak (WAR) predecessor sets."""
    strict: List[Set[int]] = [set() for __ in ops]
    weak: List[Set[int]] = [set() for __ in ops]
    last_write: Dict[str, int] = {}
    readers: Dict[str, List[int]] = {}
    for i, op in enumerate(ops):
        statement = op.statement
        for register in sorted(statement.reads):
            if register in last_write:
                strict[i].add(last_write[register])
            readers.setdefault(register, []).append(i)
        dest = statement.dest
        for reader in readers.get(dest, ()):  # write-after-read
            if reader != i:
                weak[i].add(reader)
        if dest in last_write:  # write-after-write
            strict[i].add(last_write[dest])
        last_write[dest] = i
        readers[dest] = []
    return strict, weak


def _alap_slack(
    ops: List[KernelOp],
    strict: List[Set[int]],
    weak: List[Set[int]],
) -> List[int]:
    """ALAP - ASAP slack per op (unit latency, unbounded resources)."""
    count = len(ops)
    asap = [0] * count
    for i in range(count):  # predecessors always precede in program order
        for j in strict[i]:
            asap[i] = max(asap[i], asap[j] + 1)
        for j in weak[i]:
            asap[i] = max(asap[i], asap[j])
    depth = max(asap, default=0)
    alap = [depth] * count
    succs_strict: List[Set[int]] = [set() for __ in ops]
    succs_weak: List[Set[int]] = [set() for __ in ops]
    for i in range(count):
        for j in strict[i]:
            succs_strict[j].add(i)
        for j in weak[i]:
            succs_weak[j].add(i)
    for i in range(count - 1, -1, -1):
        for j in succs_strict[i]:
            alap[i] = min(alap[i], alap[j] - 1)
        for j in succs_weak[i]:
            alap[i] = min(alap[i], alap[j])
    return [alap[i] - asap[i] for i in range(count)]
