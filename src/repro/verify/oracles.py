"""Metamorphic per-transform oracles.

Each GT/LT carries an invariant that must hold between the graph (or
machine) it received and the one it produced — independent of the
transform's own internal proof.  The oracles check those invariants
after every ``apply()`` when installed on
:func:`repro.transforms.optimize_global` /
:func:`repro.local_transforms.optimize_local`, turning every synthesis
run into a self-checking one:

- **GT1/GT3** only ever *relax* ordering: the firing partial order of
  the result must be a subset of the original's.
- **GT2** removes dominated constraints: the partial order must be
  exactly unchanged.
- **GT4** merges assignments: no ordered pair may be lost (modulo the
  merge aliasing resolved by
  :func:`~repro.transforms.base.check_precedence_preserved`).
- **GT5** merges channels: ordering is preserved, the emitted plan
  must cover every inter-controller arc, and a token simulation run
  *with* the plan must show no two distinct events concurrently
  outstanding on one merged wire — the property GT5's
  never-concurrent proof claims.
- **LT1/LT2/LT3** only move output edges between bursts: the set of
  output events, the datapath actions they drive, and every global
  handshake edge are preserved.
- **LT4** removes acknowledgment waits: only ``LOCAL_ACK`` input edges
  may disappear; outputs (and so the datapath write sequence) are
  untouched.
- **LT5** merges identically-switching wires: wire names change but
  the set of datapath actions and the global handshake are preserved.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Optional, Set, Tuple

from repro.afsm.machine import BurstModeMachine
from repro.afsm.signals import Signal, SignalKind
from repro.cdfg.graph import Cdfg
from repro.errors import ChannelSafetyError, VerificationError
from repro.local_transforms.base import LocalReport
from repro.sim.seeding import NOMINAL
from repro.sim.token_sim import simulate_tokens
from repro.timing.delays import DelayModel
from repro.transforms.base import (
    TransformReport,
    check_precedence_preserved,
    operation_order_pairs,
)

GlobalOracle = Callable[[TransformReport, Cdfg, Cdfg], None]
LocalOracle = Callable[[LocalReport, BurstModeMachine, BurstModeMachine], None]


def _fail(transform: str, reason: str) -> None:
    raise VerificationError(f"oracle[{transform}]: {reason}")


# ----------------------------------------------------------------------
# global transforms
# ----------------------------------------------------------------------
def make_global_oracle(
    delays: Optional[DelayModel] = None,
    deep: bool = True,
    sim_seeds: Tuple = (NOMINAL, 0, 1),
) -> GlobalOracle:
    """Build the per-GT invariant checker.

    ``deep`` additionally executes GT5's result under its channel plan
    (``sim_seeds`` simulations) so an unsound channel merge is caught
    dynamically even if the structural checks pass; disable it where
    the surrounding harness already simulates with the plan.
    """

    def oracle(report: TransformReport, before: Cdfg, after: Cdfg) -> None:
        name = report.name
        if not report.applied:
            return
        if name in ("GT1", "GT3"):
            extra = operation_order_pairs(after) - operation_order_pairs(before)
            if extra:
                _fail(name, f"introduced ordering not present before: {sorted(extra)[:3]}")
        elif name == "GT2":
            if operation_order_pairs(before) != operation_order_pairs(after):
                _fail(name, "changed the firing partial order (must be identity)")
        elif name == "GT4":
            missing = check_precedence_preserved(before, after, allow_missing=True)
            if missing:
                _fail(name, f"lost ordering for {len(missing)} pairs, e.g. {missing[:3]}")
        elif name == "GT5":
            missing = check_precedence_preserved(before, after, allow_missing=True)
            if missing:
                _fail(name, f"lost ordering for {len(missing)} pairs, e.g. {missing[:3]}")
            plan = report.artifacts.get("channel_plan")
            if plan is None:
                _fail(name, "applied but emitted no channel plan")
            uncovered = [
                arc.key for arc in after.inter_fu_arcs() if arc.key not in plan.arc_to_channel
            ]
            if uncovered:
                _fail(name, f"plan leaves arcs without a channel: {uncovered[:3]}")
            if deep:
                for seed in sim_seeds:
                    try:
                        result = simulate_tokens(
                            after, delay_model=delays, seed=seed, channel_plan=plan
                        )
                    except ChannelSafetyError as exc:
                        _fail(name, f"merged-channel safety violated (seed {seed!r}): {exc}")
                    if result.violations:
                        _fail(
                            name,
                            f"merged-channel safety violated (seed {seed!r}): "
                            f"{result.violations[0]}",
                        )

    return oracle


# ----------------------------------------------------------------------
# local transforms
# ----------------------------------------------------------------------
def _output_edges(machine: BurstModeMachine) -> Set[Tuple[str, bool]]:
    return {
        (edge.signal, edge.rising)
        for transition in machine.transitions()
        for edge in transition.output_burst.edges
    }


def _input_edges(
    machine: BurstModeMachine, exclude: FrozenSet[SignalKind] = frozenset()
) -> Set[Tuple[str, bool]]:
    edges: Set[Tuple[str, bool]] = set()
    for transition in machine.transitions():
        for edge in transition.input_burst.edges:
            if exclude and _kind_of(machine, edge.signal) in exclude:
                continue
            edges.add((edge.signal, edge.rising))
    return edges


def _kind_of(machine: BurstModeMachine, name: str) -> Optional[SignalKind]:
    try:
        return machine.signal(name).kind
    except Exception:
        return None


def _edges_of_kind(
    machine: BurstModeMachine, kind: SignalKind, outputs: bool
) -> Set[Tuple[str, bool]]:
    edges: Set[Tuple[str, bool]] = set()
    for transition in machine.transitions():
        burst = transition.output_burst if outputs else transition.input_burst
        for edge in burst.edges:
            if _kind_of(machine, edge.signal) is kind:
                edges.add((edge.signal, edge.rising))
    return edges


def _flatten_actions(signal: Signal) -> Tuple:
    if signal.action is None:
        return ()
    if signal.action[0] == "multi":
        return tuple(signal.action[1])
    return (signal.action,)


def _datapath_actions(machine: BurstModeMachine) -> Set[tuple]:
    """Every datapath action reachable from a rising output edge."""
    actions: Set[tuple] = set()
    for transition in machine.transitions():
        for edge in transition.output_burst.edges:
            if not edge.rising:
                continue
            try:
                signal = machine.signal(edge.signal)
            except Exception:
                continue
            actions.update(_flatten_actions(signal))
    return actions


def make_local_oracle() -> LocalOracle:
    """Build the per-LT invariant checker (see module docstring)."""

    def oracle(
        report: LocalReport, before: BurstModeMachine, after: BurstModeMachine
    ) -> None:
        name = report.name
        if not report.applied:
            return
        # every LT preserves the global handshake exactly
        for outputs in (True, False):
            direction = "output" if outputs else "input"
            old = _edges_of_kind(before, SignalKind.GLOBAL_READY, outputs)
            new = _edges_of_kind(after, SignalKind.GLOBAL_READY, outputs)
            if old != new:
                _fail(
                    name,
                    f"{before.name}: global {direction} handshake changed: "
                    f"lost {sorted(old - new)}, gained {sorted(new - old)}",
                )
        if name in ("LT1", "LT2", "LT3"):
            old_out, new_out = _output_edges(before), _output_edges(after)
            if old_out != new_out:
                _fail(
                    name,
                    f"{before.name}: output events changed (moves only): "
                    f"lost {sorted(old_out - new_out)}, gained {sorted(new_out - old_out)}",
                )
            old_in = _input_edges(before)
            new_in = _input_edges(after)
            if old_in != new_in:
                _fail(
                    name,
                    f"{before.name}: input events changed: lost "
                    f"{sorted(old_in - new_in)}, gained {sorted(new_in - old_in)}",
                )
        if name == "LT4":
            old_out, new_out = _output_edges(before), _output_edges(after)
            if old_out != new_out:
                _fail(
                    name,
                    f"{before.name}: ack removal changed the output events: "
                    f"lost {sorted(old_out - new_out)}, gained {sorted(new_out - old_out)}",
                )
            ack = frozenset({SignalKind.LOCAL_ACK})
            old_in = _input_edges(before, exclude=ack)
            new_in = _input_edges(after, exclude=ack)
            if old_in != new_in:
                _fail(
                    name,
                    f"{before.name}: a non-acknowledgment input edge changed: "
                    f"lost {sorted(old_in - new_in)}, gained {sorted(new_in - old_in)}",
                )
        if name in ("LT1", "LT2", "LT3", "LT4", "LT5"):
            old_actions = _datapath_actions(before)
            new_actions = _datapath_actions(after)
            if old_actions != new_actions:
                _fail(
                    name,
                    f"{before.name}: datapath actions changed: lost "
                    f"{sorted(old_actions - new_actions)}, "
                    f"gained {sorted(new_actions - old_actions)}",
                )

    return oracle
