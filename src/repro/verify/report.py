"""Machine-readable conformance reports.

A :class:`VerifyReport` is the JSON artifact of one fuzzing campaign
over one workload: how many cases ran, which execution levels were
checked, and — for every failure — the offending case plus its shrunk
minimal form.  The ``repro verify`` CLI prints and optionally writes
these; ``explore_design_space`` stamps design points from them.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional


@dataclass
class FailureRecord:
    """One failing case, as found and as shrunk."""

    level: str
    message: str
    case: Dict[str, object]
    #: minimal failing form of ``case`` (same schema), or None when
    #: shrinking was disabled or could not reduce the case further
    shrunk: Optional[Dict[str, object]] = None
    shrunk_level: Optional[str] = None
    shrunk_message: Optional[str] = None


@dataclass
class VerifyReport:
    """Outcome of one conformance-fuzzing campaign."""

    workload: str
    seed: int
    runs_requested: int
    runs_executed: int = 0
    passed: int = 0
    duration: float = 0.0
    #: every execution level exercised at least once, sorted
    levels_checked: List[str] = field(default_factory=list)
    failures: List[FailureRecord] = field(default_factory=list)

    @property
    def failed(self) -> int:
        return len(self.failures)

    @property
    def conformant(self) -> bool:
        return self.runs_executed > 0 and not self.failures

    def to_dict(self) -> Dict[str, object]:
        payload = asdict(self)
        payload["failed"] = self.failed
        payload["conformant"] = self.conformant
        return payload

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    def summary(self) -> str:
        verdict = "CONFORMANT" if self.conformant else "NON-CONFORMANT"
        lines = [
            f"{self.workload}: {verdict} — {self.passed}/{self.runs_executed} cases passed "
            f"({len(self.levels_checked)} levels, seed {self.seed}, {self.duration:.2f}s)"
        ]
        for failure in self.failures:
            lines.append(f"  FAIL at {failure.level}: {failure.message}")
            if failure.shrunk is not None:
                lines.append(f"    shrunk to: {json.dumps(failure.shrunk, sort_keys=True)}")
        return "\n".join(lines)


def load_report(path: str) -> VerifyReport:
    """Read a :class:`VerifyReport` back from its JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    failures = [
        FailureRecord(
            level=item["level"],
            message=item["message"],
            case=item["case"],
            shrunk=item.get("shrunk"),
            shrunk_level=item.get("shrunk_level"),
            shrunk_message=item.get("shrunk_message"),
        )
        for item in payload.get("failures", [])
    ]
    return VerifyReport(
        workload=payload["workload"],
        seed=payload["seed"],
        runs_requested=payload["runs_requested"],
        runs_executed=payload.get("runs_executed", 0),
        passed=payload.get("passed", 0),
        duration=payload.get("duration", 0.0),
        levels_checked=list(payload.get("levels_checked", [])),
        failures=failures,
    )
