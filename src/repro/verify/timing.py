"""Sampled-timing conformance campaigns.

The fuzz campaigns (:mod:`repro.verify.fuzz`) check *values* — golden
reference vs token vs system registers.  This module checks *times*:
the batched max-plus engine (:mod:`repro.sim.batched`) claims to
reproduce the scalar token simulator's makespans bit-for-bit for every
seeded delay sample, and a sampled-timing campaign verifies that claim
on a workload by evaluating B samples in one batch and re-running each
through the scalar kernel.  Any divergence is a conformance failure of
the engine (not the design) and fails the campaign.

In the spirit of the flow-equivalence literature's sample-based
confidence runs, the campaign also doubles as a cheap timing
characterization: per transform level it reports min/mean/max makespan
over the sampled delay assignments, all derived from one batch
evaluation.

Sample seeds are derived deterministically from the campaign seed via
:func:`~repro.sim.seeding.node_stream_seed` with labels
``timing:<level>:<index>``, so reports are replayable byte-for-byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.sim.seeding import node_stream_seed
from repro.sim.token_sim import simulate_tokens
from repro.timing.delays import DelayModel
from repro.transforms import optimize_global

__all__ = ["TimingLevelReport", "TimingReport", "sampled_timing_campaign"]


@dataclass
class TimingLevelReport:
    """Batched-vs-scalar timing agreement at one transform level."""

    level: str
    samples: int
    #: scalar cross-checks actually run (== samples when check=True)
    checked: int
    #: batched/scalar makespan mismatches — any nonzero fails the run
    divergences: int
    #: samples the engine routed through the scalar oracle itself
    suspect: int
    makespan_min: float
    makespan_mean: float
    makespan_max: float

    def to_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


@dataclass
class TimingReport:
    """Outcome of one sampled-timing campaign."""

    workload: str
    seed: int
    samples: int
    levels: List[TimingLevelReport] = field(default_factory=list)

    @property
    def conformant(self) -> bool:
        return all(level.divergences == 0 for level in self.levels)

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "seed": self.seed,
            "samples": self.samples,
            "conformant": self.conformant,
            "levels": [level.to_dict() for level in self.levels],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        verdict = "TIMING-CONFORMANT" if self.conformant else "TIMING DIVERGENCE"
        lines = [
            f"{self.workload}: {verdict} — {self.samples} sampled delay "
            f"assignments per level (seed {self.seed})"
        ]
        for level in self.levels:
            lines.append(
                f"  {level.level}: makespan [{level.makespan_min:.3f}, "
                f"{level.makespan_max:.3f}] mean {level.makespan_mean:.3f}, "
                f"{level.checked} scalar cross-checks, "
                f"{level.divergences} divergences, {level.suspect} suspect"
            )
        return "\n".join(lines)


def sampled_timing_campaign(
    workload: str,
    samples: int = 32,
    seed: int = 0,
    delays: Optional[DelayModel] = None,
    check: bool = True,
) -> TimingReport:
    """Batched-vs-scalar timing conformance for one workload.

    Two levels are exercised: the built CDFG (``token:base``) and the
    fully GT-transformed design with its channel plan
    (``token:optimized``).  With ``check=True`` (the default, and what
    the CI job runs) every sample's scalar makespan is compared
    bit-for-bit against the batch; ``check=False`` only re-runs the
    samples the engine itself flags, turning the campaign into a pure
    characterization sweep.
    """
    from repro.sim.batched import BatchedTokenEngine
    from repro.workloads import build_workload

    base = delays or DelayModel()
    cdfg = build_workload(workload)
    optimized = optimize_global(cdfg, delays=base)
    report = TimingReport(workload=workload, seed=seed, samples=samples)
    for level, graph, plan in (
        ("token:base", cdfg, None),
        ("token:optimized", optimized.cdfg, optimized.plan),
    ):
        engine = BatchedTokenEngine(graph, delay_model=base, channel_plan=plan)
        level_seeds = [
            node_stream_seed(seed, f"timing:{level}:{index}") for index in range(samples)
        ]
        batch = engine.run_seeded(level_seeds, spot_check=0.0)
        makespans = [float(value) for value in batch.makespans]
        divergences = 0
        checked = 0
        for index, sample_seed in enumerate(level_seeds):
            if not check and not batch.suspect[index]:
                continue
            scalar = simulate_tokens(
                graph,
                delay_model=base,
                seed=sample_seed,
                strict=False,
                channel_plan=plan,
            )
            checked += 1
            if batch.suspect[index] or scalar.violations:
                # the oracle's makespan is authoritative for flagged
                # samples; a violation here is a design property, not
                # an engine divergence
                makespans[index] = scalar.end_time
            elif scalar.end_time != makespans[index]:
                divergences += 1
        report.levels.append(
            TimingLevelReport(
                level=level,
                samples=samples,
                checked=checked,
                divergences=divergences,
                suspect=int(batch.suspect.sum()),
                makespan_min=min(makespans),
                makespan_mean=sum(makespans) / len(makespans) if makespans else 0.0,
                makespan_max=max(makespans),
            )
        )
    return report
