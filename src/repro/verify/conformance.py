"""Differential conformance checking of one synthesis case.

A :class:`VerifyCase` pins everything that determines one end-to-end
synthesis run: the workload and its input parameters, a delay-model
perturbation, the enabled GT/LT subsets, and the delay-sampling seed.
:func:`check_case` executes the case at every level of the flow —

- the golden Python reference (``repro.workloads``),
- a CDFG token simulation of the untransformed graph,
- a token simulation after *each* global transform of the script
  (with GT5's channel plan installed, so merged-wire occupancy is
  checked dynamically),
- an AFSM system simulation of the freshly extracted controllers,
- a system simulation after each prefix of the local script —

asserting at every level that the register file equals the golden
reference and that no channel-safety violation or datapath hazard was
recorded.  The metamorphic per-transform oracles of
:mod:`repro.verify.oracles` run inside the scripts, so a pass that
breaks its own invariant fails even when the final registers happen to
be right.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.afsm.extract import extract_controllers
from repro.channels.model import ChannelPlan
from repro.local_transforms import optimize_local
from repro.local_transforms.scripts import STANDARD_LOCAL_SEQUENCE
from repro.sim.system import simulate_system
from repro.sim.token_sim import simulate_tokens
from repro.timing.delays import DelayModel
from repro.transforms import optimize_global
from repro.transforms.scripts import STANDARD_SEQUENCE
from repro.verify.oracles import make_global_oracle, make_local_oracle
from repro.workloads import build_workload, golden_reference

#: delay override as stored in a case: (fu, operator-or-None, (lo, hi))
DelayOverride = Tuple[str, Optional[str], Tuple[float, float]]


@dataclass
class VerifyCase:
    """One fully-pinned conformance case (JSON-serializable)."""

    workload: str
    params: Dict[str, object] = field(default_factory=dict)
    gts: Tuple[str, ...] = tuple(STANDARD_SEQUENCE)
    lts: Tuple[str, ...] = tuple(STANDARD_LOCAL_SEQUENCE)
    delay_overrides: Tuple[DelayOverride, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        # canonical transform order makes prefixes meaningful and keeps
        # shrinking stable
        self.gts = tuple(n for n in STANDARD_SEQUENCE if n in self.gts)
        self.lts = tuple(n for n in STANDARD_LOCAL_SEQUENCE if n in self.lts)

    def delay_model(self) -> DelayModel:
        model = DelayModel()
        for fu, operator, interval in self.delay_overrides:
            model = model.with_override(fu, operator, tuple(interval))
        return model

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "params": dict(self.params),
            "gts": list(self.gts),
            "lts": list(self.lts),
            "delay_overrides": [
                [fu, operator, list(interval)]
                for fu, operator, interval in self.delay_overrides
            ],
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "VerifyCase":
        return cls(
            workload=payload["workload"],
            params=dict(payload.get("params", {})),
            gts=tuple(payload.get("gts", STANDARD_SEQUENCE)),
            lts=tuple(payload.get("lts", STANDARD_LOCAL_SEQUENCE)),
            delay_overrides=tuple(
                (fu, operator, tuple(interval))
                for fu, operator, interval in payload.get("delay_overrides", [])
            ),
            seed=int(payload.get("seed", 0)),
        )


@dataclass
class CaseResult:
    """Outcome of checking one case at every level."""

    case: VerifyCase
    ok: bool
    levels: List[str] = field(default_factory=list)
    failure_level: Optional[str] = None
    message: Optional[str] = None


class _LevelFailure(Exception):
    """Internal: carries the level name with the failure message."""

    def __init__(self, level: str, message: str):
        self.level = level
        self.message = message
        super().__init__(f"[{level}] {message}")


def _compare(level: str, registers: Dict[str, float], golden: Dict[str, float]) -> None:
    for name, value in golden.items():
        got = registers.get(name)
        if got != value:
            raise _LevelFailure(
                level, f"register {name}: got {got!r}, golden reference says {value!r}"
            )


def check_case(case: VerifyCase) -> CaseResult:
    """Run one case through every execution level; never raises."""
    levels: List[str] = []
    level = "golden"
    try:
        golden = golden_reference(case.workload, **case.params)
        cdfg = build_workload(case.workload, **case.params)
        delays = case.delay_model()

        def token_level(name: str, graph, plan: Optional[ChannelPlan]) -> None:
            result = simulate_tokens(
                graph, delay_model=delays, seed=case.seed, channel_plan=plan, strict=False
            )
            if result.violations:
                raise _LevelFailure(name, f"channel safety: {result.violations[0]}")
            _compare(name, result.registers, golden)
            levels.append(name)

        def system_level(name: str, design) -> None:
            result = simulate_system(design, delays=delays, seed=case.seed, strict=False)
            if result.violations:
                raise _LevelFailure(name, f"channel safety: {result.violations[0]}")
            if result.hazards:
                raise _LevelFailure(name, f"datapath hazard: {result.hazards[0]}")
            _compare(name, result.registers, golden)
            levels.append(name)

        level = "token:base"
        token_level("token:base", cdfg, None)

        if case.gts:
            metamorphic = make_global_oracle(delays=delays, deep=False)

            def global_oracle(report, before, after):
                nonlocal level
                level = f"token:{report.name}"
                metamorphic(report, before, after)
                token_level(level, after, report.artifacts.get("channel_plan"))

            level = f"token:{case.gts[0]}"
            optimized = optimize_global(
                cdfg, enabled=case.gts, delays=delays, oracle=global_oracle
            )
            final_cdfg, plan = optimized.cdfg, optimized.plan
        else:
            final_cdfg, plan = cdfg, None

        level = "system:extracted"
        if plan is None:
            from repro.channels import derive_channels

            plan = derive_channels(final_cdfg)
        design = extract_controllers(final_cdfg, plan)
        system_level("system:extracted", design)

        if case.lts:
            local_oracle = make_local_oracle()

            def checked_local(enabled: Tuple[str, ...]):
                nonlocal level
                level = f"system:{'+'.join(enabled)}"
                return optimize_local(design, enabled=enabled, oracle=local_oracle).design

            for cut in range(1, len(case.lts) + 1):
                prefix = case.lts[:cut]
                system_level(f"system:{'+'.join(prefix)}", checked_local(prefix))
    except _LevelFailure as failure:
        return CaseResult(
            case, ok=False, levels=levels, failure_level=failure.level, message=failure.message
        )
    except Exception as exc:  # noqa: BLE001 — a fuzz harness must not crash
        return CaseResult(
            case,
            ok=False,
            levels=levels,
            failure_level=level,
            message=f"{type(exc).__name__}: {exc}",
        )
    return CaseResult(case, ok=True, levels=levels)
