"""Differential conformance fuzzing.

The correctness claim of the whole flow — GT1–GT5 and LT1–LT5
preserve behaviour while restructuring control — is checked here
*differentially*: every workload is executed at three levels (golden
Python reference, CDFG token simulation, extracted-AFSM system
simulation) at every transform level, under randomized inputs and
randomized bounded delays, with metamorphic per-transform oracles
running inside the scripts and failing cases shrunk to minimal
counterexamples.

Entry points:

- :func:`check_case` — run one pinned case through every level;
- :func:`fuzz_workload` — a seeded randomized campaign returning a
  machine-readable :class:`VerifyReport` (the ``repro verify`` CLI and
  the conformance stamp of ``explore_design_space`` sit on top);
- :func:`shrink_case` — minimize a failing case;
- :func:`sampled_timing_campaign` — batched-vs-scalar *timing*
  conformance: B sampled delay assignments evaluated by the max-plus
  engine and cross-checked bit-for-bit against the scalar kernel;
- :func:`make_global_oracle` / :func:`make_local_oracle` — the
  per-pass invariant checkers, installable on any
  ``optimize_global`` / ``optimize_local`` call;
- :mod:`repro.verify.flow` — the flow-equivalence *proof* engine:
  :func:`prove_workload` discharges symbolic per-pass obligations and
  emits replayable :class:`FlowProof` certificates (``repro verify
  --proofs``), upgrading the sampled trials above to proofs;
- :func:`report_envelope` / :func:`load_envelope` — the normalized
  ``repro-report/v1`` JSON envelope every verify-family subcommand
  emits.
"""

from repro.verify.conformance import CaseResult, VerifyCase, check_case
from repro.verify.flow import (
    FlowObligation,
    FlowProof,
    FlowReport,
    check_global_flow,
    check_local_flow,
    load_flow_report,
    make_flow_global_oracle,
    make_flow_local_oracle,
    prove_workload,
    replay_flow_report,
)
from repro.verify.fuzz import PARAM_SPACES, fuzz_workload, random_case
from repro.verify.oracles import make_global_oracle, make_local_oracle
from repro.verify.report import FailureRecord, VerifyReport, load_report
from repro.verify.schema import load_envelope, report_envelope
from repro.verify.shrink import MINIMAL_PARAMS, shrink_case
from repro.verify.timing import TimingLevelReport, TimingReport, sampled_timing_campaign

__all__ = [
    "FlowObligation",
    "FlowProof",
    "FlowReport",
    "check_global_flow",
    "check_local_flow",
    "load_flow_report",
    "make_flow_global_oracle",
    "make_flow_local_oracle",
    "prove_workload",
    "replay_flow_report",
    "load_envelope",
    "report_envelope",
    "CaseResult",
    "VerifyCase",
    "check_case",
    "PARAM_SPACES",
    "fuzz_workload",
    "random_case",
    "make_global_oracle",
    "make_local_oracle",
    "FailureRecord",
    "VerifyReport",
    "load_report",
    "MINIMAL_PARAMS",
    "shrink_case",
    "TimingLevelReport",
    "TimingReport",
    "sampled_timing_campaign",
]
