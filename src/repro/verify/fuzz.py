"""Seeded conformance fuzzing.

:func:`fuzz_workload` drives the differential checker of
:mod:`repro.verify.conformance` with randomized cases: random input
vectors from each workload's parameter space, random delay-model
perturbations (per-unit interval overrides), random GT/LT subsets and
a random delay-sampling seed per case — all drawn from one master
seed, so every campaign (and every failure inside it) is exactly
reproducible.  Case 0 of every campaign is the canonical full-script
run on default inputs, so ``--runs 1`` is already the paper's flow.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, List, Optional

from repro.local_transforms.scripts import STANDARD_LOCAL_SEQUENCE
from repro.transforms.scripts import STANDARD_SEQUENCE
from repro.verify.conformance import VerifyCase, check_case
from repro.verify.report import FailureRecord, VerifyReport
from repro.verify.shrink import shrink_case
from repro.workloads import workload_names

#: workload -> random-input generator.  Each generator must return
#: parameters on which the workload provably terminates quickly (the
#: fuzzer's job is breadth, not long loops).
PARAM_SPACES: Dict[str, Callable[[random.Random], Dict[str, object]]] = {
    "diffeq": lambda rng: {
        "dx": rng.choice([0.125, 0.25, 0.5]),
        "a": rng.choice([0.5, 1.0]),
        "y0": round(rng.uniform(-2.0, 2.0), 3),
        "u0": round(rng.uniform(-1.0, 1.0), 3),
    },
    "gcd": lambda rng: {
        "a0": rng.randrange(1, 120),
        "b0": rng.randrange(1, 120),
    },
    "ewf": lambda rng: {
        "n": rng.randrange(1, 9),
        "s0": round(rng.uniform(0.5, 2.0), 3),
        "k1": rng.choice([0.25, 0.5, 0.75]),
        "k2": rng.choice([0.125, 0.25]),
        "decay": rng.choice([0.5, 0.75]),
    },
    "fir": lambda rng: {
        "taps": rng.randrange(2, 6),
        "samples": rng.randrange(1, 7),
        "x0": round(rng.uniform(0.5, 2.0), 3),
        "decay": rng.choice([0.5, 0.8]),
    },
}


def random_case(
    workload: str,
    rng: random.Random,
    full: bool = False,
    units: Optional[List[str]] = None,
) -> VerifyCase:
    """Draw one case from the workload's fuzzing distribution.

    ``full`` pins the canonical configuration (full scripts, default
    inputs, default delays) and randomizes only the sampling seed.
    ``units`` lists the ``(fu, operator)`` pairs eligible for delay
    overrides (default: the pairs the workload actually executes).

    Overrides target specific *operators*, never a whole unit: a
    unit-wide override also slows the unit's register latches, which
    steps outside the bundled-data timing assumption LT1 is allowed to
    rely on (a done moved up beside the latch may then outrun the
    write) — a real sensitivity of the paper's transform, but not a
    conformance bug, so the fuzzer stays inside the assumption.
    """
    if workload not in PARAM_SPACES and workload not in workload_names():
        raise KeyError(
            f"unknown workload {workload!r}; known workloads: {', '.join(workload_names())}"
        )
    seed = rng.randrange(2**32)
    if full:
        return VerifyCase(workload=workload, params={}, seed=seed)
    if units is None:
        units = _override_targets(workload)
    # workloads registered at run time (frontend kernels) have no fuzzing
    # distribution over inputs: fuzz configurations/delays/seeds on the
    # default input vector instead
    space = PARAM_SPACES.get(workload, lambda rng: {})
    params = space(rng)
    gts = tuple(name for name in STANDARD_SEQUENCE if rng.random() < 0.75)
    lts = tuple(name for name in STANDARD_LOCAL_SEQUENCE if rng.random() < 0.75)
    overrides = []
    if units:
        for _ in range(rng.randrange(0, 3)):
            low = round(rng.uniform(0.5, 4.0), 2)
            high = round(low + rng.uniform(0.0, 8.0), 2)
            fu, operator = rng.choice(units)
            overrides.append((fu, operator, (low, high)))
    return VerifyCase(
        workload=workload,
        params=params,
        gts=gts,
        lts=lts,
        delay_overrides=tuple(overrides),
        seed=seed,
    )


def _override_targets(workload: str) -> List[tuple]:
    """The ``(fu, operator)`` pairs the workload's operations exercise."""
    from repro.workloads import build_workload

    cdfg = build_workload(workload)
    targets = {
        (node.fu, statement.operator)
        for node in cdfg.operation_nodes()
        if node.fu
        for statement in node.statements
        if statement.operator is not None
    }
    return sorted(targets)


def fuzz_workload(
    workload: str,
    runs: int = 20,
    seed: int = 0,
    budget: Optional[float] = None,
    shrink: bool = True,
    progress: Optional[Callable[[int, bool], None]] = None,
) -> VerifyReport:
    """Run one conformance-fuzzing campaign over ``workload``.

    ``runs`` bounds the number of cases; ``budget`` (seconds) stops
    early when exceeded — whichever comes first.  Failing cases are
    shrunk to a minimal (input, delay, transform-subset) triple unless
    ``shrink`` is disabled.  ``progress`` is called after each case
    with ``(index, ok)``.
    """
    rng = random.Random(seed)
    units = _override_targets(workload)
    report = VerifyReport(workload=workload, seed=seed, runs_requested=runs)
    levels: set = set()
    start = time.monotonic()
    for index in range(runs):
        if budget is not None and time.monotonic() - start >= budget:
            break
        case = random_case(workload, rng, full=(index == 0), units=units)
        result = check_case(case)
        report.runs_executed += 1
        levels.update(result.levels)
        if result.ok:
            report.passed += 1
        else:
            levels.discard(result.failure_level)
            record = FailureRecord(
                level=result.failure_level or "unknown",
                message=result.message or "",
                case=case.to_dict(),
            )
            if shrink:
                shrunk_case, shrunk_result = shrink_case(case)
                record.shrunk = shrunk_case.to_dict()
                record.shrunk_level = shrunk_result.failure_level
                record.shrunk_message = shrunk_result.message
            report.failures.append(record)
        if progress is not None:
            progress(index, result.ok)
    report.levels_checked = sorted(levels)
    report.duration = time.monotonic() - start
    return report
