"""The normalized JSON schema for verify-family reports.

Historically each subcommand wrote its own top-level shape —
``repro verify --json`` a bare list of campaign dicts, ``repro
faults`` a single campaign object — so consumers had to sniff the
payload.  Every report-producing subcommand now wraps its documents in
one envelope::

    {
      "schema": "repro-report/v1",
      "kind": "verify" | "faults" | "explore" | "flow-proofs",
      "reports": [ ...kind-specific documents, snake_case keys... ]
    }

:func:`report_envelope` builds the envelope, :func:`canonical_json`
renders it deterministically (sorted keys, two-space indent, trailing
newline — the byte format the golden-report suite pins), and
:func:`load_envelope` parses + validates one, accepting the legacy
bare-list shape for pre-envelope reports.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.errors import VerificationError

SCHEMA = "repro-report/v1"

#: envelope kinds the loaders accept
KINDS = ("verify", "faults", "explore", "flow-proofs")


def report_envelope(kind: str, reports: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Wrap ``reports`` in the normalized envelope."""
    if kind not in KINDS:
        raise VerificationError(f"unknown report kind {kind!r} (expected one of {KINDS})")
    return {"schema": SCHEMA, "kind": kind, "reports": list(reports)}


def canonical_json(payload: Dict[str, object]) -> str:
    """The canonical byte rendering: sorted keys, indent 2, final newline."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_envelope(path: str, kind: str, reports: Sequence[Dict[str, object]]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(canonical_json(report_envelope(kind, reports)))


def load_envelope(payload) -> Dict[str, object]:
    """Parse and validate an envelope.

    ``payload`` is a parsed dict, a JSON string, or a path.  A legacy
    bare list (pre-envelope ``verify --json``) is upgraded to a
    ``verify`` envelope so old reports keep loading.
    """
    if isinstance(payload, str):
        if payload.lstrip().startswith(("{", "[")):
            payload = json.loads(payload)
        else:
            with open(payload, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
    if isinstance(payload, list):  # legacy shape
        return report_envelope("verify", payload)
    if not isinstance(payload, dict):
        raise VerificationError(f"not a report envelope: {type(payload).__name__}")
    if payload.get("schema") != SCHEMA:
        raise VerificationError(
            f"unknown report schema {payload.get('schema')!r} (expected {SCHEMA!r})"
        )
    kind = payload.get("kind")
    if kind not in KINDS:
        raise VerificationError(f"unknown report kind {kind!r} (expected one of {KINDS})")
    reports = payload.get("reports")
    if not isinstance(reports, list):
        raise VerificationError("envelope field 'reports' must be a list")
    return {"schema": SCHEMA, "kind": kind, "reports": list(reports)}
