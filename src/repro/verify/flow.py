"""Flow-equivalence proof engine for the GT/LT transform scripts.

The conformance fuzzer (:mod:`repro.verify.conformance`) samples delay
assignments; this module *proves* the property the samples probe:

    **flow equivalence** — for every register, the stream of values
    written to it is the same in the pre- and post-transform design
    under *any* assignment of operation delays (Paykin et al.,
    "Formal Verification of Flow Equivalence in Desynchronized
    Designs").

For the global transforms the proof is discharged symbolically over
the unfolded dependence relation.  A per-variable write stream can
only change if two conflicting accesses (write/write, or read/write
including LOOP/IF condition sampling) can be *reordered* by a delay
change, so each applied pass carries obligations:

``order``
    the pass's contract on the firing partial order
    (:func:`~repro.transforms.base.operation_order_pairs`): GT1/GT3
    may only relax it, GT2 must preserve it exactly, GT4/GT5 must
    preserve it modulo node merging.
``determinacy``
    every conflicting pair of unfolded operation copies is ordered by
    the constraint graph, mutually exclusive (opposite branches of one
    IF in the same iteration), or — for GT3 — ordered by a
    relative-timing witness.  For GT3 the removed timed arcs are
    restored on a scratch copy, so the obligation is exactly
    "determinacy modulo the timing certificates".
``timing-witnesses`` (GT3)
    the timing certificates themselves are *re-derived* here: the
    removal sequence is replayed from the pass's input graph through
    :func:`repro.timing.analysis.relative_arc_dominates` — the proof
    does not trust the pass's own analysis.
``occupancy`` (GT5)
    the channel plan covers every inter-FU arc and the merged wires
    are dynamically safe.
``streams``
    the nominal write streams agree (the determinacy obligations make
    the nominal schedule representative of *all* schedules).

A refuted obligation yields a concrete **counterexample schedule**
when one exists: a delay override / sampling seed under which the
post-transform design's write streams diverge from the specification.

For the local transforms and the :mod:`repro.afsm.minimize` quotient
pass the designs are burst-mode machines, so per-register streams
become per-observable event streams: the *stream language* of each
observable — every GLOBAL_READY wire (rise/fall events) and every
datapath action (the rising local request that triggers it, resolved
through LT5 wire merges) — must be preserved exactly.  Languages are
compared by epsilon-free subset construction with a breadth-first
product walk; a mismatch yields the shortest distinguishing event
word.

Every check emits a :class:`FlowProof` certificate; a workload-level
:class:`FlowReport` (``repro verify --proofs``) aggregates them and
replays deterministically byte-for-byte.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.afsm.machine import BurstModeMachine, Transition
from repro.afsm.signals import SignalKind
from repro.cdfg.arc import Arc, ArcRole, ArcTag
from repro.cdfg.graph import Cdfg
from repro.cdfg.kinds import NodeKind
from repro.errors import FlowRefutedError
from repro.local_transforms.base import LocalReport
from repro.sim.seeding import NOMINAL
from repro.sim.token_sim import simulate_tokens
from repro.timing.analysis import relative_arc_dominates
from repro.timing.delays import DelayModel
from repro.transforms.base import (
    TransformReport,
    check_precedence_preserved,
    operation_order_pairs,
)
from repro.transforms.unfold import Copy, cached_unfolded_reach
from repro.verify.oracles import _flatten_actions

SCHEMA_PROOF = "flow-proof/v1"
SCHEMA_REPORT = "flow-report/v1"

#: delay overrides tried (per racing FU) when searching for a concrete
#: counterexample schedule, plus this many sampled seeds
_STRESS_INTERVALS = ((9.0, 9.0), (0.05, 0.05))
_COUNTEREXAMPLE_SEEDS = 8


# ----------------------------------------------------------------------
# certificates
# ----------------------------------------------------------------------
@dataclass
class FlowObligation:
    """One named proof obligation of one pass application."""

    name: str
    status: str  # "proved" | "refuted"
    detail: str = ""
    #: human-readable justifications (timing witnesses, restored arcs)
    witnesses: List[str] = field(default_factory=list)

    @property
    def proved(self) -> bool:
        return self.status == "proved"

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "status": self.status,
            "detail": self.detail,
            "witnesses": list(self.witnesses),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FlowObligation":
        return cls(
            name=str(payload["name"]),
            status=str(payload["status"]),
            detail=str(payload.get("detail", "")),
            witnesses=[str(w) for w in payload.get("witnesses", [])],
        )


@dataclass
class FlowProof:
    """Machine-checkable certificate for one pass application.

    ``stage`` is the pass (``GT1``..``LT5``) or a synthesis checkpoint
    (``extract``, ``design``, ``minimize``); ``subject`` is ``cdfg``
    for global stages and the machine's functional unit for local
    ones; ``index`` is the application order within its report.
    """

    stage: str
    subject: str
    index: int
    verdict: str  # "proved" | "refuted" | "no-op"
    obligations: List[FlowObligation] = field(default_factory=list)
    #: per-variable (or per-observable) stream signatures of the
    #: post-transform design under the NOMINAL schedule
    streams: Dict[str, Dict[str, object]] = field(default_factory=dict)
    counterexample: Optional[Dict[str, object]] = None

    @property
    def proved(self) -> bool:
        return self.verdict != "refuted"

    def refuted_obligations(self) -> List[FlowObligation]:
        return [o for o in self.obligations if not o.proved]

    def failure(self) -> str:
        """First refuted obligation rendered as ``name: detail``."""
        for obligation in self.obligations:
            if not obligation.proved:
                return f"{obligation.name}: {obligation.detail}"
        return ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA_PROOF,
            "stage": self.stage,
            "subject": self.subject,
            "index": self.index,
            "verdict": self.verdict,
            "obligations": [o.to_dict() for o in self.obligations],
            "streams": {k: dict(v) for k, v in sorted(self.streams.items())},
            "counterexample": self.counterexample,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FlowProof":
        return cls(
            stage=str(payload["stage"]),
            subject=str(payload["subject"]),
            index=int(payload["index"]),
            verdict=str(payload["verdict"]),
            obligations=[FlowObligation.from_dict(o) for o in payload.get("obligations", [])],
            streams={str(k): dict(v) for k, v in payload.get("streams", {}).items()},
            counterexample=payload.get("counterexample"),
        )


@dataclass
class FlowReport:
    """All certificates of one end-to-end synthesis run."""

    workload: str
    params: Dict[str, object] = field(default_factory=dict)
    gts: Tuple[str, ...] = ()
    lts: Tuple[str, ...] = ()
    delay_overrides: Tuple[Tuple[str, Optional[str], Tuple[float, float]], ...] = ()
    minimize: bool = False
    proofs: List[FlowProof] = field(default_factory=list)
    error: str = ""

    @property
    def proved(self) -> bool:
        return not self.error and all(p.proved for p in self.proofs)

    def counterexamples(self) -> List[FlowProof]:
        return [p for p in self.proofs if p.counterexample is not None]

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SCHEMA_REPORT,
            "workload": self.workload,
            "params": dict(self.params),
            "gts": list(self.gts),
            "lts": list(self.lts),
            "delay_overrides": [
                [fu, operator, list(interval)]
                for fu, operator, interval in self.delay_overrides
            ],
            "minimize": self.minimize,
            "proved": self.proved,
            "error": self.error,
            "proofs": [p.to_dict() for p in self.proofs],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FlowReport":
        return cls(
            workload=str(payload["workload"]),
            params=dict(payload.get("params", {})),
            gts=tuple(payload.get("gts", ())),
            lts=tuple(payload.get("lts", ())),
            delay_overrides=tuple(
                (fu, operator, tuple(interval))
                for fu, operator, interval in payload.get("delay_overrides", [])
            ),
            minimize=bool(payload.get("minimize", False)),
            proofs=[FlowProof.from_dict(p) for p in payload.get("proofs", [])],
            error=str(payload.get("error", "")),
        )

    def summary(self) -> str:
        proved = sum(1 for p in self.proofs if p.verdict == "proved")
        noop = sum(1 for p in self.proofs if p.verdict == "no-op")
        refuted = [p for p in self.proofs if not p.proved]
        parts = [
            f"{self.workload}: {proved} proved, {noop} no-op "
            f"of {len(self.proofs)} certificates"
        ]
        if self.error:
            parts.append(f"ERROR {self.error}")
        for proof in refuted:
            parts.append(f"REFUTED {proof.stage}[{proof.subject}]: {proof.failure()}")
        return "; ".join(parts)


def load_flow_report(path: str) -> FlowReport:
    with open(path, "r", encoding="utf-8") as handle:
        return FlowReport.from_dict(json.load(handle))


# ----------------------------------------------------------------------
# stream signatures
# ----------------------------------------------------------------------
def _stream_signature(streams: Dict[str, List[float]]) -> Dict[str, Dict[str, object]]:
    signature: Dict[str, Dict[str, object]] = {}
    for var, values in sorted(streams.items()):
        blob = json.dumps(values).encode("utf-8")
        signature[var] = {
            "digest": hashlib.blake2b(blob, digest_size=8).hexdigest(),
            "length": len(values),
        }
    return signature


def _first_stream_divergence(
    expected: Dict[str, List[float]], got: Dict[str, List[float]]
) -> Optional[Tuple[str, List[float], List[float]]]:
    for var in sorted(set(expected) | set(got)):
        want, have = expected.get(var, []), got.get(var, [])
        if want != have:
            return var, want, have
    return None


# ----------------------------------------------------------------------
# the unfolded conflict relation (global passes)
# ----------------------------------------------------------------------
def _copy_id(copy: Copy) -> str:
    name, iteration = copy
    return name if iteration is None else f"{name}@{iteration}"


def _branch_context(cdfg: Cdfg, name: str) -> Tuple[Tuple[str, str], ...]:
    """The (IF root, branch) pairs enclosing ``name``, innermost first."""
    context: List[Tuple[str, str]] = []
    current: Optional[str] = name
    while current is not None:
        parent = cdfg.block_of(current)
        if parent is None:
            break
        branch = cdfg.branch_of(current)
        if branch is not None and cdfg.node(parent).kind is NodeKind.IF:
            context.append((parent, branch))
        current = parent
    return tuple(context)


def _mutually_exclusive(cdfg: Cdfg, a: Copy, b: Copy) -> bool:
    """True when the two copies can never execute in the same run:
    same iteration, opposite branches of one shared IF."""
    if a[1] != b[1]:
        return False
    branches_a = dict(_branch_context(cdfg, a[0]))
    for root, branch in _branch_context(cdfg, b[0]):
        if root in branches_a and branches_a[root] != branch:
            return True
    return False


#: a race: (kind, variable, copy id, copy id) with the ids sorted
Race = Tuple[str, str, str, str]


def conflict_races(cdfg: Cdfg, unfold: int = 2) -> List[Race]:
    """Unordered conflicting access pairs over the unfolded graph.

    A conflict is two distinct node copies touching the same register
    where at least one writes; LOOP/IF nodes *read* their condition
    register.  A pair races when no constraint path orders it (either
    direction) and it is not branch-exclusive.  An empty result is the
    determinacy certificate: the nominal schedule's write streams are
    the streams of *every* schedule.
    """
    reach = cached_unfolded_reach(cdfg, unfold=unfold)
    writers: Dict[str, List[Copy]] = {}
    readers: Dict[str, List[Copy]] = {}
    for node in cdfg.nodes():
        if node.is_operation:
            written, read = node.writes, node.reads
        elif node.kind in (NodeKind.LOOP, NodeKind.IF):
            written, read = frozenset(), node.reads
        else:
            continue
        for copy in reach.copies(node.name):
            for var in written:
                writers.setdefault(var, []).append(copy)
            for var in read:
                readers.setdefault(var, []).append(copy)

    races: Set[Race] = set()

    def check(kind: str, var: str, a: Copy, b: Copy) -> None:
        if a == b:
            return
        if reach.path_exists(a, b) or reach.path_exists(b, a):
            return
        if _mutually_exclusive(cdfg, a, b):
            return
        first, second = sorted((_copy_id(a), _copy_id(b)))
        races.add((kind, var, first, second))

    for var, writes in writers.items():
        for i, a in enumerate(writes):
            for b in writes[i + 1 :]:
                check("write-write", var, a, b)
            for b in readers.get(var, []):
                check("read-write", var, a, b)
    return sorted(races)


def _merge_alias(after: Cdfg) -> Dict[str, str]:
    """Constituent name -> merged node name (GT4 renames)."""
    alias: Dict[str, str] = {}
    for node in after.operation_nodes():
        for part in node.name.split("; "):
            alias[part] = node.name
        alias[node.name] = node.name
    return alias


def _alias_race(alias: Dict[str, str], race: Race) -> Optional[Race]:
    kind, var, a_id, b_id = race
    mapped: List[str] = []
    for copy_id in (a_id, b_id):
        name, __, k = copy_id.partition("@")
        if name not in alias:
            return None  # node disappeared; nothing left to race
        mapped.append(alias[name] + (f"@{k}" if k else ""))
    if mapped[0] == mapped[1]:
        return None  # the pair collapsed into one node
    first, second = sorted(mapped)
    return (kind, var, first, second)


# ----------------------------------------------------------------------
# global-pass obligations
# ----------------------------------------------------------------------
def _obligation_order(
    report: TransformReport, before: Cdfg, after: Cdfg
) -> FlowObligation:
    name = report.name
    if name in ("GT1", "GT3"):
        extra = operation_order_pairs(after) - operation_order_pairs(before)
        if extra:
            return FlowObligation(
                "order",
                "refuted",
                f"{name} may only relax the firing order but introduced "
                f"{sorted(extra)[:3]}",
            )
        return FlowObligation("order", "proved", "after-order is a relaxation")
    if name == "GT2":
        if operation_order_pairs(before) != operation_order_pairs(after):
            return FlowObligation(
                "order", "refuted", "GT2 must preserve the firing order exactly"
            )
        return FlowObligation("order", "proved", "firing order is identical")
    missing = check_precedence_preserved(before, after, allow_missing=True)
    if missing:
        return FlowObligation(
            "order",
            "refuted",
            f"{name} lost ordering for {len(missing)} pairs, e.g. {missing[:3]}",
        )
    return FlowObligation("order", "proved", "all orderings preserved modulo merging")


def _obligation_determinacy(
    report: TransformReport, before: Cdfg, after: Cdfg
) -> Tuple[FlowObligation, Optional[Race]]:
    """Conflicting accesses stay ordered/exclusive; GT3's removed timed
    arcs are restored on a scratch copy first (their justification is
    checked separately by the ``timing-witnesses`` obligation)."""
    witnesses: List[str] = []
    graph = after
    if report.name == "GT3":
        graph = after.copy()
        for record in report.provenance:
            if record.kind != "timed-arc-removed":
                continue
            src, dst = str(record.detail["src"]), str(record.detail["dst"])
            if graph.has_node(src) and graph.has_node(dst) and not graph.has_arc(src, dst):
                graph.add_arc(Arc(src, dst, tags=frozenset({ArcTag(ArcRole.DATA)})))
                witnesses.append(f"restored timed arc {src} -> {dst}")

    alias = _merge_alias(after)
    known = set()
    for race in conflict_races(before):
        mapped = _alias_race(alias, race)
        if mapped is not None:
            known.add(mapped)
    new = [race for race in conflict_races(graph) if race not in known]
    if new:
        kind, var, a_id, b_id = new[0]
        return (
            FlowObligation(
                "determinacy",
                "refuted",
                f"unordered {kind} conflict on {var!r}: {a_id} vs {b_id} "
                f"({len(new)} racing pairs)",
                witnesses,
            ),
            new[0],
        )
    detail = "every conflicting access pair is ordered or branch-exclusive"
    if witnesses:
        detail += " (modulo the GT3 timing certificates)"
    return FlowObligation("determinacy", "proved", detail, witnesses), None


def _obligation_gt3_witnesses(
    report: TransformReport, before: Cdfg, delays: Optional[DelayModel]
) -> FlowObligation:
    """Replay GT3's removal sequence, re-deriving every timing proof."""
    working = before.copy()
    witnesses: List[str] = []
    for record in report.provenance:
        if record.kind != "timed-arc-removed":
            continue
        src, dst = str(record.detail["src"]), str(record.detail["dst"])
        witness_text = str(record.detail.get("witness", ""))
        wsrc, __, wdst = witness_text.partition(" -> ")
        try:
            candidate = working.arc(src, dst)
            witness = working.arc(wsrc, wdst)
        except Exception as exc:  # noqa: BLE001 — malformed provenance is a refutation
            return FlowObligation(
                "timing-witnesses",
                "refuted",
                f"cannot replay removal of {src} -> {dst}: {exc}",
                witnesses,
            )
        try:
            dominated = relative_arc_dominates(working, candidate, witness, delays=delays)
        except Exception as exc:  # noqa: BLE001
            dominated = False
            reason = f"timing analysis failed: {exc}"
        else:
            reason = "witness does not provably arrive last"
        if not dominated:
            return FlowObligation(
                "timing-witnesses",
                "refuted",
                f"removal of {src} -> {dst} unjustified: {reason} "
                f"(claimed witness {witness_text})",
                witnesses,
            )
        witnesses.append(
            f"{src} -> {dst} never last: witness {witness_text} dominates"
        )
        working.remove_arc(src, dst)
    return FlowObligation(
        "timing-witnesses",
        "proved",
        f"re-derived {len(witnesses)} relative-timing certificates",
        witnesses,
    )


def _obligation_occupancy(
    report: TransformReport, after: Cdfg, delays: Optional[DelayModel]
) -> FlowObligation:
    plan = report.artifacts.get("channel_plan")
    if plan is None:
        return FlowObligation("occupancy", "refuted", "GT5 emitted no channel plan")
    uncovered = [
        arc.key for arc in after.inter_fu_arcs() if arc.key not in plan.arc_to_channel
    ]
    if uncovered:
        return FlowObligation(
            "occupancy", "refuted", f"plan leaves arcs unchanneled: {uncovered[:3]}"
        )
    for seed in (NOMINAL, 0, 1):
        try:
            result = simulate_tokens(
                after, delay_model=delays, seed=seed, channel_plan=plan, strict=False
            )
        except Exception as exc:  # noqa: BLE001
            return FlowObligation(
                "occupancy", "refuted", f"simulation under plan failed (seed {seed!r}): {exc}"
            )
        if result.violations:
            return FlowObligation(
                "occupancy",
                "refuted",
                f"merged-channel safety violated (seed {seed!r}): {result.violations[0]}",
            )
    return FlowObligation(
        "occupancy", "proved", "plan covers all inter-FU arcs; merged wires safe"
    )


def _schedule_counterexample(
    before: Cdfg,
    after: Cdfg,
    delays: Optional[DelayModel],
    plan,
    racing: Optional[Race],
) -> Dict[str, object]:
    """Search for a concrete schedule separating the two designs.

    The specification is the pre-transform design's nominal write
    streams (flow equivalence makes them schedule-independent).  The
    search stresses the racing nodes' functional units to both delay
    extremes, then falls back to sampled seeds; every trial is
    deterministic, so the counterexample replays exactly.
    """
    base = delays or DelayModel()
    spec = simulate_tokens(
        before, delay_model=base, seed=NOMINAL, strict=False
    ).write_streams()

    trials: List[Tuple[str, DelayModel, object]] = []
    if racing is not None:
        units: List[str] = []
        for copy_id in racing[2:]:
            name = copy_id.partition("@")[0]
            if after.has_node(name):
                fu = after.fu_of(name)
                if fu and fu not in units:
                    units.append(fu)
        for fu in units:
            for interval in _STRESS_INTERVALS:
                trials.append(
                    (
                        f"override {fu} delay to {list(interval)}",
                        base.with_override(fu, None, interval),
                        NOMINAL,
                    )
                )
    for seed in range(_COUNTEREXAMPLE_SEEDS):
        trials.append((f"sampled delays, seed {seed}", base, seed))

    for description, model, seed in trials:
        try:
            result = simulate_tokens(
                after, delay_model=model, seed=seed, channel_plan=plan, strict=False
            )
        except Exception as exc:  # noqa: BLE001 — a crash is itself a witness
            return {
                "kind": "schedule",
                "description": description,
                "seed": None if seed is NOMINAL else seed,
                "effect": f"simulation failed: {exc}",
            }
        divergence = _first_stream_divergence(spec, result.write_streams())
        if divergence is not None:
            var, want, have = divergence
            return {
                "kind": "schedule",
                "description": description,
                "seed": None if seed is NOMINAL else seed,
                "variable": var,
                "expected_stream": want,
                "observed_stream": have,
            }
        if result.violations:
            return {
                "kind": "schedule",
                "description": description,
                "seed": None if seed is NOMINAL else seed,
                "effect": f"channel safety: {result.violations[0]}",
            }
    payload: Dict[str, object] = {
        "kind": "potential-race",
        "note": "no separating schedule found within the search budget",
    }
    if racing is not None:
        payload["pair"] = list(racing)
    return payload


def check_global_flow(
    report: TransformReport,
    before: Cdfg,
    after: Cdfg,
    delays: Optional[DelayModel] = None,
    index: int = 0,
) -> FlowProof:
    """Discharge the flow-equivalence obligations of one GT pass."""
    if not report.applied:
        return FlowProof(report.name, "cdfg", index, "no-op")

    plan = report.artifacts.get("channel_plan")
    obligations = [_obligation_order(report, before, after)]
    determinacy, racing = _obligation_determinacy(report, before, after)
    obligations.append(determinacy)
    if report.name == "GT3":
        obligations.append(_obligation_gt3_witnesses(report, before, delays))
    if report.name == "GT5":
        obligations.append(_obligation_occupancy(report, after, delays))

    spec = simulate_tokens(
        before, delay_model=delays, seed=NOMINAL, strict=False
    ).write_streams()
    nominal_counterexample: Optional[Dict[str, object]] = None
    try:
        result = simulate_tokens(
            after, delay_model=delays, seed=NOMINAL, strict=False, channel_plan=plan
        )
    except Exception as exc:  # noqa: BLE001 — a stuck design refutes the pass
        got: Dict[str, List[float]] = {}
        divergence = None
        obligations.append(
            FlowObligation(
                "streams", "refuted", f"nominal simulation failed: {exc}"
            )
        )
        nominal_counterexample = {
            "kind": "schedule",
            "description": "nominal delays",
            "seed": None,
            "effect": f"simulation failed: {type(exc).__name__}: {exc}",
        }
    else:
        got = result.write_streams()
        divergence = _first_stream_divergence(spec, got)
    if nominal_counterexample is not None:
        pass
    elif divergence is not None:
        var, want, have = divergence
        obligations.append(
            FlowObligation(
                "streams",
                "refuted",
                f"nominal write stream of {var!r} changed: {want} -> {have}",
            )
        )
        nominal_counterexample = {
            "kind": "schedule",
            "description": "nominal delays",
            "seed": None,
            "variable": var,
            "expected_stream": want,
            "observed_stream": have,
        }
    else:
        obligations.append(
            FlowObligation(
                "streams",
                "proved",
                f"nominal write streams identical over {len(spec)} registers",
            )
        )

    counterexample = None
    if any(not o.proved for o in obligations):
        counterexample = nominal_counterexample or _schedule_counterexample(
            before, after, delays, plan, racing
        )
    verdict = "refuted" if counterexample is not None or any(
        not o.proved for o in obligations
    ) else "proved"
    return FlowProof(
        report.name,
        "cdfg",
        index,
        verdict,
        obligations,
        _stream_signature(got),
        counterexample,
    )


# ----------------------------------------------------------------------
# observable stream languages (local passes + minimization)
# ----------------------------------------------------------------------
#: an observable: ("wire", name) or ("act",) + flattened action tuple
Observable = Tuple


def _observable_key(observable: Observable) -> str:
    if observable[0] == "wire":
        return f"wire:{observable[1]}"
    return "act:" + ":".join(str(part) for part in observable[1])


def machine_observables(machine: BurstModeMachine) -> Set[Observable]:
    """The externally visible alphabet of one controller: its
    GLOBAL_READY wires and the datapath actions its local requests
    trigger (stable across LT5 wire merges)."""
    observables: Set[Observable] = set()
    for signal in machine.signals():
        if signal.kind is SignalKind.GLOBAL_READY:
            observables.add(("wire", signal.name))
        for action in _flatten_actions(signal):
            observables.add(("act", action))
    return observables


def _event_map(
    machine: BurstModeMachine, observable: Observable
) -> Dict[int, Optional[str]]:
    """Transition uid -> event symbol for ``observable`` (None = tau).

    Wire observables see their rises/falls in either burst; action
    observables see the rising local request that launches them.
    Falling local edges and acknowledgments are unobservable — that is
    exactly the freedom LT1–LT4 exploit.
    """
    events: Dict[int, Optional[str]] = {}
    for transition in machine.transitions():
        symbol: Optional[str] = None
        if observable[0] == "wire":
            name = observable[1]
            for burst_edges in (
                transition.input_burst.edges,
                transition.output_burst.edges,
            ):
                for edge in burst_edges:
                    if edge.signal == name:
                        symbol = "+" if edge.rising else "-"
        else:
            action = observable[1]
            for edge in transition.output_burst.edges:
                if not edge.rising:
                    continue
                try:
                    signal = machine.signal(edge.signal)
                except Exception:  # noqa: BLE001 — undeclared wire: no action
                    continue
                if action in _flatten_actions(signal):
                    symbol = "!"
        events[transition.uid] = symbol
    return events


class _Projection:
    """One machine projected onto one observable: an NFA whose
    non-event transitions are epsilon moves, determinized lazily."""

    def __init__(self, machine: BurstModeMachine, observable: Observable):
        self.machine = machine
        self.events = _event_map(machine, observable)

    def closure(self, states: FrozenSet[str]) -> FrozenSet[str]:
        seen = set(states)
        stack = list(states)
        while stack:
            state = stack.pop()
            for transition in self.machine.transitions_from(state):
                if self.events[transition.uid] is None and transition.dst not in seen:
                    seen.add(transition.dst)
                    stack.append(transition.dst)
        return frozenset(seen)

    def initial(self) -> FrozenSet[str]:
        return self.closure(frozenset({self.machine.initial_state}))

    def step(self, states: FrozenSet[str], symbol: str) -> FrozenSet[str]:
        after: Set[str] = set()
        for state in states:
            for transition in self.machine.transitions_from(state):
                if self.events[transition.uid] == symbol:
                    after.add(transition.dst)
        return self.closure(frozenset(after))


_ALPHABET: Dict[str, Tuple[str, ...]] = {"wire": ("+", "-"), "act": ("!",)}


def stream_language_counterexample(
    before: BurstModeMachine, after: BurstModeMachine, observable: Observable
) -> Optional[List[str]]:
    """Shortest event word separating the two machines' projected
    stream languages, or None when the languages are equal."""
    alphabet = _ALPHABET[observable[0]]
    proj_a = _Projection(before, observable)
    proj_b = _Projection(after, observable)
    start = (proj_a.initial(), proj_b.initial())
    queue: List[Tuple[FrozenSet[str], FrozenSet[str], List[str]]] = [
        (start[0], start[1], [])
    ]
    seen = {start}
    while queue:
        set_a, set_b, word = queue.pop(0)
        for symbol in alphabet:
            next_a = proj_a.step(set_a, symbol)
            next_b = proj_b.step(set_b, symbol)
            if bool(next_a) != bool(next_b):
                return word + [symbol]
            if not next_a:
                continue
            pair = (next_a, next_b)
            if pair not in seen:
                seen.add(pair)
                queue.append((next_a, next_b, word + [symbol]))
    return None


def observable_signature(
    machine: BurstModeMachine, observable: Observable
) -> Dict[str, object]:
    """Canonical DFA fingerprint of one observable's stream language
    (discovery-order subset numbering makes it deterministic)."""
    alphabet = _ALPHABET[observable[0]]
    projection = _Projection(machine, observable)
    numbering: Dict[FrozenSet[str], int] = {}
    table: List[List[int]] = []
    queue: List[FrozenSet[str]] = []

    def number(subset: FrozenSet[str]) -> int:
        if subset not in numbering:
            numbering[subset] = len(numbering)
            table.append([])
            queue.append(subset)
        return numbering[subset]

    number(projection.initial())
    position = 0
    while position < len(queue):
        subset = queue[position]
        row: List[int] = []
        for symbol in alphabet:
            target = projection.step(subset, symbol)
            row.append(-1 if not target else number(target))
        table[numbering[subset]] = row
        position += 1
    blob = json.dumps(table).encode("utf-8")
    return {
        "digest": hashlib.blake2b(blob, digest_size=8).hexdigest(),
        "length": len(table),
    }


def machine_flow_obligations(
    before: BurstModeMachine, after: BurstModeMachine
) -> Tuple[List[FlowObligation], Optional[Dict[str, object]]]:
    """The machine-level flow obligations shared by the LT checks and
    the minimization gate; returns (obligations, counterexample)."""
    obligations: List[FlowObligation] = []
    counterexample: Optional[Dict[str, object]] = None

    mismatched: List[str] = []
    for outputs in (True, False):
        direction = "output" if outputs else "input"
        old = _global_edges(before, outputs)
        new = _global_edges(after, outputs)
        if old != new:
            mismatched.append(
                f"{direction} edges {sorted(old - new)} lost, {sorted(new - old)} gained"
            )
    if mismatched:
        obligations.append(
            FlowObligation("handshake", "refuted", "; ".join(mismatched))
        )
    else:
        obligations.append(
            FlowObligation("handshake", "proved", "global handshake edges preserved")
        )

    observables = sorted(
        machine_observables(before) | machine_observables(after), key=_observable_key
    )
    separated: Optional[Tuple[Observable, List[str]]] = None
    for observable in observables:
        word = stream_language_counterexample(before, after, observable)
        if word is not None:
            separated = (observable, word)
            break
    if separated is not None:
        observable, word = separated
        obligations.append(
            FlowObligation(
                "streams",
                "refuted",
                f"observable {_observable_key(observable)} separated by "
                f"event word {''.join(word)!r}",
            )
        )
        counterexample = {
            "kind": "distinguishing-word",
            "observable": _observable_key(observable),
            "word": word,
        }
    else:
        obligations.append(
            FlowObligation(
                "streams",
                "proved",
                f"stream languages equal over {len(observables)} observables",
            )
        )

    old_actions = _machine_actions(before)
    new_actions = _machine_actions(after)
    if old_actions != new_actions:
        obligations.append(
            FlowObligation(
                "actions",
                "refuted",
                f"datapath actions changed: -{sorted(old_actions - new_actions)} "
                f"+{sorted(new_actions - old_actions)}",
            )
        )
    else:
        obligations.append(
            FlowObligation(
                "actions", "proved", f"{len(old_actions)} datapath actions preserved"
            )
        )
    return obligations, counterexample


def _global_edges(machine: BurstModeMachine, outputs: bool) -> Set[Tuple[str, bool]]:
    edges: Set[Tuple[str, bool]] = set()
    for transition in machine.transitions():
        burst = transition.output_burst if outputs else transition.input_burst
        for edge in burst.edges:
            try:
                kind = machine.signal(edge.signal).kind
            except Exception:  # noqa: BLE001
                continue
            if kind is SignalKind.GLOBAL_READY:
                edges.add((edge.signal, edge.rising))
    return edges


def _machine_actions(machine: BurstModeMachine) -> Set[tuple]:
    actions: Set[tuple] = set()
    for transition in machine.transitions():
        for edge in transition.output_burst.edges:
            if not edge.rising:
                continue
            try:
                signal = machine.signal(edge.signal)
            except Exception:  # noqa: BLE001
                continue
            actions.update(_flatten_actions(signal))
    return actions


def _machine_signature(machine: BurstModeMachine) -> Dict[str, Dict[str, object]]:
    return {
        _observable_key(observable): observable_signature(machine, observable)
        for observable in sorted(machine_observables(machine), key=_observable_key)
    }


def check_local_flow(
    report: LocalReport,
    before: BurstModeMachine,
    after: BurstModeMachine,
    index: int = 0,
) -> FlowProof:
    """Discharge the flow-equivalence obligations of one LT pass on one
    machine: the observable stream languages must be preserved."""
    if not report.applied:
        return FlowProof(report.name, report.machine, index, "no-op")
    obligations, counterexample = machine_flow_obligations(before, after)
    verdict = "refuted" if any(not o.proved for o in obligations) else "proved"
    return FlowProof(
        report.name,
        report.machine,
        index,
        verdict,
        obligations,
        _machine_signature(after),
        counterexample,
    )


# ----------------------------------------------------------------------
# oracle adapters (optimize_global / optimize_local hooks)
# ----------------------------------------------------------------------
def make_flow_global_oracle(
    delays: Optional[DelayModel] = None,
    collect: Optional[List[FlowProof]] = None,
    strict: bool = True,
):
    """Per-GT flow-proof oracle for :func:`optimize_global`.

    Appends every certificate to ``collect``; with ``strict`` a
    refuted proof raises :class:`FlowRefutedError` (message prefix
    ``flow[GTn]:``) aborting the script, otherwise refutations are
    only collected.
    """
    proofs = collect if collect is not None else []

    def oracle(report: TransformReport, before: Cdfg, after: Cdfg) -> None:
        proof = check_global_flow(report, before, after, delays=delays, index=len(proofs))
        proofs.append(proof)
        if strict and not proof.proved:
            raise FlowRefutedError(f"flow[{report.name}]: {proof.failure()}")

    return oracle


def make_flow_local_oracle(
    collect: Optional[List[FlowProof]] = None, strict: bool = True
):
    """Per-LT flow-proof oracle for :func:`optimize_local` (message
    prefix ``flow[LTn]:`` on refutation)."""
    proofs = collect if collect is not None else []

    def oracle(
        report: LocalReport, before: BurstModeMachine, after: BurstModeMachine
    ) -> None:
        proof = check_local_flow(report, before, after, index=len(proofs))
        proofs.append(proof)
        if strict and not proof.proved:
            raise FlowRefutedError(
                f"flow[{report.name}]: machine {report.machine}: {proof.failure()}"
            )

    return oracle


def compose_global_oracles(*oracles):
    """One GT oracle running each given oracle in turn (None skipped)."""
    active = [oracle for oracle in oracles if oracle is not None]

    def oracle(report: TransformReport, before: Cdfg, after: Cdfg) -> None:
        for check in active:
            check(report, before, after)

    return oracle


def compose_local_oracles(*oracles):
    """One LT oracle running each given oracle in turn (None skipped)."""
    active = [oracle for oracle in oracles if oracle is not None]

    def oracle(
        report: LocalReport, before: BurstModeMachine, after: BurstModeMachine
    ) -> None:
        for check in active:
            check(report, before, after)

    return oracle


# ----------------------------------------------------------------------
# workload-level driver
# ----------------------------------------------------------------------
#: sampled delay seeds for the checkpoint ``schedules`` obligation —
#: delay-dependent divergences the NOMINAL schedule cannot expose
#: (e.g. a lost inter-FU synchronization after an unsound merge)
_CHECKPOINT_SEEDS = (0, 1, 2, 3)


def _checkpoint_proof(
    stage: str,
    index: int,
    golden: Dict[str, float],
    token_streams: Dict[str, List[float]],
    system_result,
    design=None,
    delays: Optional[DelayModel] = None,
) -> FlowProof:
    """Certify one synthesized design against the token-level streams
    and the golden reference (``extract`` and ``design`` stages)."""
    obligations: List[FlowObligation] = []
    counterexample: Optional[Dict[str, object]] = None

    system_streams = system_result.write_streams()
    divergence = _first_stream_divergence(token_streams, system_streams)
    if divergence is not None:
        var, want, have = divergence
        obligations.append(
            FlowObligation(
                "streams",
                "refuted",
                f"system write stream of {var!r} diverges from the token "
                f"semantics: {want} -> {have}",
            )
        )
        counterexample = {
            "kind": "schedule",
            "description": "nominal delays",
            "seed": None,
            "variable": var,
            "expected_stream": want,
            "observed_stream": have,
        }
    else:
        obligations.append(
            FlowObligation(
                "streams",
                "proved",
                f"system write streams match the token semantics over "
                f"{len(token_streams)} registers",
            )
        )

    wrong = [
        name
        for name, value in sorted(golden.items())
        if system_result.registers.get(name) != value
    ]
    if wrong:
        name = wrong[0]
        obligations.append(
            FlowObligation(
                "registers",
                "refuted",
                f"final register {name!r}: got "
                f"{system_result.registers.get(name)!r}, golden says {golden[name]!r}",
            )
        )
    else:
        obligations.append(
            FlowObligation(
                "registers", "proved", f"{len(golden)} final registers match the golden model"
            )
        )

    problems = list(system_result.violations) + list(
        getattr(system_result, "hazards", [])
    )
    if problems:
        obligations.append(
            FlowObligation("safety", "refuted", f"runtime problem: {problems[0]}")
        )
    else:
        obligations.append(
            FlowObligation("safety", "proved", "no channel violations or datapath hazards")
        )

    if design is not None:
        from repro.sim.system import simulate_system

        failure = None
        for seed in _CHECKPOINT_SEEDS:
            try:
                sampled = simulate_system(design, delays=delays, seed=seed, strict=False)
            except Exception as exc:  # noqa: BLE001 — a stuck schedule refutes
                failure = (seed, None, f"simulation failed: {type(exc).__name__}: {exc}")
                break
            wrong_seeded = [
                name
                for name, value in sorted(golden.items())
                if sampled.registers.get(name) != value
            ]
            if wrong_seeded:
                name = wrong_seeded[0]
                failure = (
                    seed,
                    name,
                    f"register {name!r}: got {sampled.registers.get(name)!r}, "
                    f"golden says {golden[name]!r}",
                )
                break
            if sampled.violations:
                failure = (seed, None, f"violation: {sampled.violations[0]}")
                break
        if failure is not None:
            seed, variable, detail = failure
            obligations.append(
                FlowObligation(
                    "schedules", "refuted", f"under delay seed {seed}: {detail}"
                )
            )
            if counterexample is None:
                counterexample = {
                    "kind": "schedule",
                    "description": "sampled delays",
                    "seed": seed,
                    "variable": variable,
                    "effect": detail,
                }
        else:
            obligations.append(
                FlowObligation(
                    "schedules",
                    "proved",
                    f"register file matches the golden model under "
                    f"{len(_CHECKPOINT_SEEDS)} sampled delay schedules",
                )
            )

    verdict = "refuted" if any(not o.proved for o in obligations) else "proved"
    return FlowProof(
        stage,
        "system",
        index,
        verdict,
        obligations,
        _stream_signature(system_streams),
        counterexample,
    )


def prove_workload(
    workload: str,
    gts: Sequence[str] = None,
    lts: Sequence[str] = None,
    delays: Optional[DelayModel] = None,
    delay_overrides: Sequence = (),
    params: Optional[Dict[str, object]] = None,
    minimize: bool = False,
) -> FlowReport:
    """Synthesize ``workload`` end to end, certifying every pass.

    Returns a :class:`FlowReport` with one :class:`FlowProof` per GT/LT
    application plus ``extract``/``design`` checkpoints (and
    ``minimize`` certificates when requested).  Never raises: synthesis
    failures land in ``report.error`` and refutations in the proofs.
    """
    from repro.afsm.extract import extract_controllers
    from repro.channels import derive_channels
    from repro.local_transforms import optimize_local
    from repro.local_transforms.scripts import STANDARD_LOCAL_SEQUENCE
    from repro.sim.system import simulate_system
    from repro.transforms import optimize_global
    from repro.transforms.scripts import STANDARD_SEQUENCE
    from repro.workloads import build_workload, golden_reference

    gts = tuple(STANDARD_SEQUENCE) if gts is None else tuple(
        name for name in STANDARD_SEQUENCE if name in set(gts)
    )
    lts = tuple(STANDARD_LOCAL_SEQUENCE) if lts is None else tuple(
        name for name in STANDARD_LOCAL_SEQUENCE if name in set(lts)
    )
    params = dict(params or {})
    overrides = tuple(
        (fu, operator, tuple(interval)) for fu, operator, interval in delay_overrides
    )
    if delays is None and overrides:
        delays = DelayModel()
        for fu, operator, interval in overrides:
            delays = delays.with_override(fu, operator, interval)

    report = FlowReport(
        workload=workload,
        params=params,
        gts=gts,
        lts=lts,
        delay_overrides=overrides,
        minimize=minimize,
    )
    try:
        golden = golden_reference(workload, **params)
        cdfg = build_workload(workload, **params)

        plan = None
        final_cdfg = cdfg
        if gts:
            optimized = optimize_global(
                cdfg,
                enabled=gts,
                delays=delays,
                oracle=make_flow_global_oracle(
                    delays=delays, collect=report.proofs, strict=False
                ),
            )
            final_cdfg, plan = optimized.cdfg, optimized.plan
        if plan is None:
            plan = derive_channels(final_cdfg)

        token_streams = simulate_tokens(
            final_cdfg, delay_model=delays, seed=NOMINAL, strict=False, channel_plan=plan
        ).write_streams()

        design = extract_controllers(final_cdfg, plan)
        extracted = simulate_system(design, delays=delays, seed=NOMINAL, strict=False)
        report.proofs.append(
            _checkpoint_proof(
                "extract",
                len(report.proofs),
                golden,
                token_streams,
                extracted,
                design=design,
                delays=delays,
            )
        )

        if lts:
            design = optimize_local(
                design,
                enabled=lts,
                oracle=make_flow_local_oracle(collect=report.proofs, strict=False),
            ).design

        if minimize:
            from repro.afsm.minimize import minimize_design

            design, __, minimize_proofs = minimize_design(design)
            for proof in minimize_proofs:
                proof.index = len(report.proofs)
                report.proofs.append(proof)

        final = simulate_system(design, delays=delays, seed=NOMINAL, strict=False)
        report.proofs.append(
            _checkpoint_proof(
                "design",
                len(report.proofs),
                golden,
                token_streams,
                final,
                design=design,
                delays=delays,
            )
        )
    except Exception as exc:  # noqa: BLE001 — a proof driver must not crash
        report.error = f"{type(exc).__name__}: {exc}"
    return report


def replay_flow_report(payload) -> Tuple[bool, str]:
    """Re-derive a report's certificates and byte-compare.

    ``payload`` is a :class:`FlowReport`, a parsed dict, or a path.
    Returns ``(identical, message)``.
    """
    if isinstance(payload, str):
        payload = load_flow_report(payload)
    elif isinstance(payload, dict):
        payload = FlowReport.from_dict(payload)
    fresh = prove_workload(
        payload.workload,
        gts=payload.gts,
        lts=payload.lts,
        delay_overrides=payload.delay_overrides,
        params=payload.params,
        minimize=payload.minimize,
    )
    if fresh.to_json() == payload.to_json():
        return True, (
            f"{payload.workload}: {len(payload.proofs)} certificates replayed "
            "byte-identically"
        )
    for index, (old, new) in enumerate(zip(payload.proofs, fresh.proofs)):
        if old.to_dict() != new.to_dict():
            return False, (
                f"{payload.workload}: certificate {index} ({old.stage}"
                f"[{old.subject}]) does not replay"
            )
    return False, (
        f"{payload.workload}: certificate count changed "
        f"({len(payload.proofs)} -> {len(fresh.proofs)})"
    )
