"""Counterexample shrinking.

A failing :class:`~repro.verify.conformance.VerifyCase` found by the
fuzzer usually carries irrelevant freight: transforms that are not
implicated, delay overrides that do not matter, input parameters far
from minimal.  :func:`shrink_case` greedily minimizes the
``(input, delay, transform-subset)`` triple while the case keeps
failing, so the reported counterexample is the smallest the greedy
pass can reach — typically a single transform plus one tiny input.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterator, Tuple

from repro.verify.conformance import CaseResult, VerifyCase, check_case

#: smallest known-terminating inputs per workload, used as a shrink
#: target for the parameter component of a counterexample
MINIMAL_PARAMS: Dict[str, Dict[str, object]] = {
    "diffeq": {"dx": 0.5, "a": 0.5},
    "gcd": {"a0": 2, "b0": 1},
    "ewf": {"n": 1},
    "fir": {"taps": 2, "samples": 1},
}


def _candidates(case: VerifyCase) -> Iterator[VerifyCase]:
    """Strictly simpler variants of ``case``, most aggressive first."""
    minimal = MINIMAL_PARAMS.get(case.workload)
    if minimal is not None and dict(case.params) != minimal:
        yield replace(case, params=dict(minimal))
    if case.delay_overrides:
        yield replace(case, delay_overrides=())
    for index in range(len(case.delay_overrides)):
        yield replace(
            case,
            delay_overrides=case.delay_overrides[:index] + case.delay_overrides[index + 1 :],
        )
    for index in range(len(case.lts)):
        yield replace(case, lts=case.lts[:index] + case.lts[index + 1 :])
    for index in range(len(case.gts)):
        yield replace(case, gts=case.gts[:index] + case.gts[index + 1 :])
    if case.seed != 0:
        yield replace(case, seed=0)


def shrink_case(
    case: VerifyCase, max_attempts: int = 64
) -> Tuple[VerifyCase, CaseResult]:
    """Greedily minimize a failing case.

    Repeatedly tries the simpler variants from :func:`_candidates`,
    adopting any that still fails, until a fixpoint or the attempt
    budget.  Returns the minimal case and its (failing) result; if
    ``case`` does not actually fail it is returned unchanged with its
    passing result.
    """
    result = check_case(case)
    if result.ok:
        return case, result
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _candidates(case):
            attempts += 1
            candidate_result = check_case(candidate)
            if not candidate_result.ok:
                case, result = candidate, candidate_result
                improved = True
                break
            if attempts >= max_attempts:
                break
    return case, result
