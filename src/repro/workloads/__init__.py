"""Benchmark workloads.

- :mod:`repro.workloads.diffeq`: the paper's differential-equation
  solver case study, reconstructed from the paper's prose;
- :mod:`repro.workloads.gcd`: Euclid's GCD (exercises IF/ENDIF inside
  a loop);
- :mod:`repro.workloads.ewf`: a small elliptic-wave-filter-style
  multiply-accumulate pipeline (deeper FU schedules, no loop-carried
  control decisions);
- :mod:`repro.workloads.reference`: golden numeric models used to check
  that every synthesis level computes the same results.
"""

from repro.workloads.diffeq import build_diffeq_cdfg, DIFFEQ_DEFAULTS
from repro.workloads.gcd import build_gcd_cdfg
from repro.workloads.ewf import build_ewf_cdfg
from repro.workloads.fir import build_fir_cdfg, fir_reference
from repro.workloads.reference import diffeq_reference, gcd_reference, ewf_reference

__all__ = [
    "build_diffeq_cdfg",
    "DIFFEQ_DEFAULTS",
    "build_gcd_cdfg",
    "build_ewf_cdfg",
    "build_fir_cdfg",
    "diffeq_reference",
    "gcd_reference",
    "ewf_reference",
    "fir_reference",
]
