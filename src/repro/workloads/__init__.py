"""Benchmark workloads.

- :mod:`repro.workloads.diffeq`: the paper's differential-equation
  solver case study, reconstructed from the paper's prose;
- :mod:`repro.workloads.gcd`: Euclid's GCD (exercises IF/ENDIF inside
  a loop);
- :mod:`repro.workloads.ewf`: a small elliptic-wave-filter-style
  multiply-accumulate pipeline (deeper FU schedules, no loop-carried
  control decisions);
- :mod:`repro.workloads.reference`: golden numeric models used to check
  that every synthesis level computes the same results.
"""

from typing import Callable, Dict

from repro.cdfg.graph import Cdfg
from repro.workloads.diffeq import build_diffeq_cdfg, DIFFEQ_DEFAULTS
from repro.workloads.gcd import build_gcd_cdfg
from repro.workloads.ewf import build_ewf_cdfg
from repro.workloads.fir import build_fir_cdfg, fir_reference
from repro.workloads.reference import diffeq_reference, gcd_reference, ewf_reference

def _build_diffeq(params=None, **kwargs) -> Cdfg:
    """Adapter: :func:`build_diffeq_cdfg` takes one ``params`` dict while
    every other builder (and every golden model) takes keyword
    arguments; accept both spellings so the registries stay uniform."""
    if kwargs:
        params = dict(params or {}, **kwargs)
    return build_diffeq_cdfg(params)


#: Name -> builder registry; lets the API and CLI resolve workloads by
#: name (``synthesize("diffeq")``).  Builders accept keyword arguments
#: (e.g. ``build_workload("fir", taps=16)``).
WORKLOADS: Dict[str, Callable[..., Cdfg]] = {
    "diffeq": _build_diffeq,
    "gcd": build_gcd_cdfg,
    "ewf": build_ewf_cdfg,
    "fir": build_fir_cdfg,
}

#: Name -> golden model; same keyword arguments as the matching
#: builder, returns the reference register file the synthesized design
#: must reproduce exactly.
GOLDEN_MODELS: Dict[str, Callable[..., Dict[str, float]]] = {
    "diffeq": diffeq_reference,
    "gcd": gcd_reference,
    "ewf": ewf_reference,
    "fir": fir_reference,
}


def workload_names() -> list:
    """The registered workload names, sorted."""
    return sorted(WORKLOADS)


def build_workload(name: str, **kwargs) -> Cdfg:
    """Build a registered workload by (case-insensitive) name.

    Raises :class:`KeyError` naming the known workloads for anything
    not registered.
    """
    builder = WORKLOADS.get(name.strip().lower())
    if builder is None:
        raise KeyError(
            f"unknown workload {name!r}; known workloads: {', '.join(workload_names())}"
        )
    return builder(**kwargs)


def golden_reference(name: str, **kwargs) -> Dict[str, float]:
    """Run the golden Python model of a workload on the given inputs."""
    model = GOLDEN_MODELS.get(name.strip().lower())
    if model is None:
        raise KeyError(
            f"unknown workload {name!r}; known workloads: {', '.join(workload_names())}"
        )
    return model(**kwargs)


__all__ = [
    "WORKLOADS",
    "GOLDEN_MODELS",
    "workload_names",
    "build_workload",
    "golden_reference",
    "build_diffeq_cdfg",
    "DIFFEQ_DEFAULTS",
    "build_gcd_cdfg",
    "build_ewf_cdfg",
    "build_fir_cdfg",
    "diffeq_reference",
    "gcd_reference",
    "ewf_reference",
    "fir_reference",
]
