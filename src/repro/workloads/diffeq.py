"""The differential-equation solver case study (paper Section 2.1, Figure 1).

The classic Paulin-Knight high-level-synthesis benchmark integrates

.. math:: y'' + 3xy' + 3y = 0

with forward Euler steps.  The behavioural loop is::

    while (x < a):
        x1 = x + dx
        u1 = u - (3 * x * u * dx) - (3 * y * dx)
        y1 = y + u * dx
        x, u, y = x1, u1, y1

The paper's scheduled, resource-bound CDFG uses two ALUs and two
multipliers and the factorization ``u1 = u - 3*dx*(y + u*x)``: register
``X1`` latches the incremented X at the *end* of each iteration, so the
next iteration's ``M1 := U * X1`` sees its own start-of-step x — the
standard benchmark semantics.  The statement-to-unit binding is taken
verbatim from the paper:

========  ==============================================
ALU1      ``B := dx2 + dx`` (before the loop; B = 3*dx),
          ``A := Y + M1``, ``U := U - M1``
MUL1      ``M1 := U * X1``, ``M1 := A * B``
MUL2      ``M2 := U * dx``
ALU2      ``LOOP``, ``X := X + dx``, ``Y := Y + M2``,
          ``X1 := X``, ``C := X < a``, ``ENDLOOP``
========  ==============================================

The derived constraint-arc set reproduces every fact stated in the
paper's prose; :mod:`tests.cdfg.test_diffeq_reconstruction` checks them
(17 channels, arc 5 dominated by arcs 6+7, GT3's arcs 10/11, ...).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cdfg.builder import CdfgBuilder
from repro.cdfg.graph import Cdfg

#: Functional unit names, in the paper's column order.
ALU1 = "ALU1"
MUL1 = "MUL1"
MUL2 = "MUL2"
ALU2 = "ALU2"
DIFFEQ_FUS = (ALU1, MUL1, MUL2, ALU2)

#: Default problem parameters: integrate from x=0 to a=0.4 with dx=0.1
#: (4 loop iterations), starting at y(0)=1, y'(0)=u0.
DIFFEQ_DEFAULTS: Dict[str, float] = {
    "x0": 0.0,
    "y0": 1.0,
    "u0": 0.0,
    "dx": 0.125,
    "a": 1.0,
}

#: Node names of the reconstruction, exported for tests and examples.
N_B = "B := dx2 + dx"
N_A = "A := Y + M1"
N_U = "U := U - M1"
N_M1A = "M1 := U * X1"
N_M1B = "M1 := A * B"
N_M2 = "M2 := U * dx"
N_X = "X := X + dx"
N_Y = "Y := Y + M2"
N_X1 = "X1 := X"
N_C = "C := X < a"
N_LOOP = "LOOP"
N_ENDLOOP = "ENDLOOP"


def build_diffeq_cdfg(params: Optional[Dict[str, float]] = None) -> Cdfg:
    """Build the paper's DIFFEQ CDFG (Figure 1, unoptimized).

    ``params`` overrides entries of :data:`DIFFEQ_DEFAULTS`.
    """
    values = dict(DIFFEQ_DEFAULTS)
    if params:
        unknown = set(params) - set(values)
        if unknown:
            raise ValueError(f"unknown DIFFEQ parameters: {sorted(unknown)}")
        values.update(params)

    builder = CdfgBuilder("diffeq")
    for fu in DIFFEQ_FUS:
        builder.functional_unit(fu)
    builder.input("dx", values["dx"])
    builder.input("dx2", 2 * values["dx"])
    builder.input("a", values["a"])

    builder.op(N_B, fu=ALU1)
    with builder.loop("C", fu=ALU2):
        # program order fixes data dependencies and per-unit schedules;
        # the interleaving below reproduces the paper's arc set
        builder.op(N_M1A, fu=MUL1)
        builder.op(N_M2, fu=MUL2)
        builder.op(N_X, fu=ALU2)
        builder.op(N_A, fu=ALU1)
        builder.op(N_M1B, fu=MUL1)
        builder.op(N_Y, fu=ALU2)
        builder.op(N_X1, fu=ALU2)
        builder.op(N_U, fu=ALU1)
        builder.op(N_C, fu=ALU2)

    x0 = values["x0"]
    initial = {
        "X": x0,
        "Y": values["y0"],
        "U": values["u0"],
        "X1": x0,  # pre-loop copy of X, consumed by the first iteration
        "C": 1.0 if x0 < values["a"] else 0.0,
        # M1/M2/A/B start undefined in hardware; any value works because
        # the first iteration writes them before their first (data-arc
        # ordered) read.  Zero keeps simulation traces tidy.
        "M1": 0.0,
        "M2": 0.0,
        "A": 0.0,
        "B": 0.0,
    }
    return builder.build(initial=initial)
