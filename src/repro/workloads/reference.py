"""Golden numeric models for the workloads.

These are straight-line Python implementations of the behavioural
programs.  Every synthesis level (token simulation of the CDFG before
and after each transform, AFSM-level simulation of the extracted
controllers) must reproduce these register files exactly — the
simulators compare against them.
"""

from __future__ import annotations

from typing import Dict


def diffeq_reference(
    x0: float = 0.0,
    y0: float = 1.0,
    u0: float = 0.0,
    dx: float = 0.125,
    a: float = 1.0,
) -> Dict[str, float]:
    """Reference register file after the DIFFEQ loop terminates.

    Mirrors the CDFG's exact factorization (``B = 3*dx``; ``U`` update
    via ``(Y + U*X) * B``) so floating-point results match bit-for-bit.
    """
    x, y, u = x0, y0, u0
    x1 = x0
    b = (2 * dx) + dx
    m1 = m2 = a_val = 0.0
    c = 1.0 if x < a else 0.0
    while c:
        m1 = u * x1
        m2 = u * dx
        x = x + dx
        a_val = y + m1
        m1 = a_val * b
        y = y + m2
        x1 = x
        u = u - m1
        c = 1.0 if x < a else 0.0
    return {
        "X": x,
        "Y": y,
        "U": u,
        "X1": x1,
        "A": a_val,
        "B": b,
        "M1": m1,
        "M2": m2,
        "C": c,
    }


def gcd_reference(a0: int = 84, b0: int = 36) -> Dict[str, float]:
    """Reference register file for the GCD workload."""
    a, b = a0, b0
    c = 1.0 if a != b else 0.0
    d = 1.0 if a > b else 0.0
    while c:
        if d:
            a = a - b
        else:
            b = b - a
        d = 1.0 if a > b else 0.0
        c = 1.0 if a != b else 0.0
    return {"A": a, "B": b, "C": c, "D": d}


def ewf_reference(
    s0: float = 1.0,
    y0: float = 0.0,
    k1: float = 0.5,
    k2: float = 0.25,
    decay: float = 0.75,
    n: int = 8,
) -> Dict[str, float]:
    """Reference register file for the EWF-style filter workload."""
    s, y = s0, y0
    i = 0.0
    t1 = t2 = 0.0
    c = 1.0 if i < n else 0.0
    while c:
        t1 = s * k1
        t2 = y * k2
        y = t1 + t2
        s = s * decay
        i = i + 1
        c = 1.0 if i < n else 0.0
    return {"S": s, "Y": y, "I": i, "T1": t1, "T2": t2, "C": c}
