"""Elliptic-wave-filter-style multiply-accumulate workload.

A counted loop with two multipliers feeding an adder, plus a counter
unit.  No data-dependent branching: a good stress test for GT1 loop
overlap (the whole body is throughput-bound on the multipliers).
"""

from __future__ import annotations

from repro.cdfg.builder import CdfgBuilder
from repro.cdfg.graph import Cdfg

MUL1 = "MUL1"
MUL2 = "MUL2"
ADD = "ADD"
CNT = "CNT"


def build_ewf_cdfg(
    s0: float = 1.0,
    y0: float = 0.0,
    k1: float = 0.5,
    k2: float = 0.25,
    decay: float = 0.75,
    n: int = 8,
) -> Cdfg:
    """CDFG running ``n`` filter steps: ``Y = S*k1 + Y*k2; S *= decay``."""
    builder = CdfgBuilder("ewf")
    for fu in (MUL1, MUL2, ADD, CNT):
        builder.functional_unit(fu)
    builder.input("k1", k1)
    builder.input("k2", k2)
    builder.input("decay", decay)
    builder.input("n", float(n))
    builder.input("one", 1.0)

    with builder.loop("C", fu=ADD):
        builder.op("T1 := S * k1", fu=MUL1)
        builder.op("T2 := Y * k2", fu=MUL2)
        builder.op("Y := T1 + T2", fu=ADD)
        builder.op("S := S * decay", fu=MUL1)
        builder.op("I := I + one", fu=CNT)
        builder.op("C := I < n", fu=CNT)

    initial = {
        "S": s0,
        "Y": y0,
        "I": 0.0,
        "T1": 0.0,
        "T2": 0.0,
        "C": 1.0 if 0 < n else 0.0,
    }
    return builder.build(initial=initial)
