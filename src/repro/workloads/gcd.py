"""Euclid's GCD as a CDFG workload.

Exercises the IF/ENDIF block support (the paper's approach "also
allows IF and ENDIF nodes"): a data-dependent branch inside a loop,
with the same subtractor unit bound in both branches.
"""

from __future__ import annotations

from repro.cdfg.builder import CdfgBuilder
from repro.cdfg.graph import Cdfg

SUB = "SUB"
CMP = "CMP"


def build_gcd_cdfg(a0: int = 84, b0: int = 36) -> Cdfg:
    """CDFG computing ``gcd(a0, b0)`` into register ``A`` (== ``B``)."""
    builder = CdfgBuilder("gcd")
    builder.functional_unit(SUB, "subtractor")
    builder.functional_unit(CMP, "comparator")

    with builder.loop("C", fu=CMP):
        with builder.if_block("D", fu=SUB) as branch:
            builder.op("A := A - B", fu=SUB)
            with branch.otherwise():
                builder.op("B := B - A", fu=SUB)
        builder.op("D := A > B", fu=CMP)
        builder.op("C := A != B", fu=CMP)

    initial = {
        "A": float(a0),
        "B": float(b0),
        "C": 1.0 if a0 != b0 else 0.0,
        "D": 1.0 if a0 > b0 else 0.0,
    }
    return builder.build(initial=initial)
