"""Parameterized FIR filter workload generator.

``build_fir_cdfg(taps)`` produces a transposed-form FIR filter

.. math:: y_n = \\sum_{i=0}^{T-1} c_i \\cdot x_{n-i}

processing one input sample per loop iteration.  Tap products are
bound round-robin onto two multipliers, the accumulation chain onto
one adder, and the delay-line shift onto a copy unit — so the number
of operation nodes, constraint arcs, channels and controller states
grows linearly with ``taps``.  This makes the generator the scaling
stress test for the synthesis flow (see ``benchmarks/bench_scaling.py``
and the FIR tests): every structure the paper's transforms manipulate
appears O(taps) times.

The input samples are synthesized on-chip (``X := X * decay``) so no
testbench stimulus plumbing is needed; the golden model is
:func:`fir_reference`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cdfg.builder import CdfgBuilder
from repro.cdfg.graph import Cdfg

MUL_UNITS = ("FMUL0", "FMUL1")
ADD = "FADD"
SHIFT = "FSHIFT"
CNT = "FCNT"


def default_coefficients(taps: int) -> List[float]:
    """A simple symmetric low-pass-ish coefficient set."""
    return [round(1.0 / (1 + abs(i - (taps - 1) / 2)), 4) for i in range(taps)]


def build_fir_cdfg(
    taps: int = 4,
    samples: int = 6,
    coefficients: Optional[Sequence[float]] = None,
    x0: float = 1.0,
    decay: float = 0.8,
) -> Cdfg:
    """Build a ``taps``-tap FIR filter CDFG running ``samples`` steps."""
    if taps < 2:
        raise ValueError("a FIR filter needs at least 2 taps")
    if samples < 1:
        raise ValueError("need at least one sample")
    coefficients = list(coefficients or default_coefficients(taps))
    if len(coefficients) != taps:
        raise ValueError(f"expected {taps} coefficients, got {len(coefficients)}")

    builder = CdfgBuilder(f"fir{taps}")
    for fu in (*MUL_UNITS, ADD, SHIFT, CNT):
        builder.functional_unit(fu)
    for i, coefficient in enumerate(coefficients):
        builder.input(f"c{i}", coefficient)
    builder.input("decay", decay)
    builder.input("nsamp", float(samples))
    builder.input("one", 1.0)

    with builder.loop("C", fu=CNT):
        # tap products, round-robin on the two multipliers
        for i in range(taps):
            builder.op(f"P{i} := D{i} * c{i}", fu=MUL_UNITS[i % len(MUL_UNITS)])
        # accumulation chain on the adder
        builder.op("Y := P0 + P1", fu=ADD)
        for i in range(2, taps):
            builder.op(f"Y := Y + P{i}", fu=ADD)
        # delay-line shift (pure copies) and next input sample
        for i in range(taps - 1, 1, -1):
            builder.op(f"D{i} := D{i - 1}", fu=SHIFT)
        builder.op("D1 := D0", fu=SHIFT)
        builder.op("D0 := D0 * decay", fu=MUL_UNITS[0])
        # loop bookkeeping
        builder.op("I := I + one", fu=CNT)
        builder.op("C := I < nsamp", fu=CNT)

    initial: Dict[str, float] = {f"D{i}": 0.0 for i in range(taps)}
    initial["D0"] = x0
    initial.update({f"P{i}": 0.0 for i in range(taps)})
    initial.update({"Y": 0.0, "I": 0.0, "C": 1.0 if samples > 0 else 0.0})
    return builder.build(initial=initial)


def fir_reference(
    taps: int = 4,
    samples: int = 6,
    coefficients: Optional[Sequence[float]] = None,
    x0: float = 1.0,
    decay: float = 0.8,
) -> Dict[str, float]:
    """Golden register file, mirroring the CDFG's exact operation order."""
    coefficients = list(coefficients or default_coefficients(taps))
    delay = [0.0] * taps
    delay[0] = x0
    products = [0.0] * taps
    y = 0.0
    i = 0.0
    c = 1.0 if samples > 0 else 0.0
    while c:
        for tap in range(taps):
            products[tap] = delay[tap] * coefficients[tap]
        y = products[0] + products[1]
        for tap in range(2, taps):
            y = y + products[tap]
        for tap in range(taps - 1, 0, -1):
            delay[tap] = delay[tap - 1]
        delay[0] = delay[0] * decay
        i += 1.0
        c = 1.0 if i < samples else 0.0

    registers: Dict[str, float] = {f"D{t}": delay[t] for t in range(taps)}
    registers.update({f"P{t}": products[t] for t in range(taps)})
    registers.update({"Y": y, "I": i, "C": c})
    return registers
