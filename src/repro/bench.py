"""Benchmark recording and the exploration benchmark.

Two halves:

**Recording.**  :func:`record` appends one measurement to
``BENCH_scaling.json`` at the repository root (the format the
``benchmarks/`` harness has always used — ``benchmarks/_record.py`` now
delegates here), and :func:`compare_last` looks up the previous entry
for the same bench name so a run can report its own regression ratio.

**The exploration bench.**  :func:`run_explore_bench` measures the
design-space sweep three ways on one workload — the historical
per-point path, the shared-prefix incremental engine against an empty
cache (*cold*), and a second engine run against the cache the cold run
just persisted (*warm*) — asserts all three produce bit-identical
:class:`~repro.explore.DesignPoint` lists, and reports the wall times
and speedups.  ``repro bench`` wraps it on the command line and CI runs
it with ``--check`` so a cold/warm divergence fails the build.
"""

from __future__ import annotations

import datetime
import json
import platform
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional, Union

RESULTS_PATH = Path(__file__).resolve().parents[2] / "BENCH_scaling.json"

Metric = Union[int, float, str, bool, None]


def _load(path: Path) -> Dict:
    if path.exists():
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(data, dict) and isinstance(data.get("runs"), list):
                return data
        except (ValueError, OSError):
            pass  # corrupt/unreadable history: start a fresh one
    return {"runs": []}


def record(
    bench: str,
    wall_time: float,
    path: Optional[Path] = None,
    **metrics: Metric,
) -> Dict:
    """Append one measurement; returns the entry written.

    ``bench`` is a stable identifier (e.g. ``fir_synthesis/taps=48``),
    ``wall_time`` is seconds, and ``metrics`` are any JSON-scalar
    key/value pairs worth tracking across PRs.
    """
    from repro.cache.store import file_lock

    path = Path(path) if path is not None else RESULTS_PATH
    entry = {
        "bench": bench,
        "wall_time": round(float(wall_time), 6),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform.python_version(),
        "metrics": dict(metrics),
    }
    # read-append-rename under an advisory lock: concurrent appenders
    # (shard benches, parallel CI jobs) serialize instead of interleaving
    # read-modify-write cycles, and the rename is atomic so a reader can
    # never observe a torn file even if the lock degrades to a no-op
    path.parent.mkdir(parents=True, exist_ok=True)
    with file_lock(path.with_name(path.name + ".lock")):
        data = _load(path)
        data["runs"].append(entry)
        handle = tempfile.NamedTemporaryFile(
            "w", dir=str(path.parent), prefix=path.name, suffix=".tmp",
            delete=False, encoding="utf-8",
        )
        try:
            with handle:
                handle.write(json.dumps(data, indent=2) + "\n")
            Path(handle.name).replace(path)
        except BaseException:
            try:
                Path(handle.name).unlink()
            except OSError:
                pass
            raise
    return entry


def compare_last(bench: str, wall_time: float, path: Optional[Path] = None) -> Optional[Dict]:
    """Compare ``wall_time`` against the last recorded entry for ``bench``.

    Returns ``None`` when there is no history, else a dict with the
    previous wall time, the current one, and ``ratio`` (current /
    previous; > 1 means slower).  Call *before* :func:`record`, or the
    run compares against itself.
    """
    path = Path(path) if path is not None else RESULTS_PATH
    history = [entry for entry in _load(path)["runs"] if entry.get("bench") == bench]
    if not history:
        return None
    previous = history[-1]
    prior_wall = float(previous.get("wall_time") or 0.0)
    return {
        "previous": prior_wall,
        "previous_timestamp": previous.get("timestamp"),
        "current": float(wall_time),
        "ratio": (float(wall_time) / prior_wall) if prior_wall else None,
    }


def run_explore_bench(
    workload: str = "diffeq",
    workers: Optional[int] = None,
    per_point: bool = True,
    cache_dir: Optional[str] = None,
) -> Dict:
    """Measure ``explore_design_space`` per-point vs incremental cold vs warm.

    The cold run always starts from an empty cache directory (a
    temporary one unless ``cache_dir`` is given, in which case it is
    wiped first — pass a dedicated path).  The warm run constructs a
    *fresh* :class:`~repro.cache.ArtifactCache` over the persisted file
    so it measures the real disk round-trip.  All result lists are
    checked for bit-identical equality; ``identical`` in the returned
    dict records the verdict (the CLI's ``--check`` turns a ``False``
    into a failing exit code).
    """
    from repro.cache.store import ArtifactCache
    from repro.explore import explore_design_space
    from repro.workloads import WORKLOADS

    cdfg = WORKLOADS[workload]()
    out: Dict[str, object] = {"workload": workload}

    baseline = None
    if per_point:
        start = time.perf_counter()
        baseline = explore_design_space(cdfg, workers=workers, incremental=False)
        out["per_point_cold"] = time.perf_counter() - start

    directory = Path(cache_dir) if cache_dir is not None else None
    tmp = None
    if directory is None:
        tmp = tempfile.mkdtemp(prefix="repro-bench-cache-")
        directory = Path(tmp)
    elif directory.exists():
        shutil.rmtree(directory)
    try:
        start = time.perf_counter()
        cold = explore_design_space(cdfg, workers=workers, cache=ArtifactCache(directory))
        out["incremental_cold"] = time.perf_counter() - start

        start = time.perf_counter()
        warm = explore_design_space(cdfg, workers=workers, cache=ArtifactCache(directory))
        out["warm"] = time.perf_counter() - start
    finally:
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)

    out["points"] = len(cold.points)
    out["evaluations"] = cold.stats.get("evaluations")
    out["edges"] = cold.stats.get("edges")
    out["identical"] = cold.points == warm.points and (
        baseline is None or baseline.points == cold.points
    )
    if baseline is not None:
        out["speedup_cold"] = round(out["per_point_cold"] / out["incremental_cold"], 2)
        out["speedup_warm"] = round(out["per_point_cold"] / out["warm"], 2)
    return out


def run_scaling_bench(
    shards: int = 4,
    workers: int = 4,
    workloads=("diffeq",),
    random_scenarios: int = 3,
    delay_scales=(1.0, 1.25, 1.5, 2.0),
    check_resume: bool = True,
) -> Dict:
    """Measure sharded parameter-space exploration vs the single-pool path.

    The space is :func:`repro.cache.space.bench_space`'s default shape —
    named workloads plus seeded random scenarios, crossed with uniform
    delay scalings and the 64-point GT/LT grid (1024 points at the
    defaults).  The *single-pool* baseline sweeps it the only way the
    pre-shard code could: one ``explore_design_space`` process pool per
    context, contexts strictly in sequence, nothing shared between
    them.  The sharded run covers the same points with ``shards``
    work-stealing shards (one worker each, so both sides use comparable
    process counts) and worker-global content-addressed memos.

    Verdicts: ``identical`` — the sharded points are bit-identical to
    the baseline's, in canonical order; ``identical_resume`` — a run
    stopped halfway and resumed from its journal reproduces the
    uninterrupted report byte-for-byte.  Throughput lands in
    ``pps_single`` / ``pps_sharded`` (points per second),
    ``speedup`` (sharded vs single-pool), and ``shard_efficiency``
    (speedup / ``effective_shards`` — the fleet after clamping to the
    host's available CPUs; requested ``shards`` is reported alongside).
    """
    import json as _json

    from repro.cache.shards import explore_space
    from repro.cache.space import bench_space
    from repro.explore import explore_design_space

    space = bench_space(
        workloads=workloads,
        random_scenarios=random_scenarios,
        delay_scales=delay_scales,
    )
    out: Dict[str, object] = {
        "points": len(space),
        "contexts": space.context_count,
        "shards": shards,
        "workers": workers,
    }

    start = time.perf_counter()
    baseline = []
    for context in space.contexts():
        result = explore_design_space(
            context.cdfg,
            global_subsets=space.gt_subsets,
            local_subsets=space.lt_subsets,
            delays=context.delays,
            seed=context.seed,
            verify=space.verify,
            workers=workers,
            incremental=True,
        )
        baseline.extend(result.points)
    out["single_pool_wall"] = time.perf_counter() - start

    tmp = tempfile.mkdtemp(prefix="repro-bench-space-")
    try:
        start = time.perf_counter()
        sharded = explore_space(space, shards=shards, workers_per_shard=1, run_dir=tmp)
        out["sharded_wall"] = time.perf_counter() - start

        out["stolen_units"] = sharded.stats.get("stolen_units")
        out["effective_shards"] = sharded.stats.get("effective_shards", shards)
        out["identical"] = [p.to_dict() for p in sharded.points] == [
            p.to_dict() for p in baseline
        ]
        out["pps_single"] = round(len(space) / out["single_pool_wall"], 2)
        out["pps_sharded"] = round(len(space) / out["sharded_wall"], 2)
        out["speedup"] = round(out["single_pool_wall"] / out["sharded_wall"], 2)
        out["shard_efficiency"] = round(out["speedup"] / out["effective_shards"], 3)

        # warm resume of the completed run: everything served from the
        # compacted mirror, nothing recomputed
        start = time.perf_counter()
        warm = explore_space(space, shards=shards, run_dir=tmp, resume=True)
        out["resume_wall"] = time.perf_counter() - start
        out["resume_speedup"] = round(out["sharded_wall"] / out["resume_wall"], 2)
        out["identical"] = out["identical"] and (
            _json.dumps(warm.documents, sort_keys=True)
            == _json.dumps(sharded.documents, sort_keys=True)
        )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    if check_resume:
        # killed-run drill: stop halfway, resume, compare byte-for-byte
        tmp = tempfile.mkdtemp(prefix="repro-bench-resume-")
        try:
            explore_space(
                space, shards=shards, run_dir=tmp, stop_after=len(space) // 2
            )
            resumed = explore_space(space, shards=shards, run_dir=tmp, resume=True)
            out["identical_resume"] = _json.dumps(
                resumed.documents, sort_keys=True
            ) == _json.dumps(sharded.documents, sort_keys=True)
            out["identical"] = out["identical"] and out["identical_resume"]
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    return out


def run_batched_sim_bench(
    workload: str = "diffeq",
    trials: int = 256,
    seed: int = 0,
) -> Dict:
    """Measure a full fault campaign scalar vs batched.

    Runs ``repro faults``'s :func:`~repro.resilience.run_campaign`
    twice — once on the scalar event loop, once through the batched
    max-plus engine (runtime spot-checks at their default fraction) —
    and compares the two reports *byte for byte*: equality means every
    per-trial makespan, status, and detail string agreed bit-exactly.
    ``identical`` carries the verdict; the CLI's ``--check`` turns a
    ``False`` into a failing exit, and CI runs it that way.

    Both paths get one small untimed warm-up campaign first, so the
    measurement compares steady-state campaign throughput rather than
    charging one side the process's one-time import and cache-fill
    costs (numpy alone is tens of milliseconds to import).
    """
    from repro.resilience import run_campaign

    out: Dict[str, object] = {"workload": workload, "trials": trials, "seed": seed}

    for batched in (False, True):
        run_campaign(workload, seed=seed, trials=2, batched=batched)

    start = time.perf_counter()
    scalar = run_campaign(workload, seed=seed, trials=trials, batched=False)
    out["scalar_wall"] = time.perf_counter() - start

    start = time.perf_counter()
    batched = run_campaign(workload, seed=seed, trials=trials, batched=True)
    out["batched_wall"] = time.perf_counter() - start

    out["identical"] = scalar.to_json() == batched.to_json()
    out["speedup"] = round(out["scalar_wall"] / out["batched_wall"], 2)
    out["trials_ok"] = scalar.trials_ok
    return out


def run_serve_bench(
    clients: int = 64,
    workload: str = "gcd",
    executor: str = "thread",
    workers: int = 4,
    store_dir: Optional[str] = None,
) -> Dict:
    """Duplicate-load test against a live job server.

    ``clients`` threads simultaneously submit the *same* job over real
    HTTP and wait for its result.  Content-addressed dedup should fold
    the burst onto one execution: the bench reports submit-latency
    percentiles (p50/p99), the dedup hit-rate (the acceptance floor is
    0.9 — for 64 clients the expected rate is 63/64), how many
    executions actually ran, and whether every client got a
    byte-identical result document.
    """
    import concurrent.futures

    from repro.serve.harness import ServerHarness
    from repro.serve.jobs import canonical_json
    from repro.serve.server import ServerConfig

    clients = max(2, int(clients))
    params = {"workload": workload, "level": "gt+lt"}
    cleanup: Optional[tempfile.TemporaryDirectory] = None
    if store_dir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-serve-bench-")
        store_dir = cleanup.name
    store_path = Path(store_dir) / "bench.sqlite3"

    config = ServerConfig(
        workers=workers,
        executor=executor,
        queue_depth=max(64, clients),
        client_cap=max(64, clients),
    )
    latencies: list = [None] * clients
    results: list = [None] * clients

    def one_client(index: int) -> None:
        client = harness.client(timeout=120.0)
        start = time.perf_counter()
        job = client.submit(kind="synthesize", params=params, client=f"c{index:02d}")
        latencies[index] = time.perf_counter() - start
        if job["state"] != "DONE" or job.get("result") is None:
            job = client.wait(job["job_id"], timeout=180.0)
        results[index] = canonical_json(job.get("result"))

    try:
        with ServerHarness(store_path, config) as harness:
            wall_start = time.perf_counter()
            with concurrent.futures.ThreadPoolExecutor(max_workers=clients) as pool:
                list(pool.map(one_client, range(clients)))
            wall = time.perf_counter() - wall_start
            stats = harness.client().stats()
    finally:
        if cleanup is not None:
            cleanup.cleanup()

    ordered = sorted(latencies)

    def percentile(fraction: float) -> float:
        index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
        return ordered[index]

    store_stats = stats["store"]
    return {
        "clients": clients,
        "workload": workload,
        "executor": executor,
        "workers": workers,
        "wall": round(wall, 4),
        "p50_ms": round(percentile(0.50) * 1000, 2),
        "p99_ms": round(percentile(0.99) * 1000, 2),
        "max_ms": round(ordered[-1] * 1000, 2),
        "dedup_hit_rate": store_stats["dedup_hit_rate"],
        "dedup_hits": store_stats["dedup_hits"],
        "executions": store_stats["executions"],
        "submissions": store_stats["submissions"],
        "identical": len(set(results)) == 1 and results[0] != "null",
    }
