"""Benchmark recording and the exploration benchmark.

Two halves:

**Recording.**  :func:`record` appends one measurement to
``BENCH_scaling.json`` at the repository root (the format the
``benchmarks/`` harness has always used — ``benchmarks/_record.py`` now
delegates here), and :func:`compare_last` looks up the previous entry
for the same bench name so a run can report its own regression ratio.

**The exploration bench.**  :func:`run_explore_bench` measures the
design-space sweep three ways on one workload — the historical
per-point path, the shared-prefix incremental engine against an empty
cache (*cold*), and a second engine run against the cache the cold run
just persisted (*warm*) — asserts all three produce bit-identical
:class:`~repro.explore.DesignPoint` lists, and reports the wall times
and speedups.  ``repro bench`` wraps it on the command line and CI runs
it with ``--check`` so a cold/warm divergence fails the build.
"""

from __future__ import annotations

import datetime
import json
import platform
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional, Union

RESULTS_PATH = Path(__file__).resolve().parents[2] / "BENCH_scaling.json"

Metric = Union[int, float, str, bool, None]


def _load(path: Path) -> Dict:
    if path.exists():
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            if isinstance(data, dict) and isinstance(data.get("runs"), list):
                return data
        except (ValueError, OSError):
            pass  # corrupt/unreadable history: start a fresh one
    return {"runs": []}


def record(
    bench: str,
    wall_time: float,
    path: Optional[Path] = None,
    **metrics: Metric,
) -> Dict:
    """Append one measurement; returns the entry written.

    ``bench`` is a stable identifier (e.g. ``fir_synthesis/taps=48``),
    ``wall_time`` is seconds, and ``metrics`` are any JSON-scalar
    key/value pairs worth tracking across PRs.
    """
    path = Path(path) if path is not None else RESULTS_PATH
    data = _load(path)
    entry = {
        "bench": bench,
        "wall_time": round(float(wall_time), 6),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform.python_version(),
        "metrics": dict(metrics),
    }
    data["runs"].append(entry)
    path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
    return entry


def compare_last(bench: str, wall_time: float, path: Optional[Path] = None) -> Optional[Dict]:
    """Compare ``wall_time`` against the last recorded entry for ``bench``.

    Returns ``None`` when there is no history, else a dict with the
    previous wall time, the current one, and ``ratio`` (current /
    previous; > 1 means slower).  Call *before* :func:`record`, or the
    run compares against itself.
    """
    path = Path(path) if path is not None else RESULTS_PATH
    history = [entry for entry in _load(path)["runs"] if entry.get("bench") == bench]
    if not history:
        return None
    previous = history[-1]
    prior_wall = float(previous.get("wall_time") or 0.0)
    return {
        "previous": prior_wall,
        "previous_timestamp": previous.get("timestamp"),
        "current": float(wall_time),
        "ratio": (float(wall_time) / prior_wall) if prior_wall else None,
    }


def run_explore_bench(
    workload: str = "diffeq",
    workers: Optional[int] = None,
    per_point: bool = True,
    cache_dir: Optional[str] = None,
) -> Dict:
    """Measure ``explore_design_space`` per-point vs incremental cold vs warm.

    The cold run always starts from an empty cache directory (a
    temporary one unless ``cache_dir`` is given, in which case it is
    wiped first — pass a dedicated path).  The warm run constructs a
    *fresh* :class:`~repro.cache.ArtifactCache` over the persisted file
    so it measures the real disk round-trip.  All result lists are
    checked for bit-identical equality; ``identical`` in the returned
    dict records the verdict (the CLI's ``--check`` turns a ``False``
    into a failing exit code).
    """
    from repro.cache.store import ArtifactCache
    from repro.explore import explore_design_space
    from repro.workloads import WORKLOADS

    cdfg = WORKLOADS[workload]()
    out: Dict[str, object] = {"workload": workload}

    baseline = None
    if per_point:
        start = time.perf_counter()
        baseline = explore_design_space(cdfg, workers=workers, incremental=False)
        out["per_point_cold"] = time.perf_counter() - start

    directory = Path(cache_dir) if cache_dir is not None else None
    tmp = None
    if directory is None:
        tmp = tempfile.mkdtemp(prefix="repro-bench-cache-")
        directory = Path(tmp)
    elif directory.exists():
        shutil.rmtree(directory)
    try:
        start = time.perf_counter()
        cold = explore_design_space(cdfg, workers=workers, cache=ArtifactCache(directory))
        out["incremental_cold"] = time.perf_counter() - start

        start = time.perf_counter()
        warm = explore_design_space(cdfg, workers=workers, cache=ArtifactCache(directory))
        out["warm"] = time.perf_counter() - start
    finally:
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)

    out["points"] = len(cold.points)
    out["evaluations"] = cold.stats.get("evaluations")
    out["edges"] = cold.stats.get("edges")
    out["identical"] = cold.points == warm.points and (
        baseline is None or baseline.points == cold.points
    )
    if baseline is not None:
        out["speedup_cold"] = round(out["per_point_cold"] / out["incremental_cold"], 2)
        out["speedup_warm"] = round(out["per_point_cold"] / out["warm"], 2)
    return out


def run_batched_sim_bench(
    workload: str = "diffeq",
    trials: int = 256,
    seed: int = 0,
) -> Dict:
    """Measure a full fault campaign scalar vs batched.

    Runs ``repro faults``'s :func:`~repro.resilience.run_campaign`
    twice — once on the scalar event loop, once through the batched
    max-plus engine (runtime spot-checks at their default fraction) —
    and compares the two reports *byte for byte*: equality means every
    per-trial makespan, status, and detail string agreed bit-exactly.
    ``identical`` carries the verdict; the CLI's ``--check`` turns a
    ``False`` into a failing exit, and CI runs it that way.

    Both paths get one small untimed warm-up campaign first, so the
    measurement compares steady-state campaign throughput rather than
    charging one side the process's one-time import and cache-fill
    costs (numpy alone is tens of milliseconds to import).
    """
    from repro.resilience import run_campaign

    out: Dict[str, object] = {"workload": workload, "trials": trials, "seed": seed}

    for batched in (False, True):
        run_campaign(workload, seed=seed, trials=2, batched=batched)

    start = time.perf_counter()
    scalar = run_campaign(workload, seed=seed, trials=trials, batched=False)
    out["scalar_wall"] = time.perf_counter() - start

    start = time.perf_counter()
    batched = run_campaign(workload, seed=seed, trials=trials, batched=True)
    out["batched_wall"] = time.perf_counter() - start

    out["identical"] = scalar.to_json() == batched.to_json()
    out["speedup"] = round(out["scalar_wall"] / out["batched_wall"], 2)
    out["trials_ok"] = scalar.trials_ok
    return out
