"""Minimal deterministic event-driven simulation kernel.

Events are callbacks scheduled at absolute times; ties are broken by
insertion order, so runs are reproducible for a fixed delay model and
random seed.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Tuple

from repro.errors import SimulationError


class EventKernel:
    """A time-ordered event queue."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self.now = 0.0
        self.events_processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at ``now + delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        heapq.heappush(self._queue, (self.now + delay, self._sequence, callback))
        self._sequence += 1

    def pending(self) -> int:
        return len(self._queue)

    def run(self, max_events: int = 1_000_000) -> float:
        """Process events until the queue drains; return the final time."""
        while self._queue:
            if self.events_processed >= max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events (livelock or runaway loop?)"
                )
            time, __, callback = heapq.heappop(self._queue)
            self.now = time
            self.events_processed += 1
            callback()
        return self.now
