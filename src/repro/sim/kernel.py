"""Minimal deterministic event-driven simulation kernel.

Events are callbacks scheduled at absolute times; ties are broken by
insertion order, so runs are reproducible for a fixed delay model and
random seed.

For profiling, a kernel may carry an
:class:`~repro.obs.causal.EventTrace`: every ``schedule()`` then
records a causal event (keyed by the scheduling sequence number)
whose parent is the event being executed when the call was made, plus
the optional caller-supplied ``label``.  Tracing is off by default and
costs one branch per schedule when disabled.

Independently of tracing, the kernel keeps a small rolling window of
the labels of the most recently executed events
(:attr:`EventKernel.recent_labels`).  The window is what turns a bare
"exceeded max_events" abort into a diagnosable report: the runaway
loop's participants are, with overwhelming probability, the labels
repeating in the window.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs.causal import EventTrace

#: how many executed-event labels the kernel remembers for diagnostics
RECENT_WINDOW = 8


class EventKernel:
    """A time-ordered event queue."""

    def __init__(self, trace: Optional[EventTrace] = None) -> None:
        self._queue: List[Tuple[float, int, Callable[[], None], Optional[str]]] = []
        self._sequence = 0
        self.now = 0.0
        self.events_processed = 0
        self.trace = trace
        #: labels of the last few executed events (unlabeled ones skipped)
        self.recent_labels: Deque[str] = deque(maxlen=RECENT_WINDOW)

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        label: Optional[str] = None,
    ) -> None:
        """Run ``callback`` at ``now + delay``.

        ``label`` tags the event in the causal trace (ignored when the
        kernel is not tracing): simulators pass the FU/operation, wire
        or datapath element the callback belongs to.
        """
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        heapq.heappush(self._queue, (self.now + delay, self._sequence, callback, label))
        if self.trace is not None:
            self.trace.on_schedule(self._sequence, self.now, delay, label)
        self._sequence += 1

    def pending(self) -> int:
        return len(self._queue)

    def run(self, max_events: int = 1_000_000) -> float:
        """Process events until the queue drains; return the final time.

        ``max_events`` bounds *this* call, not the kernel's lifetime:
        successive ``run()`` calls each get the full budget, while
        ``events_processed`` keeps the cumulative total for reporting.
        """
        processed = 0
        while self._queue:
            if processed >= max_events:
                recent = ", ".join(self.recent_labels) or "(no labeled events)"
                raise SimulationError(
                    f"simulation exceeded {max_events} events "
                    f"(livelock or runaway loop?) at t={self.now:.3f} "
                    f"with {len(self._queue)} events still pending; "
                    f"last executed: {recent}"
                )
            time, sequence, callback, label = heapq.heappop(self._queue)
            self.now = time
            processed += 1
            self.events_processed += 1
            if label is not None:
                self.recent_labels.append(label)
            if self.trace is not None:
                self.trace.on_execute(sequence)
            callback()
        return self.now
