"""Datapath model for the AFSM-level simulation.

Implements the target architecture of the paper's Figure 2: functional
units with dedicated input muxes, registers with (shared) input muxes,
and 4-phase request/acknowledge interfaces toward the controllers.

Actions arrive as the ``action`` tuples attached to controller request
signals:

- ``("src_mux", fu, port, source)`` — select ``source`` (a register or
  constant) onto input ``port`` of ``fu``'s operand mux;
- ``("fu_go", fu, operator)`` — run ``operator`` on the currently
  selected operands; the result is held at the unit's output;
- ``("reg_mux", register, source)`` — select ``source`` (the producing
  unit, another register, or a constant) onto the register's input
  mux;
- ``("latch", register)`` — latch the register's mux value.

Operand and mux values are sampled at action *completion*.  When a
controller runs without acknowledgments (LT4), correct operation rests
on the usual relative-timing assumptions (mux select settles before
the FU result is captured); the datapath flags a hazard if a mux is
still settling when a dependent capture completes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.errors import SimulationError
from repro.rtl.semantics import _apply
from repro.sim.kernel import EventKernel
from repro.timing.delays import DelayModel

Source = Tuple[str, Union[str, float, int]]  # ("reg", name) | ("const", v) | ("fu", unit)

#: settle delays for the small datapath elements.  The latch strobe is
#: padded past the worst-case mux settle (1.5 * MUX_DELAY), the usual
#: bundled-data margin that LT4's acknowledgment removal relies on.
MUX_DELAY = 0.3
LATCH_DELAY = 0.5


@dataclass
class _Flight:
    """An in-progress datapath action (between req+ and completion)."""

    kind: str
    until: float


class Datapath:
    """Shared registers, muxes and functional units."""

    def __init__(
        self,
        kernel: EventKernel,
        initial_registers: Dict[str, float],
        inputs: Dict[str, float],
        delays: Optional[DelayModel] = None,
        rng: Optional[random.Random] = None,
    ):
        self.kernel = kernel
        self.registers: Dict[str, float] = dict(initial_registers)
        self.registers.update(inputs)
        self._input_names = set(inputs)
        self.delays = delays or DelayModel()
        self.rng = rng

        #: (fu, port) -> selected Source
        self.fu_ports: Dict[Tuple[str, int], Source] = {}
        #: register -> selected Source
        self.reg_muxes: Dict[str, Source] = {}
        #: fu -> last computed result
        self.fu_outputs: Dict[str, float] = {}
        #: settling windows for hazard detection
        self._mux_flights: Dict[Tuple[str, object], float] = {}
        self.hazards: List[str] = []
        #: chronological register-write log: (register, value) per
        #: latch capture — the system-level write streams compared by
        #: the flow-equivalence checker (:mod:`repro.verify.flow`)
        self.writes: List[Tuple[str, float]] = []

    # ------------------------------------------------------------------
    def _delay(self, low: float, high: float) -> float:
        if self.rng is None:
            return (low + high) / 2.0
        return self.rng.uniform(low, high)

    def _resolve(self, source: Source) -> float:
        kind, value = source
        if kind == "reg":
            try:
                return self.registers[value]  # type: ignore[index]
            except KeyError:
                raise SimulationError(f"read of uninitialized register {value!r}") from None
        if kind == "const":
            return float(value)  # type: ignore[arg-type]
        if kind == "fu":
            try:
                return self.fu_outputs[value]  # type: ignore[index]
            except KeyError:
                raise SimulationError(f"unit {value!r} produced no result yet") from None
        raise SimulationError(f"unknown source {source!r}")

    # ------------------------------------------------------------------
    # 4-phase request handling
    # ------------------------------------------------------------------
    def request(self, action: tuple, on_complete: Callable[[], None]) -> None:
        """Handle a req+ edge; call ``on_complete`` when the element
        settles (the controller maps it to the ack+ edge, if wired)."""
        kind = action[0]
        if kind == "multi":
            # a shared (LT5) wire forks to several elements; the ack
            # is the completion of the slowest one
            sub_actions = action[1]
            remaining = [len(sub_actions)]

            def one_done() -> None:
                remaining[0] -= 1
                if remaining[0] == 0:
                    on_complete()

            for sub in sub_actions:
                self.request(sub, one_done)
        elif kind == "src_mux":
            __, fu, port, source = action
            delay = self._delay(MUX_DELAY, MUX_DELAY * 1.5)
            key = ("fu_port", (fu, port))
            self._mux_flights[key] = self.kernel.now + delay

            def settle() -> None:
                self.fu_ports[(fu, port)] = source
                on_complete()

            self.kernel.schedule(delay, settle, label=f"dp:mux:{fu}.{port}")
        elif kind == "fu_go":
            __, fu, operator = action
            low, high = self.delays.operator_interval(fu, operator)
            delay = self._delay(low, high)

            def compute() -> None:
                self._check_mux_settled(("fu_port", (fu, 0)), f"{fu} operand 0")
                self._check_mux_settled(("fu_port", (fu, 1)), f"{fu} operand 1")
                left = self._resolve(self.fu_ports.get((fu, 0), ("const", 0.0)))
                right = self._resolve(self.fu_ports.get((fu, 1), ("const", 0.0)))
                self.fu_outputs[fu] = _apply(operator, left, right)
                on_complete()

            self.kernel.schedule(delay, compute, label=f"dp:fu:{fu}:{operator}")
        elif kind == "reg_mux":
            __, register, source = action
            delay = self._delay(MUX_DELAY, MUX_DELAY * 1.5)
            key = ("reg_mux", register)
            self._mux_flights[key] = self.kernel.now + delay

            def settle() -> None:
                self.reg_muxes[register] = source
                on_complete()

            self.kernel.schedule(delay, settle, label=f"dp:mux:{register}")
        elif kind == "latch":
            (__, register) = action
            if register in self._input_names:
                raise SimulationError(f"write to read-only input {register!r}")
            delay = self._delay(LATCH_DELAY, LATCH_DELAY * 1.5)

            def capture() -> None:
                self._check_mux_settled(("reg_mux", register), f"register {register} mux")
                source = self.reg_muxes.get(register)
                if source is None:
                    raise SimulationError(f"latch of {register!r} with no mux selection")
                value = self._resolve(source)
                self.registers[register] = value
                self.writes.append((register, value))
                on_complete()

            self.kernel.schedule(delay, capture, label=f"dp:latch:{register}")
        else:
            raise SimulationError(f"unknown datapath action {action!r}")

    def release(self, action: tuple, on_complete: Callable[[], None]) -> None:
        """Handle a req- edge: the element returns to idle."""
        self.kernel.schedule(0.1, on_complete, label=f"dp:release:{action[0]}")

    def _check_mux_settled(self, key: Tuple[str, object], what: str) -> None:
        settling_until = self._mux_flights.get(key)
        if settling_until is not None and settling_until > self.kernel.now:
            self.hazards.append(
                f"t={self.kernel.now:.2f}: {what} still settling during capture"
            )

    # ------------------------------------------------------------------
    def condition_level(self, register: str) -> bool:
        value = self.registers.get(register)
        if value is None:
            raise SimulationError(f"condition register {register!r} uninitialized")
        return bool(value)
