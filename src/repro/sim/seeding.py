"""Seed resolution shared by the two simulators.

Every simulation is driven by one of three delay-sampling modes:

- ``seed=<int>`` — delays are sampled from a :class:`random.Random`
  seeded with that integer (reproducible randomized run);
- ``seed=None`` (the default) — a fresh entropy seed is drawn and
  *recorded in the result*, so even an unseeded failure can be
  replayed exactly by passing the recorded seed back in;
- ``seed=NOMINAL`` — no sampling at all: every delay is the midpoint
  of its interval (the deterministic mode the timing analyses and the
  performance-comparison tests rely on).

Before this module existed, ``seed=None`` silently meant "nominal",
and code that wanted randomness but forgot a seed produced failures
nobody could reproduce.  The sentinel makes the deterministic mode an
explicit request instead of an accident.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple, Union


class _NominalDelays:
    """Sentinel type for :data:`NOMINAL` (kept a class for repr/typing)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NOMINAL"


#: Pass as ``seed`` to run with deterministic midpoint delays.
NOMINAL = _NominalDelays()

SeedLike = Union[int, None, _NominalDelays]


def resolve_seed(seed: SeedLike) -> Tuple[Optional[random.Random], Optional[int]]:
    """Resolve a ``seed`` argument to ``(rng, effective_seed)``.

    ``NOMINAL`` yields ``(None, None)`` — no sampling.  ``None`` draws
    a fresh 32-bit seed (from the global :mod:`random` stream, so test
    harnesses can still pin it) and returns an rng seeded with it; the
    effective seed must be recorded in the simulation result.
    """
    if isinstance(seed, _NominalDelays):
        return None, None
    if seed is None:
        seed = random.randrange(2**32)
    return random.Random(seed), int(seed)
