"""Seed resolution shared by the two simulators.

Every simulation is driven by one of three delay-sampling modes:

- ``seed=<int>`` — delays are sampled from a :class:`random.Random`
  seeded with that integer (reproducible randomized run);
- ``seed=None`` (the default) — a fresh entropy seed is drawn and
  *recorded in the result*, so even an unseeded failure can be
  replayed exactly by passing the recorded seed back in;
- ``seed=NOMINAL`` — no sampling at all: every delay is the midpoint
  of its interval (the deterministic mode the timing analyses and the
  performance-comparison tests rely on).

Before this module existed, ``seed=None`` silently meant "nominal",
and code that wanted randomness but forgot a seed produced failures
nobody could reproduce.  The sentinel makes the deterministic mode an
explicit request instead of an accident.

**Draw-order stability.**  A seeded token simulation does not pull its
delay samples from one global stream: each node gets a private
substream derived from ``(seed, node name)`` by
:func:`node_stream_seed`, and the *k*-th firing of a node consumes the
*k*-th draw of its substream.  Because of that, the sequence of values
a given node sees depends only on the seed and the node's own firing
count — never on the global interleaving of events, which itself
depends on the sampled delays.  This is the property that lets the
batched max-plus engine (:mod:`repro.sim.batched`) pre-draw the exact
same delays without replaying the event loop, making batched and
scalar runs bit-identical for the same seed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional, Tuple, Union


class _NominalDelays:
    """Sentinel type for :data:`NOMINAL` (kept a class for repr/typing)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NOMINAL"


#: Pass as ``seed`` to run with deterministic midpoint delays.
NOMINAL = _NominalDelays()

SeedLike = Union[int, None, _NominalDelays]


def resolve_seed(seed: SeedLike) -> Tuple[Optional[random.Random], Optional[int]]:
    """Resolve a ``seed`` argument to ``(rng, effective_seed)``.

    ``NOMINAL`` yields ``(None, None)`` — no sampling.  ``None`` draws
    a fresh 32-bit seed (from the global :mod:`random` stream, so test
    harnesses can still pin it) and returns an rng seeded with it; the
    effective seed must be recorded in the simulation result.
    """
    if isinstance(seed, _NominalDelays):
        return None, None
    if seed is None:
        seed = random.randrange(2**32)
    return random.Random(seed), int(seed)


def node_stream_seed(seed: int, name: str) -> int:
    """Derive the substream seed for node ``name`` under run seed ``seed``.

    The derivation is a keyed content hash (blake2b over
    ``"{seed}:{name}"``), not Python's builtin ``hash()`` — the builtin
    is salted per process, which would destroy cross-run replay.  The
    mapping is part of the reproducibility contract: the scalar
    simulator, :meth:`DelayModel.sample_matrix` consumers, and the
    batched engine all derive the identical stream for a given
    ``(seed, node)`` pair, so a recorded seed replays the same delays
    everywhere.
    """
    digest = hashlib.blake2b(
        f"{seed}:{name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def node_stream(seed: int, name: str) -> random.Random:
    """A fresh :class:`random.Random` positioned at the start of the
    ``(seed, name)`` substream (see :func:`node_stream_seed`)."""
    return random.Random(node_stream_seed(seed, name))
