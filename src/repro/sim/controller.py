"""Burst-mode controller interpreter for the AFSM-level simulation.

Each controller tracks its current state and fires outgoing
transitions whose input bursts are satisfied:

- local acknowledgments are 4-phase level signals driven by the
  datapath model;
- global ready wires are single-transition channels: each event is
  queued per receiver and consumed exactly once (edge semantics, so a
  "pulse" is never lost even when the receiver is busy);
- directed don't-care edges consume a queued event if one is present,
  otherwise they leave a *debt* that silently absorbs the event when
  it arrives;
- conditionals sample a register level at firing time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.afsm.machine import BurstModeMachine, Transition
from repro.afsm.signals import SignalKind
from repro.errors import ChannelSafetyError, SimulationError
from repro.sim.datapath import Datapath
from repro.sim.kernel import EventKernel

#: controller logic delay per state transition
CONTROL_DELAY = 0.2


class GlobalWire:
    """A single-transition channel wire with per-receiver event queues.

    Events are *directed* (rising/falling): a receiver waiting for a
    rising transition is not released by a falling one (a synthetic
    reset may overtake the wait; it stays queued for the matching ddc
    absorption).  ``debt`` records ddc edges that fired before their
    transition arrived; the arrival is then absorbed silently.
    """

    def __init__(self, name: str, receivers: List[str], strict: bool = True):
        self.name = name
        self.pending: Dict[Tuple[str, bool], int] = {
            (fu, rising): 0 for fu in receivers for rising in (True, False)
        }
        self.debt: Dict[Tuple[str, bool], int] = dict(self.pending)
        self.receivers = list(receivers)
        self.events_sent = 0
        self.strict = strict
        self.violations: List[str] = []

    def emit(self, now: float, rising: bool) -> None:
        self.events_sent += 1
        for fu in self.receivers:
            key = (fu, rising)
            if self.debt[key] > 0:
                self.debt[key] -= 1
                continue
            self.pending[key] += 1
            if self.pending[key] > 1:
                message = (
                    f"t={now:.2f}: wire {self.name} holds {self.pending[key]} unconsumed "
                    f"{'rising' if rising else 'falling'} transitions toward {fu}"
                )
                self.violations.append(message)
                if self.strict:
                    raise ChannelSafetyError(message)

    def available(self, fu: str, rising: bool) -> bool:
        return self.pending[(fu, rising)] > 0

    def consume(self, fu: str, rising: bool) -> None:
        key = (fu, rising)
        if self.pending[key] < 1:
            raise SimulationError(f"wire {self.name}: consuming missing event for {fu}")
        self.pending[key] -= 1

    def consume_ddc(self, fu: str, rising: bool) -> None:
        key = (fu, rising)
        if self.pending[key] > 0:
            self.pending[key] -= 1
        else:
            self.debt[key] += 1

    def pending_total(self, fu: str) -> int:
        return self.pending[(fu, True)] + self.pending[(fu, False)]


@dataclass
class ControllerRuntime:
    """One controller's dynamic state."""

    fu: str
    machine: BurstModeMachine
    kernel: EventKernel
    datapath: Datapath
    wires: Dict[str, GlobalWire]
    #: local ack levels (req levels live implicitly in the machine)
    ack_levels: Dict[str, int] = field(default_factory=dict)
    state: str = ""
    busy: bool = False
    transitions_taken: int = 0
    #: per-state snapshot of ``machine.transitions_from`` — the machine
    #: is frozen for the lifetime of a simulation, and re-sorting the
    #: transition list on every poke dominated the kernel profile
    _transitions: Dict[str, tuple] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.state = self.machine.initial_state
        for signal in self.machine.signals():
            if signal.kind is SignalKind.LOCAL_ACK:
                self.ack_levels[signal.name] = 0

    # ------------------------------------------------------------------
    def poke(self) -> None:
        """Schedule an enablement check (called on any input change)."""
        self.kernel.schedule(0.0, self._step, label=f"poke:{self.fu}")

    def _step(self) -> None:
        if self.busy:
            return
        transitions = self._transitions.get(self.state)
        if transitions is None:
            transitions = tuple(self.machine.transitions_from(self.state))
            self._transitions[self.state] = transitions
        enabled = [t for t in transitions if self._satisfied(t)]
        if not enabled:
            return
        if len(enabled) > 1:
            raise SimulationError(
                f"{self.fu}: nondeterministic choice in state {self.state}: "
                + " | ".join(str(t.input_burst) for t in enabled)
            )
        transition = enabled[0]
        self.busy = True
        fragment = transition.tags.get("node") or f"{transition.src}->{transition.dst}"
        self.kernel.schedule(
            CONTROL_DELAY,
            lambda: self._fire(transition),
            label=f"ctrl:{self.fu}:{fragment}",
        )

    def _satisfied(self, transition: Transition) -> bool:
        for cond in transition.input_burst.conditions:
            signal = self.machine.signal(cond.signal)
            assert signal.action is not None and signal.action[0] == "cond"
            if self.datapath.condition_level(signal.action[1]) != cond.high:
                return False
        for edge in transition.input_burst.compulsory_edges:
            signal = self.machine.signal(edge.signal)
            if signal.kind is SignalKind.GLOBAL_READY:
                if not self.wires[edge.signal].available(self.fu, edge.rising):
                    return False
            elif signal.kind is SignalKind.LOCAL_ACK:
                expected = 1 if edge.rising else 0
                if self.ack_levels[edge.signal] != expected:
                    return False
            else:
                raise SimulationError(f"{self.fu}: unexpected input {edge.signal}")
        return True

    def _fire(self, transition: Transition) -> None:
        self.busy = False
        if not self._satisfied(transition):
            # inputs changed during the control delay; re-evaluate
            self.poke()
            return
        for edge in transition.input_burst.edges:
            signal = self.machine.signal(edge.signal)
            if signal.kind is SignalKind.GLOBAL_READY:
                if edge.ddc:
                    self.wires[edge.signal].consume_ddc(self.fu, edge.rising)
                else:
                    self.wires[edge.signal].consume(self.fu, edge.rising)
        self.state = transition.dst
        self.transitions_taken += 1
        for edge in transition.output_burst.edges:
            signal = self.machine.signal(edge.signal)
            if signal.kind is SignalKind.GLOBAL_READY:
                self.wires[edge.signal].emit(self.kernel.now, edge.rising)
                if self.poke_all is not None:
                    self.poke_all()  # wake the receivers
            elif signal.kind is SignalKind.LOCAL_REQ:
                self._drive_request(signal.name, edge.rising)
            else:
                raise SimulationError(f"{self.fu}: cannot drive {edge.signal}")
        self.poke()

    def _drive_request(self, req: str, rising: bool) -> None:
        signal = self.machine.signal(req)
        assert signal.action is not None

        ack = signal.partner

        def complete() -> None:
            if ack is not None and ack in self.ack_levels:
                self.ack_levels[ack] = 1 if rising else 0
            self.poke()

        if rising:
            self.datapath.request(signal.action, complete)
        else:
            self.datapath.release(signal.action, complete)

    #: injected by the system: wakes every controller after an emission
    poke_all: Optional[Callable[[], None]] = None
