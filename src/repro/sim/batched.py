"""Vectorized max-plus batch evaluation of token simulations.

The scalar token simulator (:mod:`repro.sim.token_sim`) interprets one
delay sample per run of an interpreter-bound event loop.  But the
*structure* of a run — which firings happen, which tokens each firing
consumes — is delay-independent: register values, loop trip counts and
IF decisions are pure dataflow, so every in-bounds delay assignment
replays the same token causality.  Only the *times* change, and they
obey a max-plus recurrence::

    start(f)      = max(completion(p) for p in parents(f))   (0 for START)
    completion(f) = start(f) + delay(f)

where ``parents(f)`` are the producers of the tokens ``f`` consumed
plus ``f``'s own previous firing (a node cannot fire while busy).  Both
operations are exact in IEEE float64 — ``max`` selects one operand bit
for bit and the single addition is the same one the event kernel
performs — so evaluating the recurrence with numpy over a batch axis
reproduces scalar makespans *bit-identically*.

The engine therefore works in two phases:

1. **Compile** (once): run the scalar simulator under NOMINAL delays
   with recording hooks, unrolling loop iterations to their actual trip
   counts, resolving IF branches from the value trace, and capturing
   GT1 pre-enabled backward arcs.  The result is a topologically
   ordered list of firings with parent indices — a straight-line
   max-plus program.
2. **Evaluate** (per batch): build a ``(B, firings)`` delay matrix
   (nominal per faulted model, or per-node seeded substreams identical
   to the scalar sampler's) and sweep the recurrence once, yielding all
   B makespans, completion matrices, and per-arc "could-be-last"
   indicators in a handful of numpy passes.

**Oracle policy.**  The scalar kernel remains the semantics oracle.
Channel-safety violations are the one delay-*dependent* behaviour (an
early emission can overtake a late consumption), so the engine
classifies each sample against the compiled token timeline: a strict
token overtake is a definite violation, an exact tie or a merged-wire
overlap is a *suspect*, and every flagged sample must be re-run through
the scalar simulator for its authoritative verdict.  On top of that, a
configurable fraction of clean samples is spot-checked against scalar
runs at runtime (:class:`BatchDivergenceError` on any mismatch), and
the property suite asserts batched == scalar bit-for-bit offline.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cdfg.graph import Cdfg
from repro.cdfg.node import Node
from repro.channels.model import ChannelPlan
from repro.errors import SimulationError
from repro.obs.spans import span
from repro.sim.seeding import NOMINAL, node_stream_seed
from repro.sim.token_sim import TokenSimResult, TokenSimulator, simulate_tokens
from repro.timing.delays import DelayModel

try:  # gated: everything here must stay importable without numpy
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None
    HAVE_NUMPY = False

NUMPY_HINT = (
    "numpy is unavailable, so the batched max-plus engine cannot run; "
    "fall back to the scalar simulator (--no-batched), which needs no "
    "numpy."
)

#: Default fraction of clean samples re-run through the scalar oracle.
#: 1/64 keeps the runtime cross-check always-on (4 re-runs per
#: 256-sample batch) while costing well under half of the batch win.
DEFAULT_SPOT_CHECK = 1.0 / 64.0


class BatchedSimError(SimulationError):
    """The batched engine cannot handle this design/batch."""


class UnbatchableDesignError(BatchedSimError):
    """Compilation failed: the NOMINAL reference run is itself unsafe
    (violations or leftover tokens), so no per-sample structure can be
    trusted.  Callers should fall back to the scalar path."""


class BatchDivergenceError(BatchedSimError):
    """A runtime spot-check found a batched/scalar mismatch.

    This is a bug surface, not a recoverable condition: the whole point
    of the engine is bit-exactness against the scalar oracle."""


@dataclass
class _ProgramFiring:
    """One firing in the compiled straight-line program."""

    fid: int
    node: Node
    occurrence: int
    #: producer firings of the consumed tokens, plus the node's own
    #: previous firing (busy-ness constraint); empty only for START
    parents: Tuple[int, ...]


@dataclass
class _ArcToken:
    """One token's life on one arc: produced by ``producer``, consumed
    by ``consumer`` (None when it was still pending at quiescence)."""

    producer: int
    consumer: Optional[int] = None


class _RecordingSimulator(TokenSimulator):
    """Scalar NOMINAL run instrumented to emit the max-plus program.

    The hooks piggyback on the exact points where the base simulator
    moves tokens, so the recorded structure *is* the executed structure
    — there is no second interpretation of the firing rule to drift out
    of sync:

    - ``_consume`` runs exactly once per firing (all consumed arcs
      share the firing node as destination) → allocate the firing id
      and resolve token producers to parent firings;
    - ``_finish`` runs first in every completion callback → remember
      which firing is completing, so…
    - ``_track_production`` (called for both normal emissions and GT1
      loop-entry pre-enabled backward arcs) can attribute the new token
      to its producer firing.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.program: List[_ProgramFiring] = []
        self.arc_tokens: Dict[Tuple[str, str], List[_ArcToken]] = {}
        self._pending: Dict[Tuple[str, str], List[_ArcToken]] = {}
        self._inflight: Dict[str, int] = {}
        self._last_fid: Dict[str, int] = {}
        self._occurrences: Dict[str, int] = {}
        self._completing: Optional[int] = None

    def _record_firing(self, node: Node, parents: List[int]) -> int:
        fid = len(self.program)
        previous = self._last_fid.get(node.name)
        if previous is not None:
            parents = parents + [previous]
        occurrence = self._occurrences.get(node.name, 0)
        self._occurrences[node.name] = occurrence + 1
        self.program.append(
            _ProgramFiring(fid=fid, node=node, occurrence=occurrence, parents=tuple(parents))
        )
        self._last_fid[node.name] = fid
        self._inflight[node.name] = fid
        return fid

    def _try_fire_start(self) -> None:
        self._record_firing(self.cdfg.start, [])
        super()._try_fire_start()

    def _consume(self, arcs) -> None:
        node = self.cdfg.node(arcs[0].dst)
        fid = len(self.program)
        parents = []
        for arc in arcs:
            token = self._pending[arc.key].pop(0)
            token.consumer = fid
            parents.append(token.producer)
        self._record_firing(node, parents)
        super()._consume(arcs)

    def _track_production(self, arc) -> None:
        assert self._completing is not None, "production outside a completion"
        token = _ArcToken(producer=self._completing)
        self.arc_tokens.setdefault(arc.key, []).append(token)
        self._pending.setdefault(arc.key, []).append(token)
        super()._track_production(arc)

    def _finish(self, node: Node, start: float) -> None:
        self._completing = self._inflight[node.name]
        super()._finish(node, start)


@dataclass
class CompiledProgram:
    """A token simulation unrolled into a straight-line max-plus program."""

    cdfg: Cdfg
    base_delays: DelayModel
    channel_plan: Optional[ChannelPlan]
    firings: List[_ProgramFiring]
    end_fid: int
    arc_tokens: Dict[Tuple[str, str], List[_ArcToken]]
    #: the NOMINAL reference run the program was recorded from — its
    #: registers/loop counts/end_time double as the baseline verdict
    reference: TokenSimResult
    #: distinct nodes in first-firing order
    nodes: List[Node] = field(default_factory=list)
    node_index: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for firing in self.firings:
            if firing.node.name not in self.node_index:
                self.node_index[firing.node.name] = len(self.nodes)
                self.nodes.append(firing.node)
        #: firing column -> distinct-node column
        self._firing_node = np.array(
            [self.node_index[f.node.name] for f in self.firings], dtype=np.intp
        )
        #: distinct node -> firing columns in occurrence order
        self._node_firings: List["np.ndarray"] = [
            np.array([], dtype=np.intp) for __ in self.nodes
        ]
        by_node: Dict[int, List[int]] = {}
        for firing in self.firings:
            by_node.setdefault(self.node_index[firing.node.name], []).append(firing.fid)
        for index, fids in by_node.items():
            self._node_firings[index] = np.array(fids, dtype=np.intp)
        self._last_fid_of_node = np.array(
            [fids[-1] for fids in self._node_firings], dtype=np.intp
        )
        self.start_fid = 0

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self.firings)

    def evaluate(self, delay_matrix: "np.ndarray") -> Tuple["np.ndarray", "np.ndarray"]:
        """Sweep the recurrence once: ``(B, F)`` starts and completions."""
        batch, width = delay_matrix.shape
        if width != len(self.firings):
            raise BatchedSimError(
                f"delay matrix has {width} columns for a {len(self.firings)}-firing program"
            )
        starts = np.empty((batch, width), dtype=np.float64)
        comps = np.empty((batch, width), dtype=np.float64)
        zero = np.zeros(batch, dtype=np.float64)
        for firing in self.firings:
            parents = firing.parents
            if not parents:
                start = zero
            else:
                start = comps[:, parents[0]]
                for parent in parents[1:]:
                    start = np.maximum(start, comps[:, parent])
            starts[:, firing.fid] = start
            np.add(starts[:, firing.fid], delay_matrix[:, firing.fid], out=comps[:, firing.fid])
        return starts, comps


def compile_program(
    cdfg: Cdfg,
    delay_model: Optional[DelayModel] = None,
    channel_plan: Optional[ChannelPlan] = None,
    max_events: int = 1_000_000,
) -> CompiledProgram:
    """Record a NOMINAL scalar run of ``cdfg`` as a max-plus program.

    Raises :class:`UnbatchableDesignError` when the reference run is
    itself unsafe (channel violations or stray tokens) and any
    :class:`~repro.errors.DeadlockError` from the reference run as-is —
    in both cases callers should use the scalar path, which reproduces
    the exact diagnostic.
    """
    if not HAVE_NUMPY:
        raise BatchedSimError(NUMPY_HINT)
    base = delay_model or DelayModel()
    with span("sim/batched/compile", workload=cdfg.name):
        recorder = _RecordingSimulator(
            cdfg,
            delay_model=base,
            seed=NOMINAL,
            strict=False,
            max_events=max_events,
            channel_plan=channel_plan,
        )
        reference = recorder.run()
    if reference.violations:
        raise UnbatchableDesignError(
            "reference run is unsafe under NOMINAL delays; the compiled "
            f"structure cannot be trusted: {reference.violations[0]}"
        )
    end_name = cdfg.end.name
    end_fid = recorder._last_fid.get(end_name)
    if end_fid is None:  # pragma: no cover - deadlock raises earlier
        raise UnbatchableDesignError("reference run never fired END")
    return CompiledProgram(
        cdfg=cdfg,
        base_delays=base,
        channel_plan=channel_plan,
        firings=recorder.program,
        end_fid=end_fid,
        arc_tokens=recorder.arc_tokens,
        reference=reference,
    )


@dataclass
class BatchResult:
    """Timings of B delay samples evaluated over one compiled program."""

    program: CompiledProgram
    #: per-sample makespan (END completion); bit-identical to the
    #: scalar simulator for every sample not flagged in ``suspect``
    makespans: "np.ndarray"
    #: (B, distinct nodes) completion time of each node's last firing,
    #: columns ordered like ``program.nodes``
    node_completions: "np.ndarray"
    starts: "np.ndarray"
    completions: "np.ndarray"
    #: samples with a *strict* token overtake — a definite channel
    #: violation; always a subset of ``suspect``
    violation: "np.ndarray"
    #: samples whose channel safety cannot be decided from the batch
    #: (strict violation, exact tie, or merged-wire overlap) — these
    #: must be re-run through the scalar oracle for their verdict
    suspect: "np.ndarray"
    #: per requested arc key: (B,) — the arc's token arrival achieved
    #: the consumer's firing time (the arc "could be last")
    arc_last: Dict[Tuple[str, str], "np.ndarray"] = field(default_factory=dict)

    @property
    def batch(self) -> int:
        return int(self.makespans.shape[0])

    def node_completion(self, name: str) -> "np.ndarray":
        return self.node_completions[:, self.program.node_index[name]]


class BatchedTokenEngine:
    """Evaluate many delay samples of one CDFG at once.

    Compiles the graph once (see :func:`compile_program`) and exposes
    three batch modes that mirror the scalar simulator's delay modes:

    - :meth:`run_models` — one NOMINAL (midpoint) evaluation per
      :class:`DelayModel` (the fault-campaign trial mode);
    - :meth:`run_plans` — fast path for :class:`FaultPlan`-perturbed
      copies of the base model, skipping model construction entirely;
    - :meth:`run_seeded` — one seeded-sampling evaluation per seed,
      reproducing the scalar per-node substreams bit-for-bit.
    """

    def __init__(
        self,
        cdfg: Cdfg,
        delay_model: Optional[DelayModel] = None,
        channel_plan: Optional[ChannelPlan] = None,
        max_events: int = 1_000_000,
        spot_check: float = DEFAULT_SPOT_CHECK,
    ):
        if not HAVE_NUMPY:
            raise BatchedSimError(NUMPY_HINT)
        self.program = compile_program(
            cdfg, delay_model=delay_model, channel_plan=channel_plan, max_events=max_events
        )
        self.max_events = max_events
        self.spot_check = spot_check
        program = self.program
        #: base midpoint delay per distinct node (the all-nominal row)
        self._base_row = np.array(
            [program.base_delays.nominal(node) for node in program.nodes], dtype=np.float64
        )
        #: (fu, operator) -> distinct-node columns whose interval the
        #: pair participates in (for the FaultPlan fast path)
        self._pair_nodes: Dict[Tuple[str, Optional[str]], List[int]] = {}
        for index, node in enumerate(program.nodes):
            if not node.is_operation or node.fu is None:
                continue
            for statement in node.statements:
                self._pair_nodes.setdefault((node.fu, statement.operator), []).append(index)
        self._channel_pairs = self._prepare_channel_pairs()

    # -- construction helpers ------------------------------------------
    def _prepare_channel_pairs(self):
        """Cross-source token pairs per merged channel, for the
        conservative merged-wire overlap check."""
        plan = self.program.channel_plan
        if plan is None:
            return []
        by_channel: Dict[str, List[Tuple[_ArcToken, str]]] = {}
        for key, tokens in self.program.arc_tokens.items():
            channel = plan.arc_to_channel.get(key)
            if channel is None:
                continue
            for token in tokens:
                by_channel.setdefault(channel, []).append((token, key[0]))
        pairs = []
        for tokens in by_channel.values():
            for i in range(len(tokens)):
                for j in range(i + 1, len(tokens)):
                    if tokens[i][1] != tokens[j][1]:
                        pairs.append((tokens[i][0], tokens[j][0]))
        return pairs

    # -- delay-matrix builders -----------------------------------------
    def _scatter(self, node_rows: "np.ndarray") -> "np.ndarray":
        """(B, distinct nodes) nominal rows -> (B, firings) columns."""
        return node_rows[:, self.program._firing_node]

    def _row_for_model(self, model: DelayModel) -> "np.ndarray":
        return np.array(
            [model.nominal(node) for node in self.program.nodes], dtype=np.float64
        )

    def _row_for_plan(self, plan) -> Optional["np.ndarray"]:
        """Nominal row under ``base + plan`` without building the model.

        Replays :meth:`FaultPlan.apply`'s override chain symbolically:
        each spec perturbs the interval the accumulated model would
        resolve for its ``(fu, operator)`` pair, and only nodes whose
        statements touch a perturbed pair are recomputed.  Bails out
        (returns None) for unit-wide specs, where override precedence
        couples whole units and the generic model path is the safe one.
        """
        base = self.program.base_delays
        effective: Dict[Tuple[str, Optional[str]], Tuple[float, float]] = {}
        for spec in plan.specs:
            if spec.operator is None or spec.fu is None:
                return None
            key = (spec.fu, spec.operator)
            interval = effective.get(key)
            if interval is None:
                interval = base.operator_interval(spec.fu, spec.operator)
            effective[key] = spec.perturb(interval)
        row = self._base_row.copy()
        touched = set()
        for key in effective:
            touched.update(self._pair_nodes.get(key, ()))
        for index in touched:
            node = self.program.nodes[index]
            lows, highs = [], []
            for statement in node.statements:
                interval = effective.get((node.fu, statement.operator))
                if interval is None:
                    interval = base.operator_interval(node.fu, statement.operator)
                lows.append(interval[0])
                highs.append(interval[1])
            row[index] = (max(lows) + max(highs)) / 2.0
        return row

    def _seeded_matrix(self, seeds: Sequence[int], model: DelayModel) -> "np.ndarray":
        """(B, firings) matrix reproducing the scalar sampled mode.

        Per sample, per node: the node's private substream (derived
        exactly like the scalar simulator derives it) yields one draw
        per firing, placed in occurrence order.  START never samples —
        the scalar simulator schedules it with its nominal delay.
        """
        program = self.program
        matrix = np.empty((len(seeds), program.size), dtype=np.float64)
        start_node = program.firings[program.start_fid].node
        for row, seed in enumerate(seeds):
            for index, node in enumerate(program.nodes):
                fids = program._node_firings[index]
                if node.name == start_node.name:
                    matrix[row, fids] = model.nominal(node)
                    continue
                stream = random.Random(node_stream_seed(int(seed), node.name))
                draws = model.sample_matrix([node] * len(fids), stream, 1)[0]
                matrix[row, fids] = draws
        return matrix

    # -- safety classification -----------------------------------------
    def _classify(self, starts: "np.ndarray", comps: "np.ndarray"):
        batch = starts.shape[0]
        violation = np.zeros(batch, dtype=bool)
        tie = np.zeros(batch, dtype=bool)
        infinity = np.float64("inf")
        for tokens in self.program.arc_tokens.values():
            if len(tokens) < 2:
                continue
            emit = comps[:, [t.producer for t in tokens]]
            take = np.empty((batch, len(tokens)), dtype=np.float64)
            for column, token in enumerate(tokens):
                if token.consumer is None:
                    take[:, column] = infinity
                else:
                    take[:, column] = starts[:, token.consumer]
            # token k+1 emitted before token k was taken = two
            # transitions outstanding on the wire (the GT1-D property)
            violation |= (emit[:, 1:] < take[:, :-1]).any(axis=1)
            tie |= (emit[:, 1:] == take[:, :-1]).any(axis=1)
        suspect = violation | tie
        for left, right in self._channel_pairs:
            left_e = comps[:, left.producer]
            right_e = comps[:, right.producer]
            left_t = (
                starts[:, left.consumer] if left.consumer is not None else infinity
            )
            right_t = (
                starts[:, right.consumer] if right.consumer is not None else infinity
            )
            # boundary-inclusive interval overlap between tokens of two
            # different sources on one merged wire
            suspect |= (left_e <= right_t) & (right_e <= left_t)
        return violation, suspect

    def _arc_last(
        self, arcs, starts: "np.ndarray", comps: "np.ndarray", suspect: "np.ndarray"
    ) -> Dict[Tuple[str, str], "np.ndarray"]:
        """Per arc: did any of its tokens achieve the consumer's firing
        time?  Suspect samples are conservatively counted as
        could-be-last for every arc (their timeline is untrusted)."""
        out: Dict[Tuple[str, str], "np.ndarray"] = {}
        for key in arcs:
            last = suspect.copy()
            for token in self.program.arc_tokens.get(key, ()):
                if token.consumer is None:
                    continue
                last |= comps[:, token.producer] == starts[:, token.consumer]
            out[key] = last
        return out

    # -- scalar oracle --------------------------------------------------
    def scalar_result(
        self, model: Optional[DelayModel] = None, seed=NOMINAL
    ) -> TokenSimResult:
        """One authoritative scalar run with this engine's graph/plan."""
        return simulate_tokens(
            self.program.cdfg,
            delay_model=model or self.program.base_delays,
            seed=seed,
            strict=False,
            max_events=self.max_events,
            channel_plan=self.program.channel_plan,
        )

    def _spot_check(self, result: BatchResult, describe, rerun, fraction: Optional[float]):
        """Re-run a deterministic sample subset through the oracle."""
        fraction = self.spot_check if fraction is None else fraction
        if not fraction or fraction <= 0.0:
            return
        step = max(1, int(math.ceil(1.0 / fraction)))
        for index in range(0, result.batch, step):
            if result.suspect[index]:
                continue  # flagged rows get full scalar verdicts anyway
            scalar = rerun(index)
            batched = float(result.makespans[index])
            if scalar.violations or scalar.end_time != batched:
                raise BatchDivergenceError(
                    f"spot-check mismatch on sample {index} ({describe(index)}): "
                    f"batched makespan {batched!r} vs scalar {scalar.end_time!r}"
                    + (f"; scalar saw {scalar.violations[0]}" if scalar.violations else "")
                )

    # -- batch modes ----------------------------------------------------
    def _finalize(self, delays: "np.ndarray", arcs=None) -> BatchResult:
        starts, comps = self.program.evaluate(delays)
        violation, suspect = self._classify(starts, comps)
        result = BatchResult(
            program=self.program,
            makespans=comps[:, self.program.end_fid].copy(),
            node_completions=comps[:, self.program._last_fid_of_node],
            starts=starts,
            completions=comps,
            violation=violation,
            suspect=suspect,
        )
        if arcs:
            result.arc_last = self._arc_last(arcs, starts, comps, suspect)
        return result

    def run_models(
        self, models: Sequence[DelayModel], arcs=None, spot_check: Optional[float] = None
    ) -> BatchResult:
        """One NOMINAL-delay evaluation per model (fault-trial mode)."""
        with span("sim/batched/models", batch=len(models)):
            rows = np.stack([self._row_for_model(model) for model in models])
            result = self._finalize(self._scatter(rows), arcs=arcs)
            self._spot_check(
                result,
                lambda i: f"model {i}",
                lambda i: self.scalar_result(model=models[i], seed=NOMINAL),
                spot_check,
            )
            return result

    def run_plans(
        self, plans: Sequence, arcs=None, spot_check: Optional[float] = None
    ) -> BatchResult:
        """NOMINAL evaluations of ``base + FaultPlan`` perturbations."""
        with span("sim/batched/plans", batch=len(plans)):
            rows = np.empty((len(plans), len(self.program.nodes)), dtype=np.float64)
            models: Dict[int, DelayModel] = {}
            for index, plan in enumerate(plans):
                row = self._row_for_plan(plan)
                if row is None:  # unit-wide spec: generic model path
                    models[index] = plan.apply(self.program.base_delays)
                    row = self._row_for_model(models[index])
                rows[index] = row
            result = self._finalize(self._scatter(rows), arcs=arcs)

            def rerun(index):
                model = models.get(index)
                if model is None:
                    model = plans[index].apply(self.program.base_delays)
                return self.scalar_result(model=model, seed=NOMINAL)

            self._spot_check(result, lambda i: f"fault plan {i}", rerun, spot_check)
            return result

    def run_seeded(
        self,
        seeds: Sequence[int],
        model: Optional[DelayModel] = None,
        arcs=None,
        spot_check: Optional[float] = None,
    ) -> BatchResult:
        """One seeded-sampling evaluation per seed, bit-identical to
        ``simulate_tokens(..., seed=s)`` for every clean sample."""
        with span("sim/batched/seeded", batch=len(seeds)):
            model = model or self.program.base_delays
            result = self._finalize(self._seeded_matrix(seeds, model), arcs=arcs)
            self._spot_check(
                result,
                lambda i: f"seed {seeds[i]}",
                lambda i: self.scalar_result(model=model, seed=int(seeds[i])),
                spot_check,
            )
            return result
