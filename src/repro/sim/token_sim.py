"""CDFG-level token simulation.

Executes a CDFG under the paper's firing rule — "an operation node may
fire if all its predecessors have fired" — made precise with tokens on
constraint arcs:

- every arc carries single-use tokens (a token models one transition on
  the arc's ready wire);
- an operation node fires when *all* incoming arcs hold a token; it
  reads its operands at firing time (muxes select, FU computes), writes
  its destination registers at completion time, and then emits a token
  on every outgoing arc ("done" signals are the last event of an RTL
  statement);
- a LOOP node first fires when its entry arcs (from outside the block)
  hold tokens, and re-fires on the ENDLOOP->LOOP iterate token; it
  examines the loop variable and emits either into the body (true) or
  on its exit arcs (false);
- GT1 backward arcs are *pre-enabled*: they are loaded with one token
  each time the loop is entered from outside;
- an IF node examines its condition and emits into the taken branch
  plus its decision arc; the matching ENDIF joins the decision arc with
  the taken branch's arcs.

The simulator enforces the **channel-safety property** that GT1 step D
protects: a wire must never hold two outstanding transitions.  If an
emission finds a token already pending on an arc, a
:class:`~repro.errors.ChannelSafetyError` is raised (or recorded when
``strict=False``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.cdfg.arc import Arc
from repro.cdfg.graph import Cdfg
from repro.cdfg.kinds import NodeKind
from repro.cdfg.node import Node
from repro.channels.model import ChannelPlan
from repro.errors import ChannelSafetyError, DeadlockError, SimulationError
from repro.obs.causal import EventTrace
from repro.obs.spans import span
from repro.rtl.semantics import evaluate_expr
from repro.sim.kernel import EventKernel
from repro.sim.seeding import SeedLike, node_stream_seed, resolve_seed
from repro.timing.delays import DelayModel


@dataclass
class Firing:
    """One execution of a CDFG node."""

    node: str
    start: float
    end: float


@dataclass
class TokenSimResult:
    """Outcome of a token simulation."""

    registers: Dict[str, float]
    end_time: float
    firings: List[Firing] = field(default_factory=list)
    loop_iterations: Dict[str, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    events_processed: int = 0
    #: effective delay-sampling seed (None for a NOMINAL run)
    seed: Optional[int] = None
    #: causal event log (present when the run was traced)
    trace: Optional[EventTrace] = None
    #: trace uid of the END completion (terminal of the critical path)
    end_event: Optional[int] = None
    #: chronological register-write log: (dest, value) in application
    #: order — the per-variable write streams the flow-equivalence
    #: checker (:mod:`repro.verify.flow`) compares across transforms
    writes: List[Tuple[str, float]] = field(default_factory=list)

    def firing_count(self, node: str) -> int:
        return sum(1 for firing in self.firings if firing.node == node)

    def register(self, name: str) -> float:
        return self.registers[name]

    def write_streams(self) -> Dict[str, List[float]]:
        """Per-variable value streams, in write order."""
        streams: Dict[str, List[float]] = {}
        for dest, value in self.writes:
            streams.setdefault(dest, []).append(value)
        return streams


class TokenSimulator:
    """Execute one CDFG run.  Use :func:`simulate_tokens` for one-liners."""

    def __init__(
        self,
        cdfg: Cdfg,
        delay_model: Optional[DelayModel] = None,
        seed: SeedLike = None,
        strict: bool = True,
        max_events: int = 1_000_000,
        channel_plan: Optional[ChannelPlan] = None,
        trace: Optional[EventTrace] = None,
    ):
        self.cdfg = cdfg
        self.delays = delay_model or DelayModel()
        self.rng, self.seed = resolve_seed(seed)
        self.strict = strict
        self.max_events = max_events
        #: optional channel plan: when given, the simulator also checks
        #: that two *different* events (distinct source nodes) are never
        #: simultaneously outstanding on one merged wire — the safety
        #: property GT5's concurrency proof must guarantee
        self._arc_channel: Dict[Tuple[str, str], str] = (
            dict(channel_plan.arc_to_channel) if channel_plan is not None else {}
        )
        self._channel_outstanding: Dict[str, Dict[str, int]] = {}

        self.kernel = EventKernel(trace=trace)
        self.tokens: Dict[Tuple[str, str], int] = {arc.key: 0 for arc in cdfg.arcs()}
        self.registers: Dict[str, float] = {}
        self.registers.update(cdfg.initial_registers)
        self.registers.update(cdfg.inputs)
        self._input_names = set(cdfg.inputs)

        self.busy: Set[str] = set()
        self.loop_entered: Dict[str, bool] = {}
        self.if_taken: Dict[str, Optional[str]] = {}
        #: loop root -> number of times the loop was entered from outside
        self.loop_epoch: Dict[str, int] = {}
        #: node -> loop epoch during which the node last fired
        self._node_epoch: Dict[str, int] = {}
        self.result = TokenSimResult(
            registers=self.registers, end_time=0.0, seed=self.seed, trace=trace
        )
        self._ancestors = self._compute_ancestors()
        self._pending_writes: Dict[str, List[Tuple[str, float]]] = {}
        self._ended = False
        #: per-node delay substreams (sampled mode only, lazily created).
        #: Each node draws from its own stream seeded by
        #: ``node_stream_seed(self.seed, name)``, so the k-th firing of a
        #: node always sees the k-th draw of that stream regardless of
        #: how firings of *other* nodes interleave.  This makes seeded
        #: delay assignments a pure function of (seed, node, occurrence),
        #: which the batched engine reproduces without an event loop.
        self._delay_streams: Dict[str, random.Random] = {}

    def _node_delay(self, node: Node) -> float:
        """Delay for the next firing of ``node`` under the current mode."""
        if self.rng is None:
            return self.delays.nominal(node)
        stream = self._delay_streams.get(node.name)
        if stream is None:
            stream = random.Random(node_stream_seed(self.seed, node.name))
            self._delay_streams[node.name] = stream
        return self.delays.sample(node, stream)

    # ------------------------------------------------------------------
    # static structure helpers
    # ------------------------------------------------------------------
    def _compute_ancestors(self) -> Dict[str, Set[str]]:
        ancestors: Dict[str, Set[str]] = {}
        for name in self.cdfg.node_names():
            chain: Set[str] = set()
            current = self.cdfg.block_of(name)
            while current is not None:
                chain.add(current)
                current = self.cdfg.block_of(current)
            ancestors[name] = chain
        return ancestors

    def _inside(self, name: str, root: str) -> bool:
        return root in self._ancestors[name]

    def _matching_if(self, endif: str) -> str:
        for arc in self.cdfg.arcs_to(endif):
            if self.cdfg.node(arc.src).kind is NodeKind.IF:
                return arc.src
        raise SimulationError(f"ENDIF {endif!r} has no decision arc")

    def _loop_of_close(self, endloop: str) -> str:
        for arc in self.cdfg.arcs_from(endloop):
            if self.cdfg.node(arc.dst).kind is NodeKind.LOOP:
                return arc.dst
        raise SimulationError(f"ENDLOOP {endloop!r} has no iterate arc")

    # ------------------------------------------------------------------
    # enablement
    # ------------------------------------------------------------------
    def _required_arcs(self, name: str) -> Optional[List[Arc]]:
        """Incoming arcs whose tokens enable ``name`` right now.

        Returns None when the node cannot fire in its current mode
        (e.g. an ENDIF whose IF has not yet decided).
        """
        node = self.cdfg.node(name)
        incoming = self.cdfg.arcs_to(name)
        if node.kind is NodeKind.LOOP:
            entered = self.loop_entered.get(name, False)
            if entered:
                return [arc for arc in incoming if self.cdfg.is_iterate_arc(arc)]
            return [
                arc
                for arc in incoming
                if not self.cdfg.is_iterate_arc(arc) and not self._inside(arc.src, name)
            ]
        if node.kind is NodeKind.ENDIF:
            if_root = self._matching_if(name)
            taken = self.if_taken.get(if_root)
            if taken is None:
                return None
            required = []
            for arc in incoming:
                if arc.src == if_root:
                    required.append(arc)
                elif (
                    self._inside(arc.src, if_root)
                    and self._branch_relative_to(arc.src, if_root) == taken
                ):
                    required.append(arc)
            return required
        return [arc for arc in incoming if self._arc_required_now(name, arc)]

    def _arc_required_now(self, name: str, arc: Arc) -> bool:
        """Entry arcs (source outside the destination's loop) carry one
        event per loop execution: they gate only the first firing after
        the loop is entered."""
        loop = self._innermost_loop(name)
        if loop is None:
            return True
        if arc.src == loop or self._inside(arc.src, loop):
            return True
        # entry arc: required until the node fires once in this epoch
        return self._node_epoch.get(name) != self.loop_epoch.get(loop, 0)

    def _innermost_loop(self, name: str) -> Optional[str]:
        current = self.cdfg.block_of(name)
        while current is not None:
            if self.cdfg.node(current).kind is NodeKind.LOOP:
                return current
            current = self.cdfg.block_of(current)
        return None

    def _branch_relative_to(self, name: str, if_root: str) -> Optional[str]:
        """Branch of the direct item of ``if_root`` that contains ``name``."""
        current = name
        while current is not None and self.cdfg.block_of(current) != if_root:
            current = self.cdfg.block_of(current)
            if current is None:
                return None
        return self.cdfg.branch_of(current) if current is not None else None

    def _enabled(self, name: str) -> Optional[List[Arc]]:
        if name in self.busy:
            return None
        required = self._required_arcs(name)
        if required is None:
            return None
        if not required:
            # START is fired exactly once by run(); every other node
            # needs at least one satisfied constraint to fire again.
            return None
        for arc in required:
            if self.tokens[arc.key] < 1:
                return None
        return required

    # ------------------------------------------------------------------
    # token movement
    # ------------------------------------------------------------------
    def _emit(self, arc: Arc) -> None:
        self.tokens[arc.key] += 1
        if self.tokens[arc.key] > 1:
            message = (
                f"channel safety violated at t={self.kernel.now:.3f}: "
                f"two outstanding transitions on {arc}"
            )
            self.result.violations.append(message)
            if self.strict:
                raise ChannelSafetyError(message)
        self._track_production(arc)
        self._try_fire(arc.dst)

    def _consume(self, arcs: List[Arc]) -> None:
        for arc in arcs:
            if self.tokens[arc.key] < 1:
                raise SimulationError(f"consuming missing token on {arc}")
            self.tokens[arc.key] -= 1
            self._track_consumption(arc)

    # ------------------------------------------------------------------
    # merged-wire occupancy (channel-plan conformance)
    # ------------------------------------------------------------------
    def _track_production(self, arc: Arc) -> None:
        channel = self._arc_channel.get(arc.key)
        if channel is None:
            return
        outstanding = self._channel_outstanding.setdefault(channel, {})
        concurrent = sorted(
            src for src, count in outstanding.items() if count > 0 and src != arc.src
        )
        outstanding[arc.src] = outstanding.get(arc.src, 0) + 1
        if concurrent:
            message = (
                f"channel safety violated at t={self.kernel.now:.3f}: event of "
                f"{arc.src!r} emitted on merged channel {channel} while the event "
                f"of {concurrent[0]!r} is still outstanding"
            )
            self.result.violations.append(message)
            if self.strict:
                raise ChannelSafetyError(message)

    def _track_consumption(self, arc: Arc) -> None:
        channel = self._arc_channel.get(arc.key)
        if channel is None:
            return
        outstanding = self._channel_outstanding.get(channel)
        if outstanding and outstanding.get(arc.src, 0) > 0:
            outstanding[arc.src] -= 1

    # ------------------------------------------------------------------
    # firing
    # ------------------------------------------------------------------
    def _try_fire(self, name: str) -> None:
        required = self._enabled(name)
        if required is None:
            return
        node = self.cdfg.node(name)
        self._consume(required)
        self.busy.add(name)
        loop = self._innermost_loop(name)
        if loop is not None:
            self._node_epoch[name] = self.loop_epoch.get(loop, 0)
        start = self.kernel.now
        delay = self._node_delay(node)

        label = f"{self.cdfg.fu_of(name)}:{name}"
        if node.kind is NodeKind.OPERATION:
            writes = self._evaluate_operation(node)
            self.kernel.schedule(
                delay, lambda: self._complete_operation(node, start, writes), label=label
            )
        else:
            self.kernel.schedule(
                delay, lambda: self._complete_structural(node, start, required), label=label
            )

    def _evaluate_operation(self, node: Node) -> List[Tuple[str, float]]:
        """Read operands now; later statements of a merged node see the
        earlier statements' results (they execute as one fragment)."""
        view = dict(self.registers)
        writes: List[Tuple[str, float]] = []
        for statement in node.statements:
            if statement.dest in self._input_names:
                raise SimulationError(f"write to read-only input {statement.dest!r}")
            value = evaluate_expr(statement.expr, view)
            view[statement.dest] = value
            writes.append((statement.dest, value))
        return writes

    def _complete_operation(
        self, node: Node, start: float, writes: List[Tuple[str, float]]
    ) -> None:
        for dest, value in writes:
            self.registers[dest] = value
            self.result.writes.append((dest, value))
        self._finish(node, start)
        for arc in self.cdfg.arcs_from(node.name):
            self._emit(arc)

    def _complete_structural(self, node: Node, start: float, consumed: List[Arc]) -> None:
        self._finish(node, start)
        name = node.name
        if node.kind is NodeKind.START:
            for arc in self.cdfg.arcs_from(name):
                self._emit(arc)
        elif node.kind is NodeKind.END:
            self._ended = True
            self.result.end_time = self.kernel.now
            if self.kernel.trace is not None:
                self.result.end_event = self.kernel.trace.current
        elif node.kind is NodeKind.LOOP:
            self._complete_loop(name, consumed)
        elif node.kind is NodeKind.ENDLOOP:
            for arc in self.cdfg.arcs_from(name):
                self._emit(arc)
        elif node.kind is NodeKind.IF:
            self._complete_if(name)
        elif node.kind is NodeKind.ENDIF:
            if_root = self._matching_if(name)
            self.if_taken[if_root] = None
            for arc in self.cdfg.arcs_from(name):
                self._emit(arc)

    def _complete_loop(self, name: str, consumed: List[Arc]) -> None:
        node = self.cdfg.node(name)
        assert node.condition is not None
        condition = self.registers.get(node.condition)
        if condition is None:
            raise SimulationError(f"loop condition {node.condition!r} never initialized")
        entering = not self.loop_entered.get(name, False)
        if condition:
            self.result.loop_iterations[name] = self.result.loop_iterations.get(name, 0) + 1
            if entering:
                self.loop_entered[name] = True
                self.loop_epoch[name] = self.loop_epoch.get(name, 0) + 1
                # pre-enable backward arcs for the first iteration
                for arc in self.cdfg.arcs():
                    if arc.backward and self._inside(arc.src, name) and self._inside(arc.dst, name):
                        if self.tokens[arc.key] == 0:
                            self.tokens[arc.key] = 1
                            self._track_production(arc)
                        self._try_fire(arc.dst)
            for arc in self.cdfg.arcs_from(name):
                if self._inside(arc.dst, name) or arc.dst == name:
                    self._emit(arc)
        else:
            self.loop_entered[name] = False
            for arc in self.cdfg.arcs_from(name):
                if not self._inside(arc.dst, name):
                    self._emit(arc)

    def _complete_if(self, name: str) -> None:
        node = self.cdfg.node(name)
        assert node.condition is not None
        condition = self.registers.get(node.condition)
        if condition is None:
            raise SimulationError(f"if condition {node.condition!r} never initialized")
        taken = "then" if condition else "else"
        self.if_taken[name] = taken
        for arc in self.cdfg.arcs_from(name):
            if self._inside(arc.dst, name):
                # branch entry arcs: only the taken branch fires
                if self._branch_relative_to(arc.dst, name) == taken:
                    self._emit(arc)
            else:
                # the decision arc to ENDIF, plus read-completion arcs
                # (register-allocation constraints from the condition
                # examination) to nodes at the enclosing level
                self._emit(arc)

    def _finish(self, node: Node, start: float) -> None:
        self.busy.discard(node.name)
        self.result.firings.append(Firing(node.name, start, self.kernel.now))
        # a node may be re-enabled immediately (e.g. LOOP via iterate token)
        self.kernel.schedule(
            0.0, lambda: self._try_fire(node.name), label=f"poke:{node.name}"
        )

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------
    def run(self) -> TokenSimResult:
        with span("sim/tokens", workload=self.cdfg.name):
            return self._run()

    def _run(self) -> TokenSimResult:
        self._try_fire_start()
        self.kernel.run(max_events=self.max_events)
        self.result.events_processed = self.kernel.events_processed
        if not self._ended:
            raise self._deadlock_error()
        self._check_leftover_tokens()
        return self.result

    def _try_fire_start(self) -> None:
        start = self.cdfg.start
        self.busy.add(start.name)
        self.kernel.schedule(
            self.delays.nominal(start),
            lambda: self._complete_structural(start, 0.0, []),
            label=f"{self.cdfg.fu_of(start.name)}:{start.name}",
        )

    def _deadlock_error(self) -> DeadlockError:
        """The watchdog's verdict on a quiesced-but-unfinished run.

        Diagnoses the stall frontier: nodes holding some but not all of
        their required tokens (the classic deadlock symptom), falling
        back to never-fired nodes with missing tokens when nothing is
        even partially enabled.  Every missing arc is reported as a
        blocked channel (with its merged-channel name when a channel
        plan is active), and the kernel's recent-label window names the
        last events that did execute before the stall.
        """
        fired = {firing.node for firing in self.result.firings}
        frontier = []
        downstream = []
        for name in sorted(self.cdfg.node_names()):
            required = self._required_arcs(name)
            if required is None or not required:
                continue
            missing = [arc for arc in required if self.tokens[arc.key] < 1]
            held = [arc for arc in required if self.tokens[arc.key] >= 1]
            if not missing:
                continue
            entry = {
                "node": name,
                "missing": [str(arc) for arc in missing],
                "held": [str(arc) for arc in held],
            }
            if held:
                frontier.append((entry, missing))
            elif name not in fired:
                downstream.append((entry, missing))
        diagnosed = frontier or downstream
        waiting = [entry for entry, __ in diagnosed]
        blocked_channels = []
        seen = set()
        for __, missing in diagnosed:
            for arc in missing:
                channel = self._arc_channel.get(arc.key)
                wire = channel if channel is not None else f"{arc.src}->{arc.dst}"
                if wire not in seen:
                    seen.add(wire)
                    blocked_channels.append(wire)
        summary = (
            "; ".join(f"{e['node']} waits for {e['missing']}" for e in waiting[:4])
            or "no partially-enabled nodes"
        )
        if len(waiting) > 4:
            summary += f"; ... {len(waiting) - 4} more"
        return DeadlockError(
            f"simulation quiesced at t={self.kernel.now:.3f} without reaching END "
            f"(deadlock: {summary})",
            time=self.kernel.now,
            waiting=tuple(waiting),
            blocked_channels=tuple(blocked_channels),
            recent_events=tuple(self.kernel.recent_labels),
        )

    def _check_leftover_tokens(self) -> None:
        """After quiescence, tokens may legitimately remain only on
        backward arcs (emitted by the final iteration for a successor
        iteration that never starts) and on loop-internal arcs written
        by final-iteration stragglers."""
        for arc in self.cdfg.arcs():
            if self.tokens[arc.key] == 0:
                continue
            if arc.backward or self.cdfg.is_iterate_arc(arc):
                continue
            src_loops = {
                root for root in self._ancestors[arc.src]
                if self.cdfg.node(root).kind is NodeKind.LOOP
            }
            if src_loops:
                continue  # final-iteration straggler inside a loop
            dst_loops = {
                root for root in self._ancestors[arc.dst]
                if self.cdfg.node(root).kind is NodeKind.LOOP
            }
            if dst_loops - src_loops:
                # an entry arc whose loop executed zero iterations (or
                # exited before its first consumer fired)
                continue
            message = f"leftover token outside any loop on {arc}"
            self.result.violations.append(message)
            if self.strict:
                raise SimulationError(message)


def simulate_tokens(
    cdfg: Cdfg,
    delay_model: Optional[DelayModel] = None,
    seed: SeedLike = None,
    strict: bool = True,
    max_events: int = 1_000_000,
    channel_plan: Optional[ChannelPlan] = None,
    trace: Optional[EventTrace] = None,
) -> TokenSimResult:
    """Run one token simulation of ``cdfg`` and return the result."""
    simulator = TokenSimulator(
        cdfg,
        delay_model=delay_model,
        seed=seed,
        strict=strict,
        max_events=max_events,
        channel_plan=channel_plan,
        trace=trace,
    )
    return simulator.run()
