"""Whole-system simulation of a :class:`DistributedDesign`.

Instantiates one :class:`~repro.sim.controller.ControllerRuntime` per
extracted machine, a shared :class:`~repro.sim.datapath.Datapath`, and
the environment (which drives the channels leaving START and observes
the channels entering END).  Running the system executes the complete
distributed control: controller-controller ready events, controller-
datapath handshakes, register updates — and verifies that the design
terminates with the correct register file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.afsm.extract import DistributedDesign
from repro.cdfg.graph import ENV
from repro.errors import DeadlockError
from repro.obs.causal import EventTrace
from repro.obs.spans import span
from repro.sim.controller import ControllerRuntime, GlobalWire
from repro.sim.datapath import Datapath
from repro.sim.kernel import EventKernel
from repro.sim.seeding import SeedLike, resolve_seed
from repro.timing.delays import DelayModel


@dataclass
class SystemResult:
    """Outcome of one AFSM-level run."""

    registers: Dict[str, float]
    end_time: float
    transitions_taken: Dict[str, int] = field(default_factory=dict)
    wire_events: Dict[str, int] = field(default_factory=dict)
    hazards: List[str] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)
    events_processed: int = 0
    #: effective delay-sampling seed (None for a NOMINAL run)
    seed: Optional[int] = None
    #: causal event log (present when the run was traced)
    trace: Optional[EventTrace] = None
    #: chronological register-write log from the datapath latches
    writes: List[Tuple[str, float]] = field(default_factory=list)

    def write_streams(self) -> Dict[str, List[float]]:
        """Per-variable value streams, in latch order."""
        streams: Dict[str, List[float]] = {}
        for dest, value in self.writes:
            streams.setdefault(dest, []).append(value)
        return streams


class ControllerSystem:
    """The instantiated distributed design, ready to run."""

    def __init__(
        self,
        design: DistributedDesign,
        delays: Optional[DelayModel] = None,
        seed: SeedLike = None,
        strict: bool = True,
        max_events: int = 2_000_000,
        trace: Optional[EventTrace] = None,
    ):
        self.design = design
        self.kernel = EventKernel(trace=trace)
        self.max_events = max_events
        rng, self.seed = resolve_seed(seed)
        self.datapath = Datapath(
            self.kernel,
            design.cdfg.initial_registers,
            design.cdfg.inputs,
            delays=delays,
            rng=rng,
        )

        # wires: one per channel; receivers are the channel's dst FUs
        self.wires: Dict[str, GlobalWire] = {}
        self.env_done_wires: List[str] = []
        for channel in design.plan.channels:
            receivers = [fu for fu in channel.dst_fus if fu != ENV]
            if ENV in channel.dst_fus:
                receivers.append(ENV)
                self.env_done_wires.append(channel.wire_name())
            self.wires[channel.wire_name()] = GlobalWire(
                channel.wire_name(), receivers, strict=strict
            )

        self.controllers: Dict[str, ControllerRuntime] = {}
        for fu, controller in design.controllers.items():
            runtime = ControllerRuntime(
                fu=fu,
                machine=controller.machine,
                kernel=self.kernel,
                datapath=self.datapath,
                wires=self.wires,
            )
            runtime.poke_all = self._poke_all
            self.controllers[fu] = runtime

    def _poke_all(self) -> None:
        for runtime in self.controllers.values():
            runtime.poke()

    # ------------------------------------------------------------------
    def run(self) -> SystemResult:
        with span("sim/system", workload=self.design.cdfg.name):
            return self._run()

    def _run(self) -> SystemResult:
        # pre-enabled (backward) channels start with one pending
        # transition, then the environment raises every "go" wire
        for wire_name, rising in self.design.phases.init_events:
            self.wires[wire_name].emit(self.kernel.now, rising)
        for channel in self.design.plan.channels:
            if channel.src_fu == ENV:
                self.wires[channel.wire_name()].emit(self.kernel.now, rising=True)
        self._poke_all()
        end_time = self.kernel.run(max_events=self.max_events)

        # the environment must have received every "done"
        for wire_name in self.env_done_wires:
            wire = self.wires[wire_name]
            if wire.pending_total(ENV) < 1:
                waiting = tuple(
                    {"node": f"{fu}@{runtime.state}", "missing": [wire_name], "held": []}
                    for fu, runtime in sorted(self.controllers.items())
                )
                raise DeadlockError(
                    f"system quiesced at t={self.kernel.now:.3f} without environment "
                    f"done on {wire_name} (deadlock; controllers at: "
                    + ", ".join(f"{fu}@{rt.state}" for fu, rt in self.controllers.items())
                    + ")",
                    time=self.kernel.now,
                    waiting=waiting,
                    blocked_channels=(wire_name,),
                    recent_events=tuple(self.kernel.recent_labels),
                )

        violations: List[str] = []
        for wire in self.wires.values():
            violations.extend(wire.violations)
        return SystemResult(
            registers=dict(self.datapath.registers),
            end_time=end_time,
            transitions_taken={
                fu: runtime.transitions_taken for fu, runtime in self.controllers.items()
            },
            wire_events={name: wire.events_sent for name, wire in self.wires.items()},
            hazards=list(self.datapath.hazards),
            violations=violations,
            events_processed=self.kernel.events_processed,
            seed=self.seed,
            trace=self.kernel.trace,
            writes=list(self.datapath.writes),
        )


def simulate_system(
    design: DistributedDesign,
    delays: Optional[DelayModel] = None,
    seed: SeedLike = None,
    strict: bool = True,
    max_events: int = 2_000_000,
    trace: Optional[EventTrace] = None,
) -> SystemResult:
    """Instantiate and run a distributed design once."""
    system = ControllerSystem(
        design, delays=delays, seed=seed, strict=strict, max_events=max_events, trace=trace
    )
    return system.run()
