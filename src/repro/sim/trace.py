"""VCD (Value Change Dump) waveform export for system simulations.

Wraps a :class:`~repro.sim.system.ControllerSystem` so that every
global wire transition, local request/acknowledge change and register
update is recorded and can be written as a standard VCD file viewable
in GTKWave & co.  Time is scaled by ``resolution`` (simulation time
unit -> VCD timesteps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TextIO, Tuple

from repro.sim.system import ControllerSystem, SystemResult


@dataclass
class _Change:
    time: float
    identifier: str
    value: str  # '0'/'1' for wires, 'r<float>' for registers


class VcdTracer:
    """Record a system run and dump it as VCD."""

    def __init__(self, system: ControllerSystem, resolution: float = 100.0):
        self.system = system
        self.resolution = resolution
        self.changes: List[_Change] = []
        self._identifiers: Dict[Tuple[str, str], str] = {}
        self._initial: Dict[Tuple[str, str], str] = {}
        self._next_code = 33  # '!' onwards, printable VCD id chars
        self._instrument()

    # ------------------------------------------------------------------
    def _identifier(self, scope: str, name: str) -> str:
        key = (scope, name)
        if key not in self._identifiers:
            code = ""
            value = self._next_code
            self._next_code += 1
            while True:
                code = chr(33 + value % 94) + code
                value //= 94
                if value == 0:
                    break
            self._identifiers[key] = code
        return self._identifiers[key]

    def _record(self, scope: str, name: str, value: str) -> None:
        self.changes.append(
            _Change(self.system.kernel.now, self._identifier(scope, name), value)
        )

    def _set_initial(self, scope: str, name: str, value: str) -> None:
        self._identifier(scope, name)
        self._initial[(scope, name)] = value

    def _instrument(self) -> None:
        # global wires: wrap emit
        for wire in self.system.wires.values():
            self._wrap_wire(wire)
            self._set_initial("wires", wire.name, "0")
        # registers: wrap the datapath's register dict writes via latch
        datapath = self.system.datapath
        original_request = datapath.request

        def traced_request(action, on_complete):
            if action[0] == "latch":
                register = action[1]

                def complete():
                    on_complete()
                    self._record("registers", register, f"r{datapath.registers[register]}")

                original_request(action, complete)
                return
            original_request(action, on_complete)

        datapath.request = traced_request
        for register, value in datapath.registers.items():
            self._set_initial("registers", register, f"r{value}")
        # controller states
        for runtime in self.system.controllers.values():
            self._wrap_controller(runtime)
            self._set_initial("states", runtime.fu, f"s{runtime.state}")

    def _wrap_wire(self, wire) -> None:
        original_emit = wire.emit
        level = {"value": 0}

        def emit(now, rising):
            level["value"] = 1 if rising else 0
            self._record("wires", wire.name, str(level["value"]))
            original_emit(now, rising)

        wire.emit = emit

    def _wrap_controller(self, runtime) -> None:
        original_fire = runtime._fire

        def fire(transition):
            before = runtime.state
            original_fire(transition)
            if runtime.state != before:
                self._record("states", runtime.fu, f"s{runtime.state}")

        runtime._fire = fire

    # ------------------------------------------------------------------
    def run(self) -> SystemResult:
        return self.system.run()

    @staticmethod
    def _change_line(value: str, identifier: str) -> str:
        if value in ("0", "1"):
            return f"{value}{identifier}\n"
        return f"{value.replace(' ', '_')} {identifier}\n"

    def write(self, stream: TextIO, timescale: str = "1ns") -> None:
        """Dump the recorded changes as VCD.

        Controller states are declared as ``$var string`` (the GTKWave
        extension for symbolic values; the dumped form is ``s<state>``);
        registers are ``$var real``.  An initial-value ``$dumpvars``
        block at ``#0`` covers every declared variable — wires,
        registers and states — so viewers never show an undefined
        prefix.
        """
        stream.write("$date repro asynchronous distributed control $end\n")
        stream.write(f"$timescale {timescale} $end\n")
        scopes: Dict[str, List[Tuple[str, str]]] = {}
        for (scope, name), identifier in self._identifiers.items():
            scopes.setdefault(scope, []).append((name, identifier))
        for scope, entries in sorted(scopes.items()):
            stream.write(f"$scope module {scope} $end\n")
            for name, identifier in sorted(entries):
                sanitized = name.replace(" ", "_")
                if scope == "wires":
                    stream.write(f"$var wire 1 {identifier} {sanitized} $end\n")
                elif scope == "states":
                    stream.write(f"$var string 1 {identifier} {sanitized} $end\n")
                else:
                    stream.write(f"$var real 64 {identifier} {sanitized} $end\n")
            stream.write("$upscope $end\n")
        stream.write("$enddefinitions $end\n")

        stream.write("#0\n$dumpvars\n")
        for (scope, name) in sorted(self._initial):
            value = self._initial[(scope, name)]
            stream.write(self._change_line(value, self._identifiers[(scope, name)]))
        stream.write("$end\n")

        current_time: int = 0
        for change in sorted(self.changes, key=lambda c: c.time):
            step = int(round(change.time * self.resolution))
            if step != current_time:
                stream.write(f"#{step}\n")
                current_time = step
            stream.write(self._change_line(change.value, change.identifier))


def trace_to_vcd(system: ControllerSystem, path: str) -> SystemResult:
    """Run ``system`` and write its waveform to ``path``; returns the
    simulation result."""
    tracer = VcdTracer(system)
    result = tracer.run()
    with open(path, "w", encoding="utf-8") as stream:
        tracer.write(stream)
    return result
