"""Event-driven execution substrates.

Two levels of simulation back the correctness story:

- :mod:`repro.sim.token_sim` executes a CDFG directly: nodes fire when
  their constraint arcs deliver tokens, registers are read at operation
  start and written at completion.  It checks end-to-end semantics and
  the single-transition channel-safety property at the graph level.
- :mod:`repro.sim.system` executes the *extracted burst-mode
  controllers* against a handshaking datapath model (registers, muxes,
  functional units), checking the same semantics after extraction and
  after each local transform.

Both share the :mod:`repro.sim.kernel` event queue.  A third substrate,
:mod:`repro.sim.batched`, compiles a token simulation into a
straight-line max-plus program and evaluates whole batches of delay
samples at once (bit-identical to the scalar kernel) for Monte-Carlo
campaigns.
"""

from repro.sim.kernel import EventKernel
from repro.sim.seeding import NOMINAL, SeedLike, node_stream_seed
from repro.sim.token_sim import TokenSimulator, TokenSimResult, simulate_tokens

__all__ = [
    "EventKernel",
    "NOMINAL",
    "SeedLike",
    "node_stream_seed",
    "TokenSimulator",
    "TokenSimResult",
    "simulate_tokens",
]
