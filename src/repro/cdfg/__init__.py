"""Control-Data Flow Graph (CDFG) intermediate representation.

The CDFG is the input of the synthesis flow (paper Section 2.1): a
scheduled, resource-bound graph whose *constraint arcs* make all firing
conditions explicit.  Node kinds are START/END, LOOP/ENDLOOP, IF/ENDIF
and operation nodes labelled with RTL statements; arc roles are control
flow, per-FU scheduling, data dependency and register allocation.

Most users build a CDFG with :class:`repro.cdfg.builder.CdfgBuilder`
(which derives all constraint arcs from a structured program) rather
than adding arcs by hand.
"""

from repro.cdfg.arc import Arc, ArcRole
from repro.cdfg.blocks import Block, block_tree
from repro.cdfg.builder import CdfgBuilder, FunctionalUnit
from repro.cdfg.graph import Cdfg
from repro.cdfg.kinds import NodeKind
from repro.cdfg.node import Node
from repro.cdfg.validate import check_well_formed

__all__ = [
    "Arc",
    "ArcRole",
    "Block",
    "block_tree",
    "Cdfg",
    "CdfgBuilder",
    "FunctionalUnit",
    "Node",
    "NodeKind",
    "check_well_formed",
]
