"""Block structure of a CDFG.

The paper restricts CDFGs to be *block-structured*: the nodes between
IF/ENDIF and LOOP/ENDLOOP form a block, and data/control/register arcs
never cross a block boundary except at the block root.  This module
reconstructs the block tree from a graph's block-membership map and
provides the queries transforms need (matching close node, member
sets, loop detection).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cdfg.graph import Cdfg
from repro.cdfg.kinds import NodeKind
from repro.errors import BlockStructureError


@dataclass
class Block:
    """A block of the CDFG.

    The synthetic *top-level block* has ``root is None`` and spans the
    region between START and END.
    """

    root: Optional[str]
    close: Optional[str]
    #: names of nodes whose innermost block is this one (excludes root/close)
    members: List[str] = field(default_factory=list)
    children: List["Block"] = field(default_factory=list)
    parent: Optional["Block"] = None

    @property
    def is_loop(self) -> bool:
        return self.root is not None and self.root_kind is NodeKind.LOOP

    @property
    def is_top(self) -> bool:
        return self.root is None

    root_kind: Optional[NodeKind] = None

    def all_members(self) -> List[str]:
        """Members of this block and of every nested block (plus nested
        roots/closes)."""
        names = list(self.members)
        for child in self.children:
            if child.root is not None:
                names.append(child.root)
            if child.close is not None:
                names.append(child.close)
            names.extend(child.all_members())
        return names

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Block root={self.root!r} members={len(self.members)} children={len(self.children)}>"


def matching_close(cdfg: Cdfg, root: str) -> str:
    """Find the ENDLOOP/ENDIF node matching a LOOP/IF root.

    The close node is the unique block-close node whose innermost block
    is ``root``... except that close nodes live in the *enclosing*
    block in our membership map.  We instead locate it structurally:
    the close node of a LOOP is the source of the iterate arc into it;
    the close node of an IF is the unique ENDIF successor-of-members.
    """
    node = cdfg.node(root)
    if node.kind is NodeKind.LOOP:
        for arc in cdfg.arcs_to(root):
            if cdfg.node(arc.src).kind is NodeKind.ENDLOOP:
                return arc.src
        raise BlockStructureError(f"LOOP {root!r} has no ENDLOOP iterate arc")
    if node.kind is NodeKind.IF:
        # the builder always adds a direct IF -> ENDIF control arc (used
        # for branch-skip semantics), so the match is a direct successor
        for arc in cdfg.arcs_from(root):
            if cdfg.node(arc.dst).kind is NodeKind.ENDIF:
                return arc.dst
        raise BlockStructureError(f"IF {root!r} has no matching ENDIF")
    raise BlockStructureError(f"{root!r} is not a block root")


def block_tree(cdfg: Cdfg) -> Block:
    """Build the block tree of ``cdfg`` from its membership map."""
    top = Block(root=None, close=None, root_kind=None)
    blocks: Dict[Optional[str], Block] = {None: top}

    # create a Block per root node
    for node in cdfg.nodes():
        if node.kind.is_block_open:
            blocks[node.name] = Block(
                root=node.name,
                close=matching_close(cdfg, node.name),
                root_kind=node.kind,
            )

    # attach members and children
    for name in cdfg.node_names():
        kind = cdfg.node(name).kind
        enclosing = cdfg.block_of(name)
        if enclosing not in blocks:
            raise BlockStructureError(f"node {name!r} claims unknown block {enclosing!r}")
        if kind.is_block_open:
            child = blocks[name]
            parent = blocks[enclosing]
            child.parent = parent
            parent.children.append(child)
        elif kind.is_block_close:
            continue  # close nodes are represented via Block.close
        elif kind in (NodeKind.START, NodeKind.END):
            continue
        else:
            blocks[enclosing].members.append(name)
    return top


def enclosing_loops(cdfg: Cdfg, name: str) -> List[str]:
    """Roots of all loops enclosing ``name``, innermost first."""
    loops: List[str] = []
    current = cdfg.block_of(name)
    while current is not None:
        if cdfg.node(current).kind is NodeKind.LOOP:
            loops.append(current)
        current = cdfg.block_of(current)
    return loops


def innermost_loop(cdfg: Cdfg, name: str) -> Optional[str]:
    """Root of the innermost loop containing ``name``, or None."""
    loops = enclosing_loops(cdfg, name)
    return loops[0] if loops else None
