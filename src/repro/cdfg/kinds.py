"""Node kinds of the CDFG (paper Section 2.1)."""

from __future__ import annotations

import enum


class NodeKind(enum.Enum):
    """Kind of a CDFG node.

    ``OPERATION`` nodes carry one or more RTL statements (more than one
    only after GT4 merges an assignment into an operation node).  The
    structural kinds delimit blocks and the overall graph:

    - ``START``/``END``: unique entry/exit, bound to no functional unit;
    - ``LOOP``/``ENDLOOP``: a while-loop block; the LOOP node examines
      the loop variable and either enters the body or exits;
    - ``IF``/``ENDIF``: a conditional block; the IF node examines a
      condition register and enables one of two branches.
    """

    START = "start"
    END = "end"
    LOOP = "loop"
    ENDLOOP = "endloop"
    IF = "if"
    ENDIF = "endif"
    OPERATION = "operation"

    @property
    def is_block_open(self) -> bool:
        """True for nodes that open a block (LOOP, IF)."""
        return self in (NodeKind.LOOP, NodeKind.IF)

    @property
    def is_block_close(self) -> bool:
        """True for nodes that close a block (ENDLOOP, ENDIF)."""
        return self in (NodeKind.ENDLOOP, NodeKind.ENDIF)

    @property
    def is_structural(self) -> bool:
        """True for every kind except OPERATION."""
        return self is not NodeKind.OPERATION

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
