"""Construction of scheduled, resource-bound CDFGs from programs.

:class:`CdfgBuilder` accepts a *structured program*: a sequence of RTL
statements (each bound to a functional unit) interleaved with LOOP and
IF blocks.  Program order defines both the per-FU schedule and the
read/write ordering used to derive constraint arcs.  ``build()`` then
derives, per the paper's Section 2.1 rules:

- **control arcs** from block roots (START/LOOP/IF) to the first
  scheduled item of each functional unit inside the block, and from the
  last item of each functional unit to the block close (ENDLOOP/ENDIF),
  plus the ENDLOOP->LOOP iterate arc and IF->ENDIF decision arc;
- **scheduling arcs** chaining the items of each functional unit inside
  a block (nested blocks occupy one slot in the chain and are entered
  at their root / left at their exit, so no arc ever crosses a block
  boundary);
- **data-dependency arcs** from the last writer of each register read;
  reads of values produced outside the block are routed to the block
  root;
- **register-allocation arcs** from every reader of a register's old
  value to the next write of that register.

Cross-iteration ordering is *not* represented by arcs: the unoptimized
design synchronizes every functional unit at ENDLOOP, which makes such
constraints unnecessary.  GT1 adds explicit backward arcs when it
removes that synchronization.

Example
-------
>>> builder = CdfgBuilder("demo")
>>> builder.op("T := A + B", fu="ALU")
'T := A + B'
>>> with builder.loop("C", fu="ALU"):
...     _ = builder.op("T := T + A", fu="ALU")
...     _ = builder.op("C := T < B", fu="ALU")
>>> cdfg = builder.build(initial={"A": 1, "B": 10, "C": 1})
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.cdfg.arc import (
    Arc,
    ArcTag,
    control_tag,
    data_tag,
    register_tag,
    scheduling_tag,
)
from repro.cdfg.graph import Cdfg
from repro.cdfg.kinds import NodeKind
from repro.cdfg.node import Node
from repro.errors import BlockStructureError, CdfgError
from repro.rtl.ast import RtlStatement
from repro.rtl.parser import parse_statement


@dataclass(frozen=True)
class FunctionalUnit:
    """A datapath resource: one controller is synthesized per unit."""

    name: str
    description: str = ""


@dataclass
class _OpItem:
    name: str
    statement: RtlStatement
    fu: str


@dataclass
class _BlockDef:
    kind: NodeKind  # LOOP or IF
    root_name: str
    close_name: str
    condition: str
    fu: str
    #: loop body, or the then-branch for IF blocks
    items: List["_Item"] = field(default_factory=list)
    else_items: List["_Item"] = field(default_factory=list)

    def branches(self) -> List[Tuple[Optional[str], List["_Item"]]]:
        if self.kind is NodeKind.LOOP:
            return [(None, self.items)]
        return [("then", self.items), ("else", self.else_items)]


_Item = Union[_OpItem, _BlockDef]


def _item_entry(item: _Item) -> str:
    return item.name if isinstance(item, _OpItem) else item.root_name


def _item_exit(item: _Item) -> str:
    """The node whose firing signals that the item has completed.

    For a LOOP block this is the LOOP node itself: the loop is complete
    when the LOOP node takes its false (exit) branch.  For an IF block
    completion is signalled by the ENDIF node.
    """
    if isinstance(item, _OpItem):
        return item.name
    if item.kind is NodeKind.LOOP:
        return item.root_name
    return item.close_name


def _item_fus(item: _Item) -> Set[str]:
    """All functional units with work anywhere inside an item."""
    if isinstance(item, _OpItem):
        return {item.fu}
    fus = {item.fu}
    for __, items in item.branches():
        for child in items:
            fus |= _item_fus(child)
    return fus


class CdfgBuilder:
    """Incrementally describe a structured program, then :meth:`build`.

    Functional units never need to be declared up front: ``op``,
    ``loop`` and ``if_block`` all auto-register the unit they are bound
    to on first use, exactly like :meth:`functional_unit` with an empty
    description.  Call :meth:`functional_unit` explicitly only to
    attach a description or to pin the declaration order of units that
    first appear inside nested blocks.
    """

    def __init__(self, name: str = "cdfg"):
        self.name = name
        self._fus: Dict[str, FunctionalUnit] = {}
        self._inputs: Dict[str, float] = {}
        self._top: List[_Item] = []
        #: stack of (block, branch-items-list) currently open
        self._open: List[List[_Item]] = [self._top]
        self._names: Set[str] = set()
        self._loop_count = 0
        self._if_count = 0

    # ------------------------------------------------------------------
    # program description
    # ------------------------------------------------------------------
    def functional_unit(self, name: str, description: str = "") -> FunctionalUnit:
        """Declare a functional unit (optional; ``op`` auto-declares)."""
        unit = FunctionalUnit(name, description)
        self._fus[name] = unit
        return unit

    def input(self, name: str, value: float) -> None:
        """Declare a read-only input register with its value."""
        self._inputs[name] = value

    def _fresh_name(self, base: str) -> str:
        name = base
        suffix = 2
        while name in self._names:
            name = f"{base} #{suffix}"
            suffix += 1
        self._names.add(name)
        return name

    def op(self, text: str, fu: str, name: Optional[str] = None) -> str:
        """Add an RTL statement bound to functional unit ``fu``.

        Returns the node name (defaults to the statement text).
        """
        statement = parse_statement(text)
        if fu not in self._fus:
            self.functional_unit(fu)
        node_name = self._fresh_name(name or str(statement))
        self._open[-1].append(_OpItem(node_name, statement, fu))
        return node_name

    @contextmanager
    def loop(self, condition: str, fu: str, name: Optional[str] = None) -> Iterator[str]:
        """Open a LOOP/ENDLOOP block; yields the LOOP node name.

        ``condition`` is the register the LOOP node examines;
        ``fu`` is the unit LOOP and ENDLOOP are bound to.
        """
        if fu not in self._fus:
            self.functional_unit(fu)
        self._loop_count += 1
        base = name or (f"LOOP" if self._loop_count == 1 else f"LOOP{self._loop_count}")
        root = self._fresh_name(base)
        close = self._fresh_name(base.replace("LOOP", "ENDLOOP", 1) if "LOOP" in base else f"END{base}")
        block = _BlockDef(NodeKind.LOOP, root, close, condition, fu)
        self._open[-1].append(block)
        self._open.append(block.items)
        try:
            yield root
        finally:
            popped = self._open.pop()
            if popped is not block.items:
                raise BlockStructureError(f"mismatched block nesting closing {root!r}")

    @contextmanager
    def if_block(self, condition: str, fu: str, name: Optional[str] = None) -> Iterator["_IfHandle"]:
        """Open an IF/ENDIF block; the handle switches to the else branch.

        >>> with builder.if_block("C", fu="ALU") as branch:   # doctest: +SKIP
        ...     builder.op("X := X + 1", fu="ALU")
        ...     with branch.otherwise():
        ...         builder.op("X := X - 1", fu="ALU")
        """
        if fu not in self._fus:
            self.functional_unit(fu)
        self._if_count += 1
        base = name or (f"IF" if self._if_count == 1 else f"IF{self._if_count}")
        root = self._fresh_name(base)
        close = self._fresh_name(base.replace("IF", "ENDIF", 1) if "IF" in base else f"END{base}")
        block = _BlockDef(NodeKind.IF, root, close, condition, fu)
        self._open[-1].append(block)
        self._open.append(block.items)
        handle = _IfHandle(self, block)
        try:
            yield handle
        finally:
            popped = self._open.pop()
            if popped is not block.items and popped is not block.else_items:
                raise BlockStructureError(f"mismatched block nesting closing {root!r}")

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------
    def build(self, initial: Optional[Dict[str, float]] = None) -> Cdfg:
        """Derive all constraint arcs and return the finished CDFG."""
        if len(self._open) != 1:
            raise BlockStructureError("build() called with an open block")
        cdfg = Cdfg(self.name)
        cdfg.inputs = dict(self._inputs)
        cdfg.initial_registers = dict(initial or {})

        start = cdfg.add_node(Node("START", NodeKind.START))
        self._add_items(cdfg, self._top, block=None, branch=None)
        end = cdfg.add_node(Node("END", NodeKind.END))

        self._derive_block(cdfg, root=None, close=None, items=self._top, branch=None)
        self._attach_start_end(cdfg, start.name, end.name)
        return cdfg

    # -- node creation --------------------------------------------------
    def _add_items(
        self,
        cdfg: Cdfg,
        items: Sequence[_Item],
        block: Optional[str],
        branch: Optional[str],
    ) -> None:
        for item in items:
            if isinstance(item, _OpItem):
                cdfg.add_node(
                    Node(item.name, NodeKind.OPERATION, fu=item.fu, statements=(item.statement,)),
                    block=block,
                    branch=branch,
                )
            else:
                cdfg.add_node(
                    Node(item.root_name, item.kind, fu=item.fu, condition=item.condition),
                    block=block,
                    branch=branch,
                )
                close_kind = NodeKind.ENDLOOP if item.kind is NodeKind.LOOP else NodeKind.ENDIF
                for child_branch, child_items in item.branches():
                    self._add_items(cdfg, child_items, block=item.root_name, branch=child_branch)
                cdfg.add_node(
                    Node(item.close_name, close_kind, fu=item.fu),
                    block=block,
                    branch=branch,
                )

    # -- reads/writes summaries -----------------------------------------
    def _block_reads_writes(self, block: _BlockDef) -> Tuple[Set[str], Set[str]]:
        """Registers a block reads-before-writing / writes, seen from outside."""
        reads: Set[str] = {block.condition}
        writes: Set[str] = set()
        for __, items in block.branches():
            branch_written: Set[str] = set()
            for item in items:
                item_reads, item_writes = self._item_reads_writes(item)
                reads |= item_reads - branch_written
                branch_written |= item_writes
            writes |= branch_written
        return reads, writes

    def _item_reads_writes(self, item: _Item) -> Tuple[Set[str], Set[str]]:
        if isinstance(item, _OpItem):
            return set(item.statement.reads), {item.statement.dest}
        return self._block_reads_writes(item)

    # -- data / register-allocation arcs ---------------------------------
    def _derive_data_arcs(
        self,
        cdfg: Cdfg,
        root: Optional[str],
        items: Sequence[_Item],
    ) -> None:
        """Data and register-allocation arcs among the items of one level.

        ``root`` is the block root node name (None for top level, where
        reads of entry values come from initial register contents and
        need no arc).  Within a block, entry values are synchronized by
        the root, so a read with no in-level writer needs no arc either
        — the root control arc covers it.
        """
        last_write: Dict[str, Tuple[str, str]] = {}  # reg -> (writer exit node, writer entry node)
        readers: Dict[str, List[str]] = {}  # reg -> reader nodes since last write

        def record_read(reg: str, reader_node: str) -> None:
            if reg in last_write:
                writer_exit = last_write[reg][0]
                if writer_exit != reader_node:
                    cdfg.add_arc(Arc(writer_exit, reader_node, frozenset({data_tag(reg)})))
            readers.setdefault(reg, []).append(reader_node)

        def record_write(reg: str, writer_entry: str, writer_exit: str) -> None:
            prior_readers = [r for r in readers.get(reg, []) if r != writer_entry]
            for reader in prior_readers:
                cdfg.add_arc(Arc(reader, writer_entry, frozenset({register_tag(reg)})))
            if not prior_readers and reg in last_write:
                # write-after-write with no intervening reader: the
                # overwrite must still happen after the first write
                previous_exit = last_write[reg][0]
                if previous_exit != writer_entry:
                    cdfg.add_arc(
                        Arc(previous_exit, writer_entry, frozenset({register_tag(reg)}))
                    )
            readers[reg] = []
            last_write[reg] = (writer_exit, writer_entry)

        if root is not None:
            root_node = cdfg.node(root)
            if root_node.condition is not None:
                # the root examines the loop/if condition at block entry
                readers.setdefault(root_node.condition, []).append(root)

        for item in items:
            if isinstance(item, _OpItem):
                for reg in sorted(item.statement.reads):
                    record_read(reg, item.name)
                record_write(item.statement.dest, item.name, item.name)
            else:
                block_reads, block_writes = self._block_reads_writes(item)
                for reg in sorted(block_reads):
                    record_read(reg, item.root_name)
                exit_node = _item_exit(item)
                for reg in sorted(block_writes):
                    record_write(reg, item.root_name, exit_node)

    # -- control / scheduling arcs ----------------------------------------
    def _derive_chains(
        self,
        cdfg: Cdfg,
        root: Optional[str],
        close: Optional[str],
        items: Sequence[_Item],
    ) -> None:
        """Per-FU chains, root entry arcs and close sync arcs for one level."""
        fus: List[str] = []
        for item in items:
            for fu in sorted(_item_fus(item)):
                if fu not in fus:
                    fus.append(fu)
        root_fu = cdfg.fu_of(root) if root is not None else None
        close_fu = cdfg.fu_of(close) if close is not None else None

        for fu in fus:
            seq = [item for item in items if fu in _item_fus(item)]
            if not seq:
                continue
            # root -> first item of this FU
            if root is not None:
                tags = {control_tag()}
                if root_fu == fu and cdfg.fu_of(_item_entry(seq[0])) == fu:
                    tags.add(scheduling_tag())
                cdfg.add_arc(Arc(root, _item_entry(seq[0]), frozenset(tags)))
            # chain consecutive items
            for left, right in zip(seq, seq[1:]):
                src = _item_exit(left)
                dst = _item_entry(right)
                if src == dst:
                    continue
                if cdfg.fu_of(src) == fu and cdfg.fu_of(dst) == fu:
                    tags = {scheduling_tag()}
                else:
                    tags = {control_tag()}
                cdfg.add_arc(Arc(src, dst, frozenset(tags)))
            # last item of this FU -> close node
            if close is not None:
                src = _item_exit(seq[-1])
                if src != close:
                    if cdfg.fu_of(src) == close_fu:
                        tags = {scheduling_tag()}
                    else:
                        tags = {control_tag()}
                    cdfg.add_arc(Arc(src, close, frozenset(tags)))
        # a block root with no items still synchronizes with its close
        if root is not None and close is not None and not items:
            cdfg.add_arc(Arc(root, close, frozenset({control_tag()})))

    # -- recursion over blocks --------------------------------------------
    def _derive_block(
        self,
        cdfg: Cdfg,
        root: Optional[str],
        close: Optional[str],
        items: Sequence[_Item],
        branch: Optional[str],
    ) -> None:
        self._derive_data_arcs(cdfg, root, items)
        self._derive_chains(cdfg, root, close, items)
        for item in items:
            if isinstance(item, _BlockDef):
                for child_branch, child_items in item.branches():
                    self._derive_block(
                        cdfg, item.root_name, item.close_name, child_items, child_branch
                    )
                if item.kind is NodeKind.LOOP:
                    # iterate arc: ENDLOOP -> LOOP
                    cdfg.add_arc(
                        Arc(item.close_name, item.root_name, frozenset({control_tag()}))
                    )
                else:
                    # decision arc: IF -> ENDIF (fires on every execution,
                    # carries the taken-branch information)
                    cdfg.add_arc(
                        Arc(item.root_name, item.close_name, frozenset({control_tag()}))
                    )

    # -- START/END attachment ----------------------------------------------
    def _attach_start_end(self, cdfg: Cdfg, start: str, end: str) -> None:
        """Connect START to top-level sources and top-level sinks to END."""
        for item in self._top:
            entry = _item_entry(item)
            incoming = [
                arc
                for arc in cdfg.arcs_to(entry)
                if cdfg.block_of(arc.src) is None and not cdfg.is_iterate_arc(arc)
            ]
            if not incoming:
                cdfg.add_arc(Arc(start, entry, frozenset({control_tag()})))
        for item in self._top:
            exit_node = _item_exit(item)
            outgoing = [
                arc
                for arc in cdfg.arcs_from(exit_node)
                if cdfg.block_of(arc.dst) is None and not cdfg.is_iterate_arc(arc)
            ]
            if not outgoing:
                cdfg.add_arc(Arc(exit_node, end, frozenset({control_tag()})))
        if not self._top:
            cdfg.add_arc(Arc(start, end, frozenset({control_tag()})))


class _IfHandle:
    """Handle yielded by :meth:`CdfgBuilder.if_block` to open the else branch."""

    def __init__(self, builder: CdfgBuilder, block: _BlockDef):
        self._builder = builder
        self._block = block

    @contextmanager
    def otherwise(self) -> Iterator[None]:
        """Switch subsequent statements to the else branch."""
        top = self._builder._open.pop()
        if top is not self._block.items:
            self._builder._open.append(top)
            raise BlockStructureError("otherwise() must be called directly inside its if_block")
        self._builder._open.append(self._block.else_items)
        try:
            yield
        finally:
            popped = self._builder._open.pop()
            if popped is not self._block.else_items:
                raise BlockStructureError("mismatched block nesting in else branch")
            self._builder._open.append(self._block.items)
