"""Constraint arcs of the CDFG.

Paper Section 2.1 distinguishes four arc roles: control flow,
scheduling within a functional unit, data dependency and register
allocation.  A single arc may carry several roles — the paper's own
example is ``(M1 := U * X1, U := U - M1)``, "a register allocation
constraint arc with respect to U, and ... a data dependency arc with
respect to M1".  We therefore attach a *set* of :class:`ArcTag` (role +
register) to each arc.

GT1 additionally introduces *backward arcs*, which are ignored during
the first execution of a loop body (pre-enabled constraints).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import FrozenSet, Optional


class ArcRole(enum.Enum):
    """Why a constraint arc exists."""

    #: Control arcs from/to START, END, LOOP, ENDLOOP, IF, ENDIF.
    CONTROL = "control"
    #: Scheduling arcs ordering the operations bound to one FU.
    SCHEDULING = "scheduling"
    #: Producer -> consumer data dependencies.
    DATA = "data"
    #: Anti-dependencies protecting register reuse.
    REGISTER = "register"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ArcTag:
    """One role of an arc, with the register it concerns (if any).

    ``register`` is the data value carried (DATA), the protected
    register (REGISTER), or ``None`` for CONTROL/SCHEDULING.
    """

    role: ArcRole
    register: Optional[str] = None

    def __str__(self) -> str:
        if self.register is None:
            return self.role.value
        return f"{self.role.value}[{self.register}]"


@dataclass(frozen=True)
class Arc:
    """A constraint arc ``src -> dst`` with its set of role tags.

    Attributes
    ----------
    src, dst:
        Node names.
    tags:
        Non-empty set of :class:`ArcTag`.
    backward:
        True for GT1 backward arcs, which are pre-enabled for the first
        iteration of their loop.
    label:
        Optional label matching the paper's figure numbering ("arc 5"
        etc.), used by tests and traces.
    """

    src: str
    dst: str
    tags: FrozenSet[ArcTag] = field(default_factory=frozenset)
    backward: bool = False
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.tags:
            raise ValueError(f"arc {self.src!r} -> {self.dst!r} needs >= 1 tag")
        if self.src == self.dst:
            raise ValueError(f"self-loop arc on {self.src!r}")

    @property
    def roles(self) -> FrozenSet[ArcRole]:
        return frozenset(tag.role for tag in self.tags)

    def has_role(self, role: ArcRole) -> bool:
        return any(tag.role is role for tag in self.tags)

    @property
    def registers(self) -> FrozenSet[str]:
        """Registers named by any tag of the arc."""
        return frozenset(tag.register for tag in self.tags if tag.register is not None)

    @property
    def key(self) -> tuple:
        """Identity of the arc inside a graph: its endpoints."""
        return (self.src, self.dst)

    def with_tags(self, tags: FrozenSet[ArcTag]) -> "Arc":
        """Return a copy of the arc with a different tag set."""
        return Arc(self.src, self.dst, tags, backward=self.backward, label=self.label)

    def merged_with(self, other: "Arc") -> "Arc":
        """Union the tags of two parallel arcs (same endpoints).

        A merged arc is backward only if *both* constituents are
        backward: a non-backward role must still hold during the first
        iteration.
        """
        if other.key != self.key:
            raise ValueError("can only merge arcs with identical endpoints")
        return Arc(
            self.src,
            self.dst,
            self.tags | other.tags,
            backward=self.backward and other.backward,
            label=self.label or other.label,
        )

    def __str__(self) -> str:
        tags = ", ".join(sorted(str(tag) for tag in self.tags))
        marker = " (backward)" if self.backward else ""
        return f"{self.src} -> {self.dst} [{tags}]{marker}"


def control_tag() -> ArcTag:
    return ArcTag(ArcRole.CONTROL)


def scheduling_tag() -> ArcTag:
    return ArcTag(ArcRole.SCHEDULING)


def data_tag(register: str) -> ArcTag:
    return ArcTag(ArcRole.DATA, register)


def register_tag(register: str) -> ArcTag:
    return ArcTag(ArcRole.REGISTER, register)
