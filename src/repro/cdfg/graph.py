"""The CDFG container.

A :class:`Cdfg` stores nodes, constraint arcs, per-functional-unit
schedules and block membership.  It offers the structural queries that
the transformations (:mod:`repro.transforms`) and the extraction step
(:mod:`repro.afsm.extract`) need: arc lookup, reachability with
exclusions, schedule navigation and node replacement.

Parallel arcs (same endpoints) are merged into a single
:class:`~repro.cdfg.arc.Arc` whose tag set is the union — this mirrors
the paper, where one drawn arc can be "a register allocation constraint
... and a data dependency arc" at the same time.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.cdfg.arc import Arc, ArcRole
from repro.cdfg.kinds import NodeKind
from repro.cdfg.node import Node
from repro.errors import CdfgError

#: Pseudo functional-unit name used for the environment (START/END).
ENV = "ENV"


class Cdfg:
    """A scheduled, resource-bound control-data flow graph."""

    def __init__(self, name: str = "cdfg"):
        self.name = name
        #: monotone mutation counter; every structural change bumps it,
        #: which also drops the memoized analyses keyed on this graph
        self._generation = 0
        self._analysis_cache: Dict[object, object] = {}
        self._nodes: Dict[str, Node] = {}
        self._arcs: Dict[Tuple[str, str], Arc] = {}
        self._succ: Dict[str, Dict[str, Arc]] = {}
        self._pred: Dict[str, Dict[str, Arc]] = {}
        #: node name -> innermost enclosing block root name (None = top level)
        self._block_of: Dict[str, Optional[str]] = {}
        #: node name -> branch within an IF block ("then"/"else"), else None
        self._branch_of: Dict[str, Optional[str]] = {}
        #: FU name -> node names bound to it, in schedule (program) order
        self._fu_schedule: Dict[str, List[str]] = {}
        #: values of read-only input registers (problem parameters)
        self.inputs: Dict[str, float] = {}
        #: initial values of writable registers (simulation start state)
        self.initial_registers: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # analysis caching
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Number of structural mutations this graph has seen.

        Analyses memoized against the graph (reachability closures,
        anchored longest-path tables, ...) are stored in
        :meth:`analysis_cache`, which is cleared whenever the
        generation advances — a cached result is therefore always
        consistent with the current structure.
        """
        return self._generation

    def invalidate_analyses(self) -> None:
        """Advance the generation and drop every memoized analysis.

        Called automatically by all mutating methods; exposed for code
        that changes graph semantics through a side channel.
        """
        self._generation += 1
        if self._analysis_cache:
            self._analysis_cache.clear()

    def analysis_cache(self) -> Dict[object, object]:
        """Per-graph memo table, cleared on every structural mutation.

        Keys are chosen by the analyses themselves (tuples starting
        with the analysis name).  Entries must depend only on graph
        structure plus whatever the key encodes.
        """
        return self._analysis_cache

    # ------------------------------------------------------------------
    # nodes
    # ------------------------------------------------------------------
    def add_node(
        self,
        node: Node,
        block: Optional[str] = None,
        branch: Optional[str] = None,
    ) -> Node:
        """Add ``node``; ``block`` is the enclosing block root name.

        ``branch`` is ``"then"``/``"else"`` when the enclosing block is
        an IF block, otherwise ``None``.
        """
        if node.name in self._nodes:
            raise CdfgError(f"duplicate node {node.name!r}")
        if block is not None and block not in self._nodes:
            raise CdfgError(f"unknown block root {block!r} for node {node.name!r}")
        self.invalidate_analyses()
        self._nodes[node.name] = node
        self._succ[node.name] = {}
        self._pred[node.name] = {}
        self._block_of[node.name] = block
        self._branch_of[node.name] = branch
        if node.fu is not None:
            self._fu_schedule.setdefault(node.fu, []).append(node.name)
        return node

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise CdfgError(f"unknown node {name!r}") from None

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def nodes(self) -> Iterator[Node]:
        return iter(self._nodes.values())

    def node_names(self) -> Iterator[str]:
        return iter(self._nodes.keys())

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def operation_nodes(self) -> List[Node]:
        return [node for node in self._nodes.values() if node.is_operation]

    def nodes_of_kind(self, kind: NodeKind) -> List[Node]:
        return [node for node in self._nodes.values() if node.kind is kind]

    @property
    def start(self) -> Node:
        return self._single(NodeKind.START)

    @property
    def end(self) -> Node:
        return self._single(NodeKind.END)

    def _single(self, kind: NodeKind) -> Node:
        found = self.nodes_of_kind(kind)
        if len(found) != 1:
            raise CdfgError(f"expected exactly one {kind} node, found {len(found)}")
        return found[0]

    # ------------------------------------------------------------------
    # blocks and schedules
    # ------------------------------------------------------------------
    def block_of(self, name: str) -> Optional[str]:
        """Innermost block root containing ``name`` (None = top level)."""
        self.node(name)
        return self._block_of[name]

    def set_block_of(self, name: str, block: Optional[str]) -> None:
        self.node(name)
        self.invalidate_analyses()
        self._block_of[name] = block

    def branch_of(self, name: str) -> Optional[str]:
        """Branch ("then"/"else") of a node directly inside an IF block."""
        self.node(name)
        return self._branch_of.get(name)

    def block_members(self, root: str) -> List[str]:
        """Names of the nodes whose innermost block is ``root``.

        The root and close nodes themselves are *not* members (they
        belong to the enclosing block), matching the paper's convention
        that arcs may enter/exit a block only at the root.
        """
        self.node(root)
        return [name for name, blk in self._block_of.items() if blk == root]

    def functional_units(self) -> List[str]:
        return list(self._fu_schedule.keys())

    def fu_schedule(self, fu: str) -> List[str]:
        """Node names bound to ``fu`` in schedule order (copy)."""
        return list(self._fu_schedule.get(fu, []))

    def fu_of(self, name: str) -> str:
        """The controller that owns ``name`` (ENV for START/END)."""
        node = self.node(name)
        return node.fu if node.fu is not None else ENV

    def schedule_neighbors(self, name: str) -> Tuple[Optional[str], Optional[str]]:
        """(previous, next) node of ``name`` in its FU schedule."""
        node = self.node(name)
        if node.fu is None:
            return (None, None)
        order = self._fu_schedule[node.fu]
        index = order.index(name)
        prev_name = order[index - 1] if index > 0 else None
        next_name = order[index + 1] if index + 1 < len(order) else None
        return (prev_name, next_name)

    # ------------------------------------------------------------------
    # arcs
    # ------------------------------------------------------------------
    def add_arc(self, arc: Arc) -> Arc:
        """Insert ``arc``, merging tags with an existing parallel arc."""
        for endpoint in (arc.src, arc.dst):
            if endpoint not in self._nodes:
                raise CdfgError(f"arc endpoint {endpoint!r} not in graph")
        existing = self._arcs.get(arc.key)
        if existing is not None:
            arc = existing.merged_with(arc)
        self.invalidate_analyses()
        self._arcs[arc.key] = arc
        self._succ[arc.src][arc.dst] = arc
        self._pred[arc.dst][arc.src] = arc
        return arc

    def remove_arc(self, src: str, dst: str) -> Arc:
        try:
            arc = self._arcs.pop((src, dst))
        except KeyError:
            raise CdfgError(f"no arc {src!r} -> {dst!r}") from None
        self.invalidate_analyses()
        del self._succ[src][dst]
        del self._pred[dst][src]
        return arc

    def has_arc(self, src: str, dst: str) -> bool:
        return (src, dst) in self._arcs

    def arc(self, src: str, dst: str) -> Arc:
        try:
            return self._arcs[(src, dst)]
        except KeyError:
            raise CdfgError(f"no arc {src!r} -> {dst!r}") from None

    def arcs(self) -> List[Arc]:
        return list(self._arcs.values())

    def arcs_from(self, name: str) -> List[Arc]:
        return list(self._succ[name].values())

    def arcs_to(self, name: str) -> List[Arc]:
        return list(self._pred[name].values())

    def successors(self, name: str) -> List[str]:
        return list(self._succ[name].keys())

    def predecessors(self, name: str) -> List[str]:
        return list(self._pred[name].keys())

    def arc_count(self) -> int:
        return len(self._arcs)

    # ------------------------------------------------------------------
    # derived structure
    # ------------------------------------------------------------------
    def is_iterate_arc(self, arc: Arc) -> bool:
        """True for the ENDLOOP -> LOOP back edge of a loop block."""
        return (
            self.node(arc.src).kind is NodeKind.ENDLOOP
            and self.node(arc.dst).kind is NodeKind.LOOP
        )

    def forward_arcs(self) -> List[Arc]:
        """Arcs of the single-iteration DAG.

        Excludes GT1 backward arcs and ENDLOOP->LOOP iterate arcs; the
        remaining arcs must form a DAG (checked by
        :func:`repro.cdfg.validate.check_well_formed`).
        """
        return [
            arc
            for arc in self._arcs.values()
            if not arc.backward and not self.is_iterate_arc(arc)
        ]

    def forward_successors(self, name: str) -> List[str]:
        return [arc.dst for arc in self.arcs_from(name) if not arc.backward and not self.is_iterate_arc(arc)]

    def reachable_from(
        self,
        source: str,
        exclude_arc: Optional[Tuple[str, str]] = None,
        include_backward: bool = False,
    ) -> Set[str]:
        """Nodes reachable from ``source`` along forward arcs.

        ``exclude_arc`` skips one arc — used by GT2's dominated-arc
        test (is ``dst`` still reachable without the arc itself?).
        ``include_backward`` also follows backward arcs (used by
        cross-iteration analyses); iterate arcs are never followed.
        """
        seen: Set[str] = {source}
        queue = deque([source])
        while queue:
            current = queue.popleft()
            for arc in self._succ[current].values():
                if exclude_arc is not None and arc.key == exclude_arc:
                    continue
                if self.is_iterate_arc(arc):
                    continue
                if arc.backward and not include_backward:
                    continue
                if arc.dst not in seen:
                    seen.add(arc.dst)
                    queue.append(arc.dst)
        return seen

    def implies(self, src: str, dst: str, exclude_arc: Optional[Tuple[str, str]] = None) -> bool:
        """True if a forward path of constraints leads from src to dst."""
        return dst in self.reachable_from(src, exclude_arc=exclude_arc)

    def topological_order(self) -> List[str]:
        """Topological order of the single-iteration DAG.

        Raises :class:`CdfgError` if the forward arcs contain a cycle.
        """
        indegree: Dict[str, int] = {name: 0 for name in self._nodes}
        for arc in self.forward_arcs():
            indegree[arc.dst] += 1
        ready = deque(name for name, deg in indegree.items() if deg == 0)
        order: List[str] = []
        while ready:
            current = ready.popleft()
            order.append(current)
            for arc in self._succ[current].values():
                if arc.backward or self.is_iterate_arc(arc):
                    continue
                indegree[arc.dst] -= 1
                if indegree[arc.dst] == 0:
                    ready.append(arc.dst)
        if len(order) != len(self._nodes):
            raise CdfgError("forward constraint arcs contain a cycle")
        return order

    # ------------------------------------------------------------------
    # mutation helpers for transforms
    # ------------------------------------------------------------------
    def replace_node(self, old_name: str, new_node: Node) -> Node:
        """Replace node ``old_name`` by ``new_node``, rewiring all arcs.

        The new node keeps the old node's position in its FU schedule
        and block.  Parallel arcs created by the rewiring are merged.
        Used by GT4 (assignment merging).
        """
        old = self.node(old_name)
        if new_node.fu != old.fu:
            raise CdfgError("replacement node must stay on the same functional unit")
        incoming = [arc for arc in self.arcs_to(old_name)]
        outgoing = [arc for arc in self.arcs_from(old_name)]
        block = self._block_of[old_name]
        branch = self._branch_of.get(old_name)

        for arc in incoming:
            self.remove_arc(arc.src, arc.dst)
        for arc in outgoing:
            self.remove_arc(arc.src, arc.dst)

        self.invalidate_analyses()
        del self._nodes[old_name]
        del self._succ[old_name]
        del self._pred[old_name]
        del self._block_of[old_name]
        self._branch_of.pop(old_name, None)
        if old.fu is not None:
            index = self._fu_schedule[old.fu].index(old_name)
            self._fu_schedule[old.fu].pop(index)

        if new_node.name in self._nodes:
            # merging into an existing node: just rewire
            target = new_node.name
            replacement = self.node(target)
        else:
            self._nodes[new_node.name] = new_node
            self._succ[new_node.name] = {}
            self._pred[new_node.name] = {}
            self._block_of[new_node.name] = block
            self._branch_of[new_node.name] = branch
            if new_node.fu is not None:
                self._fu_schedule[new_node.fu].insert(index, new_node.name)
            target = new_node.name
            replacement = new_node

        for arc in incoming:
            if arc.src == target:
                continue
            self.add_arc(Arc(arc.src, target, arc.tags, backward=arc.backward, label=arc.label))
        for arc in outgoing:
            if arc.dst == target:
                continue
            self.add_arc(Arc(target, arc.dst, arc.tags, backward=arc.backward, label=arc.label))
        return replacement

    def remove_node(self, name: str) -> Node:
        """Remove a node and every arc touching it."""
        node = self.node(name)
        for arc in list(self.arcs_to(name)):
            self.remove_arc(arc.src, arc.dst)
        for arc in list(self.arcs_from(name)):
            self.remove_arc(arc.src, arc.dst)
        self.invalidate_analyses()
        del self._nodes[name]
        del self._succ[name]
        del self._pred[name]
        del self._block_of[name]
        self._branch_of.pop(name, None)
        if node.fu is not None:
            self._fu_schedule[node.fu].remove(name)
        return node

    def copy(self, name: Optional[str] = None) -> "Cdfg":
        """Deep-enough copy: nodes/arcs are immutable and shared."""
        clone = Cdfg(name or self.name)
        clone._nodes = dict(self._nodes)
        clone._arcs = dict(self._arcs)
        clone._succ = {key: dict(value) for key, value in self._succ.items()}
        clone._pred = {key: dict(value) for key, value in self._pred.items()}
        clone._block_of = dict(self._block_of)
        clone._branch_of = dict(self._branch_of)
        clone._fu_schedule = {key: list(value) for key, value in self._fu_schedule.items()}
        clone.inputs = dict(self.inputs)
        clone.initial_registers = dict(self.initial_registers)
        return clone

    def __getstate__(self):
        # memoized analyses are derived data and may be large (bitset
        # closures); never ship them across pickle boundaries (e.g. to
        # explore_design_space worker processes)
        state = self.__dict__.copy()
        state["_analysis_cache"] = {}
        return state

    # ------------------------------------------------------------------
    # interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export as a :class:`networkx.DiGraph` for external analysis.

        Node attributes: ``kind``, ``fu``, ``label``; edge attributes:
        ``roles`` (sorted role names), ``registers``, ``backward``.
        The iterate (ENDLOOP->LOOP) arcs are included, so cycle-based
        algorithms see the loop structure.
        """
        import networkx as nx

        graph = nx.DiGraph(name=self.name)
        for node in self.nodes():
            graph.add_node(
                node.name,
                kind=node.kind.value,
                fu=self.fu_of(node.name),
                label=node.label(),
            )
        for arc in self.arcs():
            graph.add_edge(
                arc.src,
                arc.dst,
                roles=sorted(role.value for role in arc.roles),
                registers=sorted(arc.registers),
                backward=arc.backward,
            )
        return graph

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def arcs_with_role(self, role: ArcRole) -> List[Arc]:
        return [arc for arc in self._arcs.values() if arc.has_role(role)]

    def inter_fu_arcs(self) -> List[Arc]:
        """Arcs whose endpoints live on different controllers.

        Each such arc needs a communication channel in the target
        architecture; START/END count as the environment controller.
        """
        return [
            arc
            for arc in self._arcs.values()
            if self.fu_of(arc.src) != self.fu_of(arc.dst)
        ]

    def summary(self) -> str:
        lines = [f"CDFG {self.name!r}: {len(self)} nodes, {self.arc_count()} arcs"]
        for fu in self.functional_units():
            lines.append(f"  {fu}: {', '.join(self._fu_schedule[fu])}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Cdfg {self.name!r} nodes={len(self)} arcs={self.arc_count()}>"
