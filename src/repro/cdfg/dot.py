"""Graphviz (DOT) export of CDFGs.

Produces drawings in the visual convention of the paper's Figure 1:
one column (cluster) per functional unit, solid control arcs, dotted
scheduling arcs, dashed data/register arcs, and bold backward arcs.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cdfg.arc import Arc, ArcRole
from repro.cdfg.graph import ENV, Cdfg


def _arc_style(arc: Arc) -> str:
    if arc.backward:
        return "style=bold color=red"
    roles = arc.roles
    if ArcRole.DATA in roles or ArcRole.REGISTER in roles:
        return "style=dashed"
    if ArcRole.SCHEDULING in roles:
        return "style=dotted"
    return "style=solid"


def _quote(name: str) -> str:
    escaped = name.replace('"', '\\"')
    return f'"{escaped}"'


def to_dot(cdfg: Cdfg, title: str = "") -> str:
    """Render ``cdfg`` as DOT text."""
    lines: List[str] = [f"digraph {_quote(cdfg.name)} {{"]
    lines.append("  rankdir=TB;")
    lines.append("  node [shape=box fontsize=10];")
    if title:
        lines.append(f"  label={_quote(title)};")

    by_fu: Dict[str, List[str]] = {}
    for node in cdfg.nodes():
        by_fu.setdefault(node.fu or ENV, []).append(node.name)

    for index, (fu, names) in enumerate(sorted(by_fu.items())):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f"    label={_quote(fu)};")
        for name in names:
            node = cdfg.node(name)
            shape = "box" if node.is_operation else "ellipse"
            lines.append(f"    {_quote(name)} [label={_quote(node.label())} shape={shape}];")
        lines.append("  }")

    for arc in cdfg.arcs():
        attrs = _arc_style(arc)
        label = arc.label or ""
        if label:
            attrs += f" label={_quote(label)}"
        lines.append(f"  {_quote(arc.src)} -> {_quote(arc.dst)} [{attrs}];")
    lines.append("}")
    return "\n".join(lines)


def write_dot(cdfg: Cdfg, path: str, title: str = "") -> None:
    """Write the DOT rendering of ``cdfg`` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_dot(cdfg, title))
        handle.write("\n")
