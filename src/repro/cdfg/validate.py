"""Well-formedness checks for CDFGs.

``check_well_formed`` enforces the structural invariants the rest of
the flow relies on.  Transforms call it (in tests and in the pass
manager's checked mode) before and after running, so a transform that
corrupts the graph is caught at its source.
"""

from __future__ import annotations

from typing import List

from repro.cdfg.arc import ArcRole
from repro.cdfg.graph import Cdfg
from repro.cdfg.kinds import NodeKind
from repro.errors import ValidationError


def check_well_formed(cdfg: Cdfg) -> None:
    """Raise :class:`ValidationError` on the first violated invariant.

    Checked invariants:

    1. exactly one START and one END node;
    2. the forward arcs (no backward, no iterate arcs) form a DAG;
    3. every node other than START is reachable from START following
       forward + iterate arcs;
    4. block structure: every non-iterate, non-backward arc either stays
       within one block or touches the boundary only at the block's
       root/close nodes;
    5. every LOOP has a matching ENDLOOP (iterate arc) and every IF a
       decision arc to its ENDIF;
    6. scheduling arcs connect nodes of the same functional unit;
    7. backward arcs live inside a loop block.
    """
    problems = collect_problems(cdfg)
    if problems:
        raise ValidationError("; ".join(problems))


def collect_problems(cdfg: Cdfg) -> List[str]:
    """Return a list of invariant violations (empty when well-formed)."""
    problems: List[str] = []

    starts = cdfg.nodes_of_kind(NodeKind.START)
    ends = cdfg.nodes_of_kind(NodeKind.END)
    if len(starts) != 1:
        problems.append(f"expected 1 START node, found {len(starts)}")
    if len(ends) != 1:
        problems.append(f"expected 1 END node, found {len(ends)}")

    # 2: forward arcs form a DAG
    try:
        cdfg.topological_order()
    except Exception as exc:  # CdfgError
        problems.append(str(exc))

    # 3: reachability from START
    if len(starts) == 1:
        seen = {starts[0].name}
        frontier = [starts[0].name]
        while frontier:
            current = frontier.pop()
            for arc in cdfg.arcs_from(current):
                if arc.backward:
                    continue
                if arc.dst not in seen:
                    seen.add(arc.dst)
                    frontier.append(arc.dst)
        # iterate arcs go backwards; also walk them to reach loop roots again
        unreachable = sorted(set(cdfg.node_names()) - seen)
        if unreachable:
            problems.append(f"unreachable from START: {unreachable}")

    # 4: block boundaries
    for arc in cdfg.arcs():
        if cdfg.is_iterate_arc(arc):
            continue
        src_block = cdfg.block_of(arc.src)
        dst_block = cdfg.block_of(arc.dst)
        if src_block == dst_block:
            continue
        src_node = cdfg.node(arc.src)
        dst_node = cdfg.node(arc.dst)
        # crossing is legal only at a root/close node of the inner block
        if dst_node.kind.is_block_open and cdfg.block_of(arc.dst) == src_block:
            continue  # outer level -> nested root (arc targets the root)
        if src_node.kind.is_block_open and cdfg.block_of(arc.src) == dst_block:
            continue  # root -> its members (entry arcs, loop exit arcs)
        if src_node.kind.is_block_close and cdfg.block_of(arc.src) == dst_block:
            continue  # close -> outer level (IF exit)
        if dst_node.kind.is_block_close and _close_block(cdfg, arc.dst) == src_block:
            continue  # member -> close node of its own block
        if src_node.kind.is_block_open and arc.dst in cdfg.block_members(arc.src):
            continue
        if dst_node.kind.is_block_open and arc.src in cdfg.block_members(arc.dst):
            continue  # member -> own root (e.g. condition regalloc arc)
        if _is_entry_arc(cdfg, arc.src, arc.dst):
            continue  # outer-level node -> loop member: a first-iteration
            # ("entry") constraint, produced by GT5.3 safe additions
        problems.append(f"arc crosses block boundary: {arc}")

    # 5: loop/if closure
    for node in cdfg.nodes_of_kind(NodeKind.LOOP):
        if not any(
            cdfg.node(arc.src).kind is NodeKind.ENDLOOP for arc in cdfg.arcs_to(node.name)
        ):
            problems.append(f"LOOP {node.name!r} has no iterate arc")
    for node in cdfg.nodes_of_kind(NodeKind.IF):
        if not any(
            cdfg.node(arc.dst).kind is NodeKind.ENDIF for arc in cdfg.arcs_from(node.name)
        ):
            problems.append(f"IF {node.name!r} has no decision arc to an ENDIF")

    # 6: scheduling arcs stay on one unit
    for arc in cdfg.arcs_with_role(ArcRole.SCHEDULING):
        if cdfg.fu_of(arc.src) != cdfg.fu_of(arc.dst):
            problems.append(f"scheduling arc between different units: {arc}")

    # 7: backward arcs inside a loop
    for arc in cdfg.arcs():
        if not arc.backward:
            continue
        if _innermost_loop_block(cdfg, arc.src) is None:
            problems.append(f"backward arc outside any loop: {arc}")

    return problems


def _close_block(cdfg: Cdfg, close_name: str) -> str:
    """Block root that a close node (ENDLOOP/ENDIF) terminates.

    Close nodes are recorded as members of the *enclosing* block, so we
    recover their own block from the matching root: for ENDLOOP via the
    iterate arc, for ENDIF via the decision arc.
    """
    node = cdfg.node(close_name)
    if node.kind is NodeKind.ENDLOOP:
        for arc in cdfg.arcs_from(close_name):
            if cdfg.node(arc.dst).kind is NodeKind.LOOP:
                return arc.dst
    if node.kind is NodeKind.ENDIF:
        for arc in cdfg.arcs_to(close_name):
            if cdfg.node(arc.src).kind is NodeKind.IF:
                return arc.src
    return "?"


def _is_entry_arc(cdfg: Cdfg, src: str, dst: str) -> bool:
    """True when ``src`` sits at an enclosing level of ``dst``'s block.

    Such an arc fires once per execution of the enclosing level and is
    consumed by ``dst``'s first firing after its loop is entered.
    """
    src_block = cdfg.block_of(src)
    current = cdfg.block_of(dst)
    while current is not None:
        if cdfg.block_of(current) == src_block:
            return True
        current = cdfg.block_of(current)
    return False


def _innermost_loop_block(cdfg: Cdfg, name: str):
    current = cdfg.block_of(name)
    while current is not None:
        if cdfg.node(current).kind is NodeKind.LOOP:
            return current
        current = cdfg.block_of(current)
    return None
