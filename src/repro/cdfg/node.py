"""CDFG node objects."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple

from repro.cdfg.kinds import NodeKind
from repro.rtl.ast import RtlStatement


@dataclass(frozen=True)
class Node:
    """A CDFG node.

    Nodes are immutable; transforms that change a node (e.g. GT4
    merging) create a replacement node and rewire arcs through
    :meth:`repro.cdfg.graph.Cdfg.replace_node`.

    Attributes
    ----------
    name:
        Unique identifier within the graph.  For operation nodes this
        is conventionally the RTL text (``"A := Y + M1"``).
    kind:
        The :class:`~repro.cdfg.kinds.NodeKind`.
    fu:
        Name of the functional unit the node is bound to, or ``None``
        for START/END (which are bound to no unit).  Per the paper,
        LOOP/ENDLOOP/IF/ENDIF *are* bound to a unit (ALU2 in DIFFEQ).
    statements:
        The RTL statements the node executes, in order.  Empty for
        structural nodes.  A merged node (GT4) carries several
        statements; the first is the one that uses the functional unit.
    condition:
        For LOOP and IF nodes, the register examined to decide control
        flow (the "loop variable").
    """

    name: str
    kind: NodeKind
    fu: Optional[str] = None
    statements: Tuple[RtlStatement, ...] = field(default_factory=tuple)
    condition: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind is NodeKind.OPERATION and not self.statements:
            raise ValueError(f"operation node {self.name!r} needs >= 1 RTL statement")
        if self.kind is not NodeKind.OPERATION and self.statements:
            raise ValueError(f"{self.kind} node {self.name!r} cannot carry statements")
        if self.kind in (NodeKind.LOOP, NodeKind.IF) and self.condition is None:
            raise ValueError(f"{self.kind} node {self.name!r} needs a condition register")
        if self.kind in (NodeKind.START, NodeKind.END) and self.fu is not None:
            raise ValueError(f"{self.kind} node {self.name!r} must not be bound to a FU")

    @property
    def is_operation(self) -> bool:
        return self.kind is NodeKind.OPERATION

    @property
    def reads(self) -> FrozenSet[str]:
        """Registers read by the node.

        For operation nodes this is the union of statement reads minus
        registers produced by *earlier statements of the same node*
        (relevant only for merged nodes).  LOOP/IF nodes read their
        condition register.
        """
        if self.kind in (NodeKind.LOOP, NodeKind.IF):
            assert self.condition is not None
            return frozenset({self.condition})
        reads: set = set()
        written: set = set()
        for statement in self.statements:
            reads.update(statement.reads - written)
            written.add(statement.dest)
        return frozenset(reads)

    @property
    def writes(self) -> FrozenSet[str]:
        """Registers written by the node."""
        return frozenset(statement.dest for statement in self.statements)

    @property
    def uses_functional_unit(self) -> bool:
        """True if executing the node occupies its functional unit.

        Pure copy statements (``X1 := X``) do not use the FU datapath;
        GT4 relies on this.  Structural nodes bound to a unit (LOOP,
        ENDLOOP, ...) only examine registers, so they do not use the FU
        either — but they do occupy a slot in the unit's *schedule*.
        """
        return any(not statement.is_copy for statement in self.statements)

    def label(self) -> str:
        """Human-readable label (used by DOT export and tracing)."""
        if self.is_operation:
            return "; ".join(str(statement) for statement in self.statements)
        if self.condition is not None:
            return f"{self.kind.value.upper()}({self.condition})"
        return self.kind.value.upper()

    def __str__(self) -> str:
        return self.name
