"""Causal event log and critical-path analysis for the simulators.

Both simulators run on :class:`~repro.sim.kernel.EventKernel`.  When a
kernel carries an :class:`EventTrace`, every ``schedule()`` call is
recorded as a :class:`CausalEvent` whose *parent* is the event during
whose callback it was scheduled — i.e. the event that *enabled* it
(in the token simulator the completion that delivered the last missing
token; in the AFSM simulator the burst that triggered the datapath
element or controller step).  Each event also keeps the exact ``delay``
it was scheduled with, so the chain of parents reconstructs simulated
time precisely:

    ``time(event) == time(parent) + delay(event)``

as the *same* floating-point computation the kernel performed.  Walking
parents back from the event that established the makespan therefore
yields a **critical path** whose segment delays — summed in path order —
reproduce the makespan *exactly* (zero-delay bookkeeping events add
``0.0`` and change nothing).  In ``NOMINAL`` delay mode this is the
deterministic decomposition the paper's cycle-time attribution needs:
every unit of makespan is charged to a named FU computation, controller
burst, mux/latch settle or channel hop.

:func:`slack_by_label` complements the path with per-operation slack:
how much later an event (and, conservatively, everything it triggered)
could have finished without extending the makespan.  Labels on the
critical path have slack ``0.0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = [
    "CausalEvent",
    "EventTrace",
    "Segment",
    "critical_path",
    "path_delay_sum",
    "slack_by_label",
    "bottleneck_label",
]


@dataclass
class CausalEvent:
    """One scheduled kernel callback."""

    uid: int  # the kernel's scheduling sequence number
    at: float  # simulation time of the scheduling call
    delay: float  # requested delay
    time: float  # at + delay: when the callback runs
    parent: Optional[int]  # uid of the event whose callback scheduled this one
    label: Optional[str]  # caller-supplied tag ("M1:U := U - M1", "dp:latch:Y", ...)
    order: int = -1  # execution order; -1 until the callback actually ran


class EventTrace:
    """Recorder attached to an :class:`~repro.sim.kernel.EventKernel`."""

    def __init__(self) -> None:
        self.events: Dict[int, CausalEvent] = {}
        self.current: Optional[int] = None  # uid of the executing event
        self._order = 0
        #: execution-order list, maintained incrementally: each uid
        #: executes at most once, so appending in :meth:`on_execute`
        #: keeps this permanently sorted by ``order`` and every query
        #: below reads it instead of re-sorting the full event dict
        self._executed: List[CausalEvent] = []

    # called by the kernel -------------------------------------------------
    def on_schedule(self, uid: int, at: float, delay: float, label: Optional[str]) -> None:
        self.events[uid] = CausalEvent(
            uid=uid, at=at, delay=delay, time=at + delay, parent=self.current, label=label
        )

    def on_execute(self, uid: int) -> None:
        event = self.events[uid]
        event.order = self._order
        self._order += 1
        self.current = uid
        self._executed.append(event)

    # queries --------------------------------------------------------------
    def executed(self) -> List[CausalEvent]:
        """Events whose callback actually ran, in execution order."""
        return list(self._executed)

    def last_event(self) -> Optional[CausalEvent]:
        """The final executed event — the one that set the kernel's end time."""
        if not self._executed:
            return None
        return self._executed[-1]

    def chain(self, uid: Optional[int] = None) -> List[CausalEvent]:
        """Parent chain root -> ``uid`` (default: the last executed event)."""
        if uid is None:
            last = self.last_event()
            if last is None:
                return []
            uid = last.uid
        path: List[CausalEvent] = []
        cursor: Optional[int] = uid
        while cursor is not None:
            event = self.events[cursor]
            path.append(event)
            cursor = event.parent
        path.reverse()
        return path

    def to_dicts(self) -> List[Dict[str, object]]:
        return [
            {
                "uid": event.uid,
                "time": event.time,
                "delay": event.delay,
                "parent": event.parent,
                "label": event.label,
                "order": event.order,
            }
            for event in self.executed()
        ]


@dataclass(frozen=True)
class Segment:
    """One link of the critical path."""

    label: str
    start: float  # time the segment was enabled (parent completion)
    end: float  # completion time
    delay: float  # end - start, as scheduled (exact)


def critical_path(
    trace: EventTrace,
    end_uid: Optional[int] = None,
    include_zero: bool = False,
) -> List[Segment]:
    """The enabling chain behind the run's final event, as segments.

    ``end_uid`` selects a different terminal event (e.g. the recorded
    END completion of a token simulation whose kernel processed
    stragglers afterwards).  Zero-delay bookkeeping events (pokes,
    immediate re-enables) are dropped unless ``include_zero`` — their
    contribution to the sum is exactly ``0.0``, so
    :func:`path_delay_sum` over the filtered path still reproduces the
    terminal event's time.
    """
    segments = [
        Segment(
            label=event.label or "(unlabeled)",
            start=event.at,
            end=event.time,
            delay=event.delay,
        )
        for event in trace.chain(end_uid)
    ]
    if not include_zero:
        segments = [segment for segment in segments if segment.delay > 0.0]
    return segments


def path_delay_sum(segments: List[Segment]) -> float:
    """Fold-left sum of segment delays, in path order.

    Performs the same left-to-right additions the kernel performed when
    accumulating absolute time, so for a complete path the result
    equals the terminal event's time bit-for-bit.
    """
    total = 0.0
    for segment in segments:
        total += segment.delay
    return total


def slack_by_label(trace: EventTrace, end_time: Optional[float] = None) -> Dict[str, float]:
    """Per-label slack: how much later the label's events could complete
    without pushing any completion past ``end_time``.

    Conservative (tree-shaped) analysis over the enabling chain: the
    slack of an event is ``end_time`` minus the latest completion among
    the event and everything it (transitively) enabled; a label's slack
    is the minimum over its events.  Critical-path labels get ``0.0``.
    """
    executed = trace.executed()
    if not executed:
        return {}
    if end_time is None:
        end_time = max(event.time for event in executed)
    # children scheduled after parents => parent.uid < child.uid, so a
    # single descending sweep sees every child before its parent
    latest: Dict[int, float] = {}
    for event in sorted(executed, key=lambda event: event.uid, reverse=True):
        down = latest.get(event.uid, event.time)
        latest[event.uid] = down
        if event.parent is not None:
            parent_down = latest.get(event.parent)
            if parent_down is None or down > parent_down:
                latest[event.parent] = down
    slack: Dict[str, float] = {}
    for event in executed:
        if event.label is None:
            continue
        value = end_time - latest[event.uid]
        if value < 0.0:
            value = 0.0  # stragglers past a token-sim END are not "negative slack"
        current = slack.get(event.label)
        if current is None or value < current:
            slack[event.label] = value
    return slack


def bottleneck_label(segments: List[Segment]) -> str:
    """The label group contributing the most delay to the path.

    Labels are grouped by their leading components ("``ctrl:M1:...``"
    -> ``ctrl:M1``, "``dp:fu:M1:...``" -> ``dp:fu:M1``), which names
    the FU / datapath element / channel rather than one specific burst.
    """
    totals: Dict[str, float] = {}
    for segment in segments:
        parts = segment.label.split(":")
        width = 3 if parts[0] == "dp" else 2
        group = ":".join(parts[:width])
        totals[group] = totals.get(group, 0.0) + segment.delay
    if not totals:
        return ""
    return max(sorted(totals), key=lambda label: totals[label])
