"""Lightweight span tracing for the synthesis flow.

A *span* is a named, nested, timed section with attributes — the
structured sibling of :func:`repro.perf.timed_section`.  Every span
exit also feeds :func:`repro.perf.record_duration` under the span's
name, so the pre-existing ``--timings`` aggregation keeps working
unchanged; spans additionally preserve nesting (``optimize_global`` >
``global/GT3``) and per-instance attributes (arcs removed, machine
name, workload), which the flat registry cannot express.

The registry is process-global and single-threaded, like
:mod:`repro.perf`: a worker process in ``explore --workers`` collects
its own spans independently.

>>> from repro.obs.spans import span, spans, reset_spans
>>> reset_spans()
>>> with span("outer"):
...     with span("inner", detail=1):
...         pass
>>> [s.name for s in spans()]
['outer', 'inner']
>>> spans()[1].depth
1
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro import perf

__all__ = [
    "Span",
    "span",
    "current_span",
    "set_attribute",
    "spans",
    "reset_spans",
    "format_spans",
    "spans_to_dicts",
]


@dataclass
class Span:
    """One completed (or in-flight) timed section."""

    name: str
    start: float  # perf_counter timestamp at entry
    duration: float = 0.0
    depth: int = 0
    attributes: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "duration": self.duration,
            "depth": self.depth,
            "attributes": dict(self.attributes),
        }


_spans: List[Span] = []
_stack: List[Span] = []


@contextmanager
def span(name: str, **attributes: object) -> Iterator[Span]:
    """Open a span; on exit the duration lands here *and* in
    :mod:`repro.perf` under ``name`` (keeping ``--timings`` accurate)."""
    entry = Span(
        name=name,
        start=time.perf_counter(),
        depth=len(_stack),
        attributes=dict(attributes),
    )
    _spans.append(entry)  # appended at entry: pre-order (parents first)
    _stack.append(entry)
    try:
        yield entry
    finally:
        _stack.pop()
        entry.duration = time.perf_counter() - entry.start
        perf.record_duration(name, entry.duration)


def current_span() -> Optional[Span]:
    """The innermost open span, if any."""
    return _stack[-1] if _stack else None


def set_attribute(key: str, value: object) -> None:
    """Attach ``key=value`` to the innermost open span (no-op outside)."""
    if _stack:
        _stack[-1].attributes[key] = value


def spans() -> List[Span]:
    """Snapshot of the recorded spans, in entry (pre-)order."""
    return list(_spans)


def reset_spans() -> None:
    """Clear the registry (open spans still record on exit)."""
    _spans.clear()


def spans_to_dicts() -> List[Dict[str, object]]:
    return [entry.to_dict() for entry in _spans]


def format_spans() -> str:
    """The recorded spans as an indented tree with durations."""
    if not _spans:
        return "(no spans recorded)"
    lines = []
    for entry in _spans:
        attrs = ""
        if entry.attributes:
            rendered = ", ".join(
                f"{key}={value}" for key, value in sorted(entry.attributes.items())
            )
            attrs = f"  ({rendered})"
        lines.append(f"{'  ' * entry.depth}{entry.name}  {entry.duration:.4f}s{attrs}")
    return "\n".join(lines)
