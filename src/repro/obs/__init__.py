"""Observability layer: transform provenance, span tracing, and
simulation critical-path profiling.

Three facilities, threaded through the whole flow:

- :mod:`repro.obs.provenance` — typed records of what each GT/LT pass
  changed (and why), exportable as JSONL;
- :mod:`repro.obs.spans` — nested timed sections with attributes,
  feeding the existing :mod:`repro.perf` registry so ``--timings``
  keeps working;
- :mod:`repro.obs.causal` — a causal event log recorded by the
  simulation kernel, from which the makespan-critical path and
  per-operation slack are extracted.

Surfaced by ``repro profile`` and ``repro trace`` on the CLI.
"""

from repro.obs.causal import (
    CausalEvent,
    EventTrace,
    Segment,
    bottleneck_label,
    critical_path,
    path_delay_sum,
    slack_by_label,
)
from repro.obs.provenance import (
    ProvenanceRecord,
    from_jsonl,
    read_jsonl,
    to_jsonl,
    write_jsonl,
)
from repro.obs.spans import (
    Span,
    current_span,
    format_spans,
    reset_spans,
    set_attribute,
    span,
    spans,
    spans_to_dicts,
)

__all__ = [
    "CausalEvent",
    "EventTrace",
    "Segment",
    "bottleneck_label",
    "critical_path",
    "path_delay_sum",
    "slack_by_label",
    "ProvenanceRecord",
    "from_jsonl",
    "read_jsonl",
    "to_jsonl",
    "write_jsonl",
    "Span",
    "current_span",
    "format_spans",
    "reset_spans",
    "set_attribute",
    "span",
    "spans",
    "spans_to_dicts",
]
