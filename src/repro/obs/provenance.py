"""Typed transform provenance.

The paper's evaluation (Figures 12/13) attributes cycle-time and area
wins to *specific* transformations — "GT2 removed arc 10", "GT5 merged
these channels".  A bare before/after number cannot support that
argument; every pass therefore emits :class:`ProvenanceRecord` entries
describing exactly what it changed and why (the dominating path of a
GT2 removal, the timing witness of a GT3 removal, the hub of a GT5.2
reroute, the latch burst an LT1 done edge moved to, ...).

Records are plain data: they collect on
:class:`~repro.transforms.base.TransformReport` /
:class:`~repro.local_transforms.base.LocalReport`, aggregate on the
optimization results, and serialize losslessly to JSONL
(:func:`write_jsonl` / :func:`read_jsonl`) for offline attribution
tooling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Dict, Iterable, List, Union


@dataclass(frozen=True)
class ProvenanceRecord:
    """One attributable action of one transform pass.

    ``transform``
        the pass that acted (``GT1``..``GT5``, ``LT1``..``LT5``);
    ``kind``
        what happened — a stable, hyphenated verb phrase such as
        ``dominated-arc-removed``, ``backward-arc-added``,
        ``channels-merged``, ``edge-moved-up`` or ``pass-summary``;
    ``subject``
        the arc / edge / channel / node acted on, rendered as text;
    ``detail``
        kind-specific context (dominating path, timing witness, hub,
        machine name, counts ...).  Values must be JSON-serializable.
    """

    transform: str
    kind: str
    subject: str
    detail: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "transform": self.transform,
            "kind": self.kind,
            "subject": self.subject,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ProvenanceRecord":
        return cls(
            transform=str(payload["transform"]),
            kind=str(payload["kind"]),
            subject=str(payload["subject"]),
            detail=dict(payload.get("detail", {})),  # type: ignore[arg-type]
        )


def to_jsonl(records: Iterable[ProvenanceRecord]) -> str:
    """Serialize ``records`` as one JSON object per line."""
    return "".join(
        json.dumps(record.to_dict(), sort_keys=True, default=str) + "\n"
        for record in records
    )


def from_jsonl(text: str) -> List[ProvenanceRecord]:
    """Parse records produced by :func:`to_jsonl` (blank lines skipped)."""
    records = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            records.append(ProvenanceRecord.from_dict(json.loads(line)))
    return records


def write_jsonl(
    records: Iterable[ProvenanceRecord], target: Union[str, IO[str]]
) -> int:
    """Write ``records`` to a path or text stream; returns the count."""
    text = to_jsonl(records)
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        target.write(text)
    return text.count("\n")


def read_jsonl(source: Union[str, IO[str]]) -> List[ProvenanceRecord]:
    """Read records from a path or text stream written by :func:`write_jsonl`."""
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return from_jsonl(handle.read())
    return from_jsonl(source.read())
