"""Parser for RTL statements such as ``A := Y + M1``.

The grammar is deliberately tiny — it matches the statement labels used
in the paper's CDFG figures:

.. code-block:: text

    statement ::= IDENT ':=' operand (BINOP operand)?
    operand   ::= IDENT | NUMBER
    BINOP     ::= '+' | '-' | '*' | '/' | '<' | '<=' | '>' | '>=' | '==' | '!='

Register names are C-like identifiers and may contain digits after the
first character (``M1``, ``X1``, ``dx2``).
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.errors import RtlSyntaxError
from repro.rtl.ast import BINARY_OPERATORS, BinaryExpr, Expr, Operand, RtlStatement

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<assign>:=)"
    r"|(?P<number>\d+\.\d+|\d+)"
    r"|(?P<ident>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op><=|>=|==|!=|[+\-*/<>])"
    r")"
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise RtlSyntaxError(text, f"unexpected input at {remainder!r}")
        pos = match.end()
        kind = match.lastgroup
        assert kind is not None
        tokens.append((kind, match.group(kind)))
    return tokens


def _parse_operand(kind: str, value: str, text: str) -> Operand:
    if kind == "ident":
        return Operand(register=value)
    if kind == "number":
        if "." in value:
            return Operand(literal=float(value))
        return Operand(literal=int(value))
    raise RtlSyntaxError(text, f"expected operand, got {value!r}")


def parse_statement(text: str) -> RtlStatement:
    """Parse ``text`` into an :class:`~repro.rtl.ast.RtlStatement`.

    >>> parse_statement("A := Y + M1")
    RtlStatement(dest='A', expr=BinaryExpr(op='+', left=Operand(...), ...))
    """
    tokens = _tokenize(text)
    if len(tokens) < 3:
        raise RtlSyntaxError(text, "statement too short")
    kind, dest = tokens[0]
    if kind != "ident":
        raise RtlSyntaxError(text, f"destination must be a register, got {dest!r}")
    if tokens[1][0] != "assign":
        raise RtlSyntaxError(text, "expected ':=' after destination")

    body = tokens[2:]
    expr: Expr
    if len(body) == 1:
        expr = _parse_operand(body[0][0], body[0][1], text)
    elif len(body) == 3:
        left = _parse_operand(body[0][0], body[0][1], text)
        op_kind, op = body[1]
        if op_kind != "op" or op not in BINARY_OPERATORS:
            raise RtlSyntaxError(text, f"expected binary operator, got {op!r}")
        right = _parse_operand(body[2][0], body[2][1], text)
        expr = BinaryExpr(op=op, left=left, right=right)
    else:
        raise RtlSyntaxError(text, "expected 'dest := src' or 'dest := src op src'")
    return RtlStatement(dest=dest, expr=expr)
