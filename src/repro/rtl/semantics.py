"""Numeric evaluation of RTL statements.

Used by the CDFG token simulator and the AFSM-level datapath model to
execute workloads and compare final register files against golden
models.  Comparison operators return the integers 0/1 so conditions can
be stored in ordinary registers (``C := X < a``).
"""

from __future__ import annotations

from typing import Mapping, MutableMapping, Union

from repro.errors import SimulationError
from repro.rtl.ast import BinaryExpr, Expr, Operand, RtlStatement

Number = Union[int, float]


def _operand_value(operand: Operand, registers: Mapping[str, Number]) -> Number:
    if operand.is_register:
        assert operand.register is not None
        try:
            return registers[operand.register]
        except KeyError:
            raise SimulationError(
                f"read of uninitialized register {operand.register!r}"
            ) from None
    assert operand.literal is not None
    return operand.literal


def _apply(op: str, left: Number, right: Number) -> Number:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise SimulationError("division by zero in RTL expression")
        return left / right
    if op == "<":
        return int(left < right)
    if op == "<=":
        return int(left <= right)
    if op == ">":
        return int(left > right)
    if op == ">=":
        return int(left >= right)
    if op == "==":
        return int(left == right)
    if op == "!=":
        return int(left != right)
    raise SimulationError(f"unsupported operator {op!r}")


def evaluate_expr(expr: Expr, registers: Mapping[str, Number]) -> Number:
    """Evaluate an RTL expression against a register file."""
    if isinstance(expr, Operand):
        return _operand_value(expr, registers)
    assert isinstance(expr, BinaryExpr)
    left = _operand_value(expr.left, registers)
    right = _operand_value(expr.right, registers)
    return _apply(expr.op, left, right)


def execute_statement(
    statement: RtlStatement, registers: MutableMapping[str, Number]
) -> Number:
    """Execute ``statement`` in-place on ``registers``; return the value written."""
    value = evaluate_expr(statement.expr, registers)
    registers[statement.dest] = value
    return value
