"""RTL statement micro-language.

The CDFGs of the paper label operation nodes with register-transfer-level
statements such as ``A := Y + M1`` or ``X1 := X``.  This subpackage
provides the small AST (:mod:`repro.rtl.ast`), a parser
(:mod:`repro.rtl.parser`) and an evaluator (:mod:`repro.rtl.semantics`)
for that statement language.
"""

from repro.rtl.ast import BinaryExpr, Expr, Operand, RtlStatement
from repro.rtl.parser import parse_statement
from repro.rtl.semantics import evaluate_expr, execute_statement

__all__ = [
    "BinaryExpr",
    "Expr",
    "Operand",
    "RtlStatement",
    "parse_statement",
    "evaluate_expr",
    "execute_statement",
]
