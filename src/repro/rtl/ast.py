"""AST for the RTL statement micro-language.

A statement has the shape ``DEST := SRC`` (a register copy) or
``DEST := SRC op SRC`` (a binary operation).  Operands are either
register names or integer/float literals.  This is exactly the
expressiveness the paper's CDFG node labels need: every operation node
reads at most two registers and writes one.
"""

from __future__ import annotations

import numbers
from dataclasses import dataclass
from typing import FrozenSet, Tuple, Union

#: Binary operators supported in RTL expressions.  ``<`` and friends
#: produce the integers 0/1, which is how loop conditions (``C := X < a``)
#: are modelled.
BINARY_OPERATORS: Tuple[str, ...] = ("+", "-", "*", "/", "<", "<=", ">", ">=", "==", "!=")


@dataclass(frozen=True)
class Operand:
    """A leaf of an RTL expression: a register reference or a literal."""

    #: Register name, or ``None`` for a literal.
    register: Union[str, None] = None
    #: Literal numeric value, or ``None`` for a register reference.
    literal: Union[int, float, None] = None

    def __post_init__(self) -> None:
        has_reg = self.register is not None
        has_lit = self.literal is not None
        if has_reg == has_lit:
            raise ValueError("operand must be exactly one of register or literal")
        if has_lit and not isinstance(self.literal, numbers.Real):
            raise ValueError(f"literal must be numeric, got {self.literal!r}")

    @property
    def is_register(self) -> bool:
        return self.register is not None

    def __str__(self) -> str:
        if self.register is not None:
            return self.register
        return repr(self.literal)


@dataclass(frozen=True)
class BinaryExpr:
    """A binary operation ``left op right``."""

    op: str
    left: Operand
    right: Operand

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPERATORS:
            raise ValueError(f"unsupported operator {self.op!r}")

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


#: An RTL expression is either a single operand (copy) or a binary op.
Expr = Union[Operand, BinaryExpr]


def expr_reads(expr: Expr) -> FrozenSet[str]:
    """Return the set of registers an expression reads."""
    if isinstance(expr, Operand):
        return frozenset({expr.register} if expr.is_register else set())
    reads = set()
    for operand in (expr.left, expr.right):
        if operand.is_register:
            reads.add(operand.register)
    return frozenset(reads)


@dataclass(frozen=True)
class RtlStatement:
    """A single register transfer: ``dest := expr``."""

    dest: str
    expr: Expr

    @property
    def reads(self) -> FrozenSet[str]:
        """Registers read by this statement."""
        return expr_reads(self.expr)

    @property
    def writes(self) -> str:
        """The register written by this statement."""
        return self.dest

    @property
    def is_copy(self) -> bool:
        """True for pure register/literal copies (``X1 := X``).

        Copy statements do not use the functional unit they are bound
        to; GT4 exploits this to merge them with a neighbouring
        operation node.
        """
        return isinstance(self.expr, Operand)

    @property
    def operator(self) -> Union[str, None]:
        """The binary operator, or ``None`` for a copy."""
        if isinstance(self.expr, BinaryExpr):
            return self.expr.op
        return None

    def __str__(self) -> str:
        return f"{self.dest} := {self.expr}"
