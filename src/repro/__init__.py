"""Asynchronous distributed control synthesis.

Reproduction of Theobald & Nowick, "Transformations for the Synthesis
and Optimization of Asynchronous Distributed Control" (DAC 2001).

The flow, end to end:

>>> from repro import synthesize
>>> from repro.workloads import build_diffeq_cdfg
>>> design = synthesize(build_diffeq_cdfg())          # doctest: +SKIP
>>> from repro.sim.system import simulate_system
>>> simulate_system(design).registers["Y"]            # doctest: +SKIP

Subpackages: :mod:`repro.cdfg` (the IR and builder), :mod:`repro.transforms`
(GT1..GT5), :mod:`repro.afsm` (burst-mode extraction),
:mod:`repro.local_transforms` (LT1..LT5), :mod:`repro.logic` (two-level
hazard-checked synthesis), :mod:`repro.sim` (token and system
simulators), :mod:`repro.timing`, :mod:`repro.channels`,
:mod:`repro.workloads`, :mod:`repro.eval`, :mod:`repro.explore`.
"""

from typing import Optional, Sequence

__version__ = "1.0.0"

from repro.cdfg.graph import Cdfg


def synthesize(
    cdfg,
    global_transforms: Optional[Sequence[str]] = None,
    local_transforms: Optional[Sequence[str]] = None,
):
    """One-call synthesis: CDFG -> optimized distributed controllers.

    ``cdfg`` is a :class:`Cdfg`, the name of a registered workload
    (``synthesize("diffeq")`` — see :data:`repro.workloads.WORKLOADS`),
    or a :class:`repro.frontend.CompiledKernel` (built with its default
    parameter values).  Applies the standard global
    script (or ``global_transforms``), extracts one burst-mode
    controller per functional unit, and applies the standard local
    script (or ``local_transforms``).  Returns a
    :class:`repro.afsm.extract.DistributedDesign`.
    """
    if isinstance(cdfg, str):
        from repro.workloads import build_workload

        cdfg = build_workload(cdfg)
    elif not isinstance(cdfg, Cdfg):
        from repro.frontend import CompiledKernel

        if isinstance(cdfg, CompiledKernel):
            cdfg = cdfg.build()
        else:
            raise TypeError(
                "synthesize() expects a Cdfg, a workload name (str) or a "
                f"frontend CompiledKernel, got {type(cdfg).__name__}"
            )

    from repro.afsm.extract import extract_controllers
    from repro.local_transforms import optimize_local
    from repro.local_transforms.scripts import STANDARD_LOCAL_SEQUENCE
    from repro.transforms import optimize_global
    from repro.transforms.scripts import STANDARD_SEQUENCE

    optimized = optimize_global(
        cdfg,
        enabled=tuple(global_transforms) if global_transforms is not None else STANDARD_SEQUENCE,
    )
    design = extract_controllers(optimized.cdfg, optimized.plan)
    enabled_local = (
        tuple(local_transforms) if local_transforms is not None else STANDARD_LOCAL_SEQUENCE
    )
    if enabled_local:
        design = optimize_local(design, enabled=enabled_local).design
    return design


__all__ = ["Cdfg", "synthesize", "__version__"]
