"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the phase that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class RtlSyntaxError(ReproError):
    """An RTL statement could not be parsed."""

    def __init__(self, text: str, reason: str):
        self.text = text
        self.reason = reason
        super().__init__(f"cannot parse RTL statement {text!r}: {reason}")


class CdfgError(ReproError):
    """Structural problem in a CDFG (bad arc, unknown node, ...)."""


class BlockStructureError(CdfgError):
    """The CDFG violates the block-structure restriction of Section 2.1."""


class ValidationError(CdfgError):
    """A CDFG failed a well-formedness check."""


class TransformError(ReproError):
    """A transformation could not be applied."""

    def __init__(self, transform: str, reason: str):
        self.transform = transform
        self.reason = reason
        super().__init__(f"{transform}: {reason}")


class TimingError(ReproError):
    """Timing analysis failed or a timing assumption is violated."""


class ExtractionError(ReproError):
    """Burst-mode controller extraction failed."""


class BurstModeError(ReproError):
    """A burst-mode machine is malformed or violates BM properties."""


class LogicError(ReproError):
    """Two-level logic synthesis or minimization failed."""


class HazardError(LogicError):
    """A cover violates a hazard-freedom requirement."""


class SimulationError(ReproError):
    """The event-driven simulation detected a protocol violation."""


class VerificationError(ReproError):
    """Differential conformance checking found a divergence.

    Raised by :mod:`repro.verify` when an execution level disagrees
    with the golden reference, or when a metamorphic transform oracle
    detects a violated per-pass invariant.
    """


class FlowRefutedError(VerificationError):
    """A flow-equivalence proof obligation failed.

    Raised by the :mod:`repro.verify.flow` oracles when a GT/LT pass
    cannot be certified; the message carries a ``flow[<pass>]:``
    prefix and the first refuted obligation.
    """


class DeadlockError(SimulationError):
    """The simulation quiesced with unfired operations.

    Beyond the human-readable message, the exception carries the
    watchdog's structured diagnosis so resilience tooling (fault
    campaigns, exploration sweeps) can report *which* channels and
    nodes were blocked instead of re-parsing the message:

    ``time``
        simulation time at quiescence;
    ``waiting``
        one dict per blocked node — ``{"node", "missing", "held"}``,
        the arcs whose tokens never arrived vs the ones already held;
    ``blocked_channels``
        arc keys (and channel names, when a plan was active) the
        missing tokens would have travelled on;
    ``recent_events``
        labels of the last executed causal-trace events before the
        stall (empty when the run was not traced).
    """

    def __init__(
        self,
        message: str,
        time: float = 0.0,
        waiting: tuple = (),
        blocked_channels: tuple = (),
        recent_events: tuple = (),
    ):
        self.time = time
        self.waiting = list(waiting)
        self.blocked_channels = list(blocked_channels)
        self.recent_events = list(recent_events)
        super().__init__(message)

    def to_dict(self) -> dict:
        """JSON-serializable form (used by fault-campaign reports)."""
        return {
            "time": self.time,
            "waiting": list(self.waiting),
            "blocked_channels": list(self.blocked_channels),
            "recent_events": list(self.recent_events),
            "message": str(self),
        }


class SpaceError(ReproError):
    """A design-space specification is malformed.

    Raised by :mod:`repro.cache.space` while parsing a ``--space`` file
    or materializing a scenario (unknown workload, bad delay variant,
    unparseable kernel reference, empty axis).
    """


class FrontendError(ReproError):
    """A Python kernel steps outside the compilable subset.

    Raised by :mod:`repro.frontend` while parsing or lowering; carries
    the offending source line when one is known.
    """

    def __init__(self, reason: str, lineno: int = None):
        self.reason = reason
        self.lineno = lineno
        where = f" (line {lineno})" if lineno is not None else ""
        super().__init__(f"{reason}{where}")


class KernelBoundError(FrontendError):
    """A compiled kernel exceeded its execution bound.

    The frontend subset only admits *bounded* while loops; the IR
    interpreter enforces the bound at execution time and raises this
    when a kernel runs away (e.g. a loop whose condition register is
    never updated).
    """


class JobError(ReproError):
    """A served job could not be executed.

    Raised by :mod:`repro.serve.jobs` for malformed submissions
    (unknown kind/workload, bad parameters).  Maps to the ``fatal``
    exit class — resubmitting the same request can never succeed, so
    the server must not burn its retry budget on it.
    """


# ----------------------------------------------------------------------
# Exit-code taxonomy
# ----------------------------------------------------------------------
# Every sweep-shaped command (``repro explore``, ``repro faults``, the
# job server's per-job verdicts) maps its outcome through one shared
# table so scripts and CI can branch on a single convention:
#
#   0   ok           completed, nothing wrong
#   1   issues       completed, but found problems (non-conformant
#                    points, unhealthy campaign, divergent bench)
#   2   fatal        could not evaluate at all (usage error, every
#                    point failed, missing optional dependency)
#   130 interrupted  stopped by the user (SIGINT convention)

EXIT_OK = 0
EXIT_ISSUES = 1
EXIT_FATAL = 2
EXIT_INTERRUPTED = 130

#: exit-class label -> process exit code (the serve layer stamps each
#: terminal job with the label; CLIs return the code)
EXIT_CODES = {
    "ok": EXIT_OK,
    "issues": EXIT_ISSUES,
    "fatal": EXIT_FATAL,
    "interrupted": EXIT_INTERRUPTED,
}


def exit_class(
    *,
    interrupted: bool = False,
    total: int = 0,
    failed: int = 0,
    issues: int = 0,
) -> str:
    """Classify a sweep outcome into the shared exit taxonomy.

    ``total``/``failed`` count evaluated vs crashed units (points,
    trials, jobs); ``issues`` counts units that evaluated but reported
    problems.  Interruption dominates; a sweep whose every unit failed
    is ``fatal`` (there is nothing to report on); reported problems are
    ``issues``; otherwise ``ok`` — *partial* failures alone stay ``ok``,
    matching the historical ``repro explore`` contract where quarantined
    points are reported but do not fail the sweep.
    """
    if interrupted:
        return "interrupted"
    if total and failed == total:
        return "fatal"
    if issues:
        return "issues"
    return "ok"


def sweep_exit_code(
    *,
    interrupted: bool = False,
    total: int = 0,
    failed: int = 0,
    issues: int = 0,
) -> int:
    """:func:`exit_class` folded through :data:`EXIT_CODES`."""
    return EXIT_CODES[
        exit_class(interrupted=interrupted, total=total, failed=failed, issues=issues)
    ]


class ChannelSafetyError(SimulationError):
    """Two transitions were outstanding on a single-wire channel.

    This is exactly the failure mode GT1 step D ("limit parallelism")
    exists to prevent: transition-signalling channels carry a single
    unacknowledged event, so queueing a second request on the same wire
    before the first is consumed loses an event.
    """
