"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``tables``      regenerate every paper table/figure (Figures 5/12/13,
                trajectory, performance)
``synthesize``  run the full flow on a workload and print the design
``simulate``    execute a synthesized design and report the register
                file, makespan and event counts
``explore``     sweep transform subsets and print the Pareto frontier
``verify``      conformance-fuzz the flow against the golden reference
``dot``         export the (optionally optimized) CDFG as Graphviz
``vcd``         dump a VCD waveform of a system simulation
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

from repro.afsm.extract import extract_controllers
from repro.cdfg.dot import to_dot
from repro.channels.model import derive_channels
from repro.eval.experiments import (
    run_fig5,
    run_fig12,
    run_fig13,
    run_performance,
    run_trajectory,
)
from repro.eval.tables import render_table
from repro import perf
from repro.local_transforms import optimize_local
from repro.sim.system import ControllerSystem, simulate_system
from repro.transforms import optimize_global
from repro.workloads import WORKLOADS

LEVELS = ("unoptimized", "gt", "gt+lt")


def _build_design(workload: str, level: str):
    cdfg = WORKLOADS[workload]()
    if level == "unoptimized":
        return extract_controllers(cdfg, derive_channels(cdfg))
    optimized = optimize_global(cdfg)
    design = extract_controllers(optimized.cdfg, optimized.plan)
    if level == "gt+lt":
        design = optimize_local(design).design
    return design


def _cmd_tables(args: argparse.Namespace) -> int:
    for result in (run_fig5(), run_fig12(), run_fig13(), run_trajectory(), run_performance()):
        print(result.table())
        print()
    return 0


def _cmd_synthesize(args: argparse.Namespace) -> int:
    if args.timings:
        perf.reset_timings()
    design = _build_design(args.workload, args.level)
    print(design.summary())
    if args.verbose:
        for controller in design.controllers.values():
            print()
            print(controller.machine.describe())
    if args.timings:
        print()
        print("per-pass wall time:")
        print(perf.format_timings())
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    design = _build_design(args.workload, args.level)
    result = simulate_system(design, seed=args.seed)
    rows = sorted(result.registers.items())
    print(render_table(("register", "value"), rows))
    print(f"makespan: {result.end_time:.2f}   events: {result.events_processed}")
    if result.hazards:
        print("HAZARDS:")
        for hazard in result.hazards:
            print("  ", hazard)
        return 1
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.explore import explore_design_space

    cdfg = WORKLOADS[args.workload]()
    result = explore_design_space(cdfg, workers=args.workers)
    frontier = result.pareto_points()
    rows = [
        (
            point.label,
            point.channels,
            point.total_states,
            f"{point.makespan:.1f}",
            "yes" if point.conformant else "NO",
        )
        for point in sorted(frontier, key=lambda p: p.objectives())
    ]
    print(render_table(("configuration", "channels", "states", "makespan", "conformant"), rows))
    print(f"{len(frontier)} Pareto-optimal of {len(result.points)} explored points")
    bad = [point for point in result.points if not point.conformant]
    if bad:
        print(f"{len(bad)} NON-CONFORMANT points:")
        for point in bad:
            print(f"  {point.label}: {point.conformance}")
        return 1
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify import fuzz_workload
    from repro.workloads import workload_names

    names = list(workload_names()) if args.workload == "all" else [args.workload]
    reports = []
    for name in names:
        report = fuzz_workload(
            name,
            runs=args.runs,
            seed=args.seed,
            budget=args.budget,
            shrink=not args.no_shrink,
        )
        reports.append(report)
        print(report.summary())
    if args.json:
        import json

        payload = [report.to_dict() for report in reports]
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload[0] if len(payload) == 1 else payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    return 0 if all(report.conformant for report in reports) else 1


def _cmd_dot(args: argparse.Namespace) -> int:
    cdfg = WORKLOADS[args.workload]()
    if args.optimized:
        cdfg = optimize_global(cdfg).cdfg
    text = to_dot(cdfg, title=f"{args.workload} ({'optimized' if args.optimized else 'input'})")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_vcd(args: argparse.Namespace) -> int:
    from repro.sim.trace import VcdTracer

    design = _build_design(args.workload, args.level)
    system = ControllerSystem(design, seed=args.seed)
    tracer = VcdTracer(system)
    result = tracer.run()
    with open(args.output, "w", encoding="utf-8") as handle:
        tracer.write(handle)
    print(f"wrote {args.output} ({len(tracer.changes)} value changes, "
          f"makespan {result.end_time:.1f})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Asynchronous distributed control synthesis (Theobald/Nowick DAC'01 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="regenerate every paper table/figure")

    for name, help_text in (
        ("synthesize", "run the synthesis flow and print the controllers"),
        ("simulate", "execute a synthesized design"),
        ("vcd", "dump a VCD waveform of a run"),
    ):
        command = sub.add_parser(name, help=help_text)
        command.add_argument("workload", choices=sorted(WORKLOADS))
        command.add_argument("--level", choices=LEVELS, default="gt+lt")
        command.add_argument("--seed", type=int, default=0)
        if name == "synthesize":
            command.add_argument("--verbose", action="store_true")
            command.add_argument(
                "--timings",
                action="store_true",
                help="print per-pass wall time after synthesis",
            )
        if name == "vcd":
            command.add_argument("--output", "-o", default="trace.vcd")

    explore = sub.add_parser("explore", help="design-space exploration")
    explore.add_argument("workload", choices=sorted(WORKLOADS))
    explore.add_argument(
        "--workers",
        type=int,
        default=None,
        help="evaluate points on a process pool (0 = one per CPU; default serial)",
    )

    verify = sub.add_parser(
        "verify",
        help="differential conformance fuzzing of every transform level",
    )
    verify.add_argument("workload", choices=sorted(WORKLOADS) + ["all"])
    verify.add_argument("--runs", type=int, default=20, help="cases per workload")
    verify.add_argument("--seed", type=int, default=0, help="campaign master seed")
    verify.add_argument(
        "--budget",
        type=float,
        default=None,
        help="stop the campaign after this many seconds",
    )
    verify.add_argument("--json", default=None, help="write the VerifyReport(s) to this path")
    verify.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failing cases as found, without minimization",
    )

    dot = sub.add_parser("dot", help="export a CDFG as Graphviz")
    dot.add_argument("workload", choices=sorted(WORKLOADS))
    dot.add_argument("--optimized", action="store_true")
    dot.add_argument("--output", "-o", default=None)

    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "tables": _cmd_tables,
        "synthesize": _cmd_synthesize,
        "simulate": _cmd_simulate,
        "explore": _cmd_explore,
        "verify": _cmd_verify,
        "dot": _cmd_dot,
        "vcd": _cmd_vcd,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
