"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``tables``      regenerate every paper table/figure (Figures 5/12/13,
                trajectory, performance)
``compile``     compile a Python-subset kernel file to a scheduled CDFG
                and report its schedule, makespan and golden match
``synthesize``  run the full flow on a workload and print the design
``simulate``    execute a synthesized design and report the register
                file, makespan and event counts
``profile``     synthesize + simulate with full observability: span
                tree, transform provenance, simulation critical path
``trace``       stream the same observability data as JSONL
``explore``     sweep transform subsets and print the Pareto frontier
                (incremental + cached by default; see ``--no-cache``)
``bench``       time the exploration sweep cold/warm and append the
                result to ``BENCH_scaling.json``
``verify``      conformance-fuzz the flow against the golden reference;
                with ``--proofs``, discharge the flow-equivalence proof
                obligations instead and emit replayable certificates
``faults``      delay-fault campaign: GT3 slack margins, GT5 channel
                skew tolerance, seeded randomized fault trials
``dot``         export the (optionally optimized) CDFG as Graphviz
``vcd``         dump a VCD waveform of a system simulation
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.afsm.extract import extract_controllers
from repro.cdfg.dot import to_dot
from repro.channels.model import derive_channels
from repro.eval.experiments import (
    run_fig5,
    run_fig12,
    run_fig13,
    run_performance,
    run_trajectory,
)
from repro.eval.tables import render_table
from repro import perf
from repro.local_transforms import optimize_local
from repro.obs.provenance import ProvenanceRecord
from repro.sim.seeding import NOMINAL, SeedLike
from repro.sim.system import ControllerSystem, simulate_system
from repro.transforms import optimize_global
from repro.workloads import WORKLOADS

LEVELS = ("unoptimized", "gt", "gt+lt", "gt+lt+min")


def _cli_error(message: str) -> None:
    """Print a CLI usage error and exit with the argparse status (2)."""
    print(f"repro: error: {message}", file=sys.stderr)
    raise SystemExit(2)


def _resolve_workload(args: argparse.Namespace, extra: Tuple[str, ...] = ()) -> str:
    """The workload name a command should run on.

    ``--workload-from FILE[:KERNEL]`` compiles the file with the
    frontend (honouring ``--bounds``) and registers it as a workload;
    otherwise the positional name must already be registered (or one of
    ``extra``, e.g. ``verify all``).  Workload positionals are
    validated here instead of via argparse ``choices`` so kernels
    registered at run time resolve like built-ins.
    """
    spec = getattr(args, "workload_from", None)
    if spec:
        from repro.errors import FrontendError
        from repro.frontend import load_kernel_file, parse_bounds, register_kernel

        path, __, kernel = spec.partition(":")
        try:
            compiled = load_kernel_file(
                path,
                kernel=kernel or None,
                bounds=parse_bounds(getattr(args, "bounds", None)),
            )
            name = register_kernel(compiled, replace=True)
        except FrontendError as exc:
            _cli_error(str(exc))
        if args.workload not in (None, name):
            _cli_error(
                f"--workload-from registered workload {name!r}; "
                f"drop the conflicting positional {args.workload!r}"
            )
        return name
    if args.workload is None:
        _cli_error("a workload name (or --workload-from FILE[:KERNEL]) is required")
    name = args.workload.strip().lower()
    if name in WORKLOADS:
        return name
    if args.workload in extra:
        return args.workload
    known = ", ".join(sorted(WORKLOADS) + list(extra))
    _cli_error(f"unknown workload {args.workload!r} (known: {known})")
    raise AssertionError("unreachable")


def _parse_seed(text: str) -> SeedLike:
    """``nominal`` | ``random`` | ``<int>`` (see :mod:`repro.sim.seeding`)."""
    lowered = text.strip().lower()
    if lowered == "nominal":
        return NOMINAL
    if lowered == "random":
        return None
    try:
        return int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"seed must be 'nominal', 'random' or an integer, got {text!r}"
        )


def _format_seed(effective: Optional[int]) -> str:
    return "nominal" if effective is None else str(effective)


def _build_design(workload: str, level: str) -> Tuple[object, List[ProvenanceRecord]]:
    """Synthesize ``workload`` at ``level``; returns (design, provenance)."""
    cdfg = WORKLOADS[workload]()
    if level == "unoptimized":
        return extract_controllers(cdfg, derive_channels(cdfg)), []
    optimized = optimize_global(cdfg)
    provenance = list(optimized.provenance)
    design = extract_controllers(optimized.cdfg, optimized.plan)
    if level in ("gt+lt", "gt+lt+min"):
        local = optimize_local(design)
        design = local.design
        provenance.extend(local.provenance)
    if level == "gt+lt+min":
        from repro.afsm.minimize import minimize_design

        design, reports, __ = minimize_design(design)
        for report in reports:
            if report.applied:
                provenance.append(
                    ProvenanceRecord(
                        "MIN",
                        "states-merged",
                        report.machine,
                        f"{report.before_states} -> {report.after_states} states",
                    )
                )
    return design, provenance


def _cmd_compile(args: argparse.Namespace) -> int:
    from repro.cdfg.validate import check_well_formed
    from repro.errors import FrontendError, ValidationError
    from repro.frontend import load_kernel_file, parse_bounds
    from repro.sim.token_sim import simulate_tokens

    try:
        compiled = load_kernel_file(
            args.file, kernel=args.kernel, bounds=parse_bounds(args.bounds)
        )
        cdfg = compiled.build()
        check_well_formed(cdfg)
    except (FrontendError, ValidationError) as exc:
        print(f"repro compile: {exc}", file=sys.stderr)
        return 2
    info = compiled.describe()
    print(
        f"kernel {info['kernel']}: {info['operations']} operations on "
        f"{', '.join(info['functional_units'])}"
    )
    print("params: " + ", ".join(f"{k}={v:g}" for k, v in info["params"].items()))
    if info["inputs"]:
        print("inputs: " + ", ".join(info["inputs"]))
    if info["outputs"]:
        print("outputs: " + ", ".join(info["outputs"]))
    rows = [
        (str(run_index), str(step), fu, str(op))
        for run_index, run in enumerate(compiled.schedule.runs)
        for op, step, fu in run
    ]
    print(render_table(("run", "step", "fu", "operation"), rows))
    result = simulate_tokens(cdfg, seed=NOMINAL)
    golden = compiled.golden()
    mismatched = sorted(
        name for name, value in golden.items() if result.registers.get(name) != value
    )
    print(
        f"nominal makespan {result.end_time:.2f}; register file "
        + (f"MISMATCH: {', '.join(mismatched)}" if mismatched else "matches the golden model")
    )
    print(f"fingerprint {info['fingerprint']}")
    return 1 if mismatched else 0


def _cmd_tables(args: argparse.Namespace) -> int:
    for result in (run_fig5(), run_fig12(), run_fig13(), run_trajectory(), run_performance()):
        print(result.table())
        print()
    return 0


def _cmd_synthesize(args: argparse.Namespace) -> int:
    args.workload = _resolve_workload(args)
    if args.timings:
        perf.reset_timings()
    design, __ = _build_design(args.workload, args.level)
    print(design.summary())
    if args.verbose:
        for controller in design.controllers.values():
            print()
            print(controller.machine.describe())
    if args.timings:
        print()
        print("per-pass wall time:")
        print(perf.format_timings())
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    args.workload = _resolve_workload(args)
    design, __ = _build_design(args.workload, args.level)
    result = simulate_system(design, seed=args.seed)
    rows = sorted(result.registers.items())
    print(render_table(("register", "value"), rows))
    print(
        f"makespan: {result.end_time:.2f}   events: {result.events_processed}"
        f"   seed: {_format_seed(result.seed)}"
    )
    if result.hazards:
        print("HAZARDS:")
        for hazard in result.hazards:
            print("  ", hazard)
        return 1
    return 0


def _profiled_run(args: argparse.Namespace):
    """Synthesize + simulate with every observability channel armed.

    Returns ``(design, provenance, result, segments)`` where
    ``segments`` is the simulation's causal critical path.
    """
    from repro.obs.causal import EventTrace, critical_path
    from repro.obs.spans import reset_spans

    perf.reset_timings()
    reset_spans()
    args.workload = _resolve_workload(args)
    design, provenance = _build_design(args.workload, args.level)
    trace = EventTrace()
    result = simulate_system(design, seed=args.seed, trace=trace)
    segments = critical_path(trace)
    return design, provenance, result, segments


def _provenance_summary(provenance: List[ProvenanceRecord]) -> List[Tuple[str, str, int]]:
    """(transform, kind, count) rows in first-seen order."""
    counts: Dict[Tuple[str, str], int] = {}
    for record in provenance:
        key = (record.transform, record.kind)
        counts[key] = counts.get(key, 0) + 1
    return [(transform, kind, count) for (transform, kind), count in counts.items()]


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.causal import bottleneck_label, path_delay_sum, slack_by_label
    from repro.obs.spans import format_spans

    design, provenance, result, segments = _profiled_run(args)

    print(f"== synthesis spans ({args.workload}, {args.level}) ==")
    print(format_spans())

    print()
    print("== transform provenance ==")
    rows = [(t, k, str(c)) for t, k, c in _provenance_summary(provenance)]
    if rows:
        print(render_table(("transform", "kind", "records"), rows))
    print(f"{len(provenance)} records (export with: repro trace {args.workload} --jsonl ...)")

    print()
    print("== simulation critical path ==")
    visible = [s for s in segments if s.delay > 0.0]
    hidden = len(segments) - len(visible)
    path_rows = [
        (f"{s.start:.2f}", f"{s.end:.2f}", f"{s.delay:.2f}", s.label or "?")
        for s in visible
    ]
    print(render_table(("start", "end", "delay", "event"), path_rows))
    if hidden:
        print(f"({hidden} zero-delay scheduling events hidden)")
    total = path_delay_sum(segments)
    exact = total == result.end_time
    print(
        f"critical path: {len(segments)} events, delays sum to {total:.2f}; "
        f"makespan {result.end_time:.2f} "
        f"({'exact' if exact else 'MISMATCH'}, seed {_format_seed(result.seed)})"
    )
    if segments:
        print(f"bottleneck: {bottleneck_label(segments)}")

    print()
    print("== per-operation slack (10 tightest) ==")
    slack = slack_by_label(result.trace, end_time=result.end_time)
    tight = sorted(slack.items(), key=lambda item: (item[1], item[0]))[:10]
    print(render_table(("event", "slack"), [(label, f"{value:.2f}") for label, value in tight]))
    return 0 if exact else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs.causal import path_delay_sum
    from repro.obs.spans import spans_to_dicts

    design, provenance, result, segments = _profiled_run(args)

    lines: List[str] = []
    for entry in spans_to_dicts():
        lines.append(json.dumps({"type": "span", **entry}, sort_keys=True, default=str))
    for record in provenance:
        lines.append(json.dumps({"type": "provenance", **record.to_dict()}, sort_keys=True, default=str))
    for event in result.trace.to_dicts():
        lines.append(json.dumps({"type": "event", **event}, sort_keys=True, default=str))
    summary = {
        "type": "summary",
        "workload": args.workload,
        "level": args.level,
        "seed": result.seed,
        "makespan": result.end_time,
        "events_processed": result.events_processed,
        "critical_path_events": len(segments),
        "critical_path_delay_sum": path_delay_sum(segments),
        "provenance_records": len(provenance),
    }
    lines.append(json.dumps(summary, sort_keys=True, default=str))

    if args.jsonl:
        with open(args.jsonl, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        print(f"wrote {args.jsonl} ({len(lines)} records)")
    else:
        for line in lines:
            print(line)
    return 0


def _cmd_explore_space(args: argparse.Namespace) -> int:
    """Sharded parameter-space mode (``--space`` / ``--shards``)."""
    from repro.cache.shards import explore_space
    from repro.cache.space import ParameterSpace
    from repro.errors import SpaceError

    try:
        if args.space:
            space = ParameterSpace.from_file(args.space)
        else:
            args.workload = _resolve_workload(args)
            space = ParameterSpace.for_workload(args.workload)
    except SpaceError as exc:
        print(f"repro explore: {exc}")
        return 2
    injector = None
    if args.inject_fail is not None:
        from repro.resilience import parse_inject_spec

        injector = parse_inject_spec(args.inject_fail)
    run_dir = args.resume or args.run_dir
    shards = args.shards or 2

    live = None
    if args.live_frontier:
        last = {"size": 0, "best": None}

        def live(completed, total, frontier, point):
            best = frontier.best()
            snapshot = (len(frontier), None if best is None else best.objectives())
            if snapshot == (last["size"], last["best"]):
                return
            last["size"], last["best"] = snapshot
            if best is not None:
                print(
                    f"[{completed}/{total}] frontier={len(frontier)} "
                    f"best=(channels={best.channels}, states={best.total_states}, "
                    f"makespan={best.makespan:.1f})",
                    flush=True,
                )

    try:
        result = explore_space(
            space,
            shards=shards,
            workers_per_shard=args.workers or 1,
            run_dir=run_dir,
            resume=args.resume is not None,
            live=live,
            stop_after=args.stop_after,
            fault_injector=injector,
            point_timeout=args.timeout,
        )
    except KeyboardInterrupt:
        from repro.errors import EXIT_INTERRUPTED

        print("interrupted before any results completed")
        return EXIT_INTERRUPTED
    interrupted = bool(result.stats.get("interrupted"))

    frontier = result.pareto_points()
    frontier_ids = set(map(id, frontier))
    headers = (
        "scenario", "delays", "seed", "configuration",
        "channels", "states", "makespan", "conformant", "proved",
    )
    rows = []
    for point, document in zip(result.points, result.documents):
        if id(point) not in frontier_ids:
            continue
        rows.append(
            (
                document["scenario"],
                document["delay_model"],
                document["sim_seed"],
                point.label,
                point.channels,
                point.total_states,
                f"{point.makespan:.1f}",
                "yes" if point.conformant else "NO",
                "yes" if point.proved else "NO",
            )
        )
    rows.sort(key=lambda row: (row[0], row[1], row[2], row[3]))
    print(render_table(headers, tuple(rows)))
    if args.json:
        from repro.verify.schema import write_envelope

        write_envelope(args.json, "explore", result.documents)
        print(f"wrote {args.json}")
    effective = result.stats.get("effective_shards", shards)
    shard_label = f"{shards} shards"
    if effective != shards:  # clamped to the host's available CPUs
        shard_label += f" ({effective} effective)"
    summary = (
        f"{len(frontier)} Pareto-optimal of {len(result.points)} explored points "
        f"({result.stats['contexts']} contexts x {space.points_per_context} grid points, "
        f"{shard_label})"
    )
    if result.stats.get("resumed_points"):
        summary += f"; resumed {result.stats['resumed_points']} from {run_dir}"
    if result.stats.get("stolen_units"):
        summary += f"; {result.stats['stolen_units']} units stolen"
    if interrupted or not result.complete:
        summary += " (partial sweep)"
    print(summary)
    for error in result.stats.get("shard_errors", ()):
        print(f"SHARD ERROR: {error}")
    failed = result.failed_points()
    if failed:
        print(f"{len(failed)} FAILED points (excluded from the frontier):")
        for point in failed:
            print(f"  {point.label}: {point.error}")
    bad = [p for p in result.points if p.status == "ok" and not p.conformant]
    if bad:
        print(f"{len(bad)} NON-CONFORMANT points:")
        for point in bad:
            print(f"  {point.label}: {point.conformance}")
    from repro.errors import sweep_exit_code

    if result.points and len(failed) == len(result.points):
        print("every point failed to evaluate")
    return sweep_exit_code(
        interrupted=interrupted,
        total=len(result.points),
        failed=len(failed),
        issues=len(bad),
    )


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.cache.store import DEFAULT_CACHE_DIR, ArtifactCache
    from repro.explore import explore_design_space

    if args.space or args.shards or args.resume or args.run_dir:
        return _cmd_explore_space(args)
    args.workload = _resolve_workload(args)
    cdfg = WORKLOADS[args.workload]()
    cache = None
    if args.cache and not args.per_point:
        cache = ArtifactCache(args.cache_dir or DEFAULT_CACHE_DIR)
    injector = None
    if args.inject_fail is not None:
        from repro.resilience import parse_inject_spec

        injector = parse_inject_spec(args.inject_fail)
    try:
        result = explore_design_space(
            cdfg,
            workers=args.workers,
            incremental=not args.per_point,
            cache=cache,
            fault_injector=injector,
            point_timeout=args.timeout,
        )
    except KeyboardInterrupt:
        # interrupted outside the evaluation loop: nothing to report,
        # but whatever the cache already holds is worth keeping
        if cache is not None and cache.directory is not None:
            cache.save()
        from repro.errors import EXIT_INTERRUPTED

        print("interrupted before any results completed")
        return EXIT_INTERRUPTED
    interrupted = bool(result.stats.get("interrupted"))
    frontier = result.pareto_points()
    headers = [
        "configuration",
        "channels",
        "states",
        "makespan",
        "provenance",
        "bottleneck",
        "conformant",
        "proved",
    ]
    probes = {}
    if args.faults:
        from repro.resilience import quick_probe
        from repro.sim.seeding import NOMINAL
        from repro.sim.token_sim import simulate_tokens

        headers.append("faults")
        golden = simulate_tokens(cdfg, seed=NOMINAL).registers
        for point in frontier:
            probes[point.global_transforms] = quick_probe(
                cdfg, point.global_transforms, seed=args.seed, golden=golden
            )
    rows = []
    for point in sorted(frontier, key=lambda p: p.objectives()):
        row = [
            point.label,
            point.channels,
            point.total_states,
            f"{point.makespan:.1f}",
            point.provenance_records,
            point.bottleneck or "-",
            "yes" if point.conformant else "NO",
            "yes" if point.proved else "NO",
        ]
        if args.faults:
            row.append(probes[point.global_transforms])
        rows.append(tuple(row))
    print(render_table(tuple(headers), rows))
    if args.json:
        from repro.verify.schema import write_envelope

        write_envelope(
            args.json, "explore", [point.to_dict() for point in result.points]
        )
        print(f"wrote {args.json}")
    summary = f"{len(frontier)} Pareto-optimal of {len(result.points)} explored points"
    if interrupted:
        summary += " (interrupted — partial sweep)"
    print(summary)
    if "watchdog_active" in result.stats:
        state = (
            "armed"
            if result.stats["watchdog_active"]
            else "NOT ENFORCED (SIGALRM unavailable or off the main thread)"
        )
        print(f"point watchdog: {state} ({args.timeout:g}s per point)")
    if cache is not None:
        stats = cache.stats()
        print(
            f"cache: {stats['hits']} hits, {stats['misses']} misses, "
            f"{stats['entries']} entries in {cache.path}"
        )
    failed = result.failed_points()
    if failed:
        print(f"{len(failed)} FAILED points (excluded from the frontier):")
        for point in failed:
            print(f"  {point.label}: {point.error}")
    bad = [point for point in result.points if point.status == "ok" and not point.conformant]
    if bad:
        print(f"{len(bad)} NON-CONFORMANT points:")
        for point in bad:
            print(f"  {point.label}: {point.conformance}")
    from repro.errors import sweep_exit_code

    if result.points and len(failed) == len(result.points):
        print("every point failed to evaluate")
    return sweep_exit_code(
        interrupted=interrupted,
        total=len(result.points),
        failed=len(failed),
        issues=len(bad),
    )


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import compare_last, record, run_explore_bench

    if args.sim:
        return _cmd_bench_sim(args)
    if args.explore:
        return _cmd_bench_scaling(args)
    if args.serve:
        return _cmd_bench_serve(args)
    bench_name = f"explore_incremental/{args.workload}"
    result = run_explore_bench(
        args.workload,
        workers=args.workers,
        per_point=not args.no_baseline,
        cache_dir=args.cache_dir,
    )
    for key in ("per_point_cold", "incremental_cold", "warm"):
        if key in result:
            print(f"{key:>18}: {result[key]:.3f}s")
    if "speedup_cold" in result:
        print(f"{'speedup':>18}: {result['speedup_cold']}x cold, {result['speedup_warm']}x warm")
    print(
        f"{'grid':>18}: {result['points']} points -> {result['evaluations']} "
        f"evaluations over {result['edges']} trie edges"
    )
    print(f"{'identical':>18}: {result['identical']}")

    comparison = compare_last(bench_name, result["incremental_cold"], path=args.output)
    if args.compare:
        if comparison is None:
            print("no prior run to compare against")
        else:
            direction = "slower" if comparison["ratio"] > 1 else "faster"
            print(
                f"vs last run ({comparison['previous_timestamp']}): "
                f"{comparison['previous']:.3f}s -> {comparison['current']:.3f}s "
                f"({comparison['ratio']:.2f}x, {direction})"
            )
    if not args.no_record:
        metrics = {
            key: result[key]
            for key in (
                "points",
                "evaluations",
                "edges",
                "per_point_cold",
                "warm",
                "speedup_cold",
                "speedup_warm",
                "identical",
            )
            if key in result
        }
        entry = record(
            bench_name, result["incremental_cold"], path=args.output, **metrics
        )
        print(f"recorded {entry['bench']} ({entry['timestamp']})")
    if args.check and not result["identical"]:
        print("FAIL: cold and warm exploration results diverge")
        return 1
    return 0


def _cmd_bench_scaling(args: argparse.Namespace) -> int:
    """Sharded-exploration scaling benchmark (``bench --explore``)."""
    from repro.bench import compare_last, record, run_scaling_bench

    workers = args.workers if args.workers else 4
    bench_name = f"explore_sharded/{args.workload}/shards={args.shards}"
    result = run_scaling_bench(
        shards=args.shards,
        workers=workers,
        workloads=(args.workload,),
        check_resume=not args.no_resume_check,
    )
    print(f"{'space':>18}: {result['points']} points over {result['contexts']} contexts")
    print(f"{'single-pool':>18}: {result['single_pool_wall']:.3f}s "
          f"({result['pps_single']} points/s, {workers} workers)")
    effective = result.get("effective_shards", args.shards)
    shard_label = f"{args.shards} shards"
    if effective != args.shards:  # clamped to the host's available CPUs
        shard_label += f" ({effective} effective)"
    print(f"{'sharded':>18}: {result['sharded_wall']:.3f}s "
          f"({result['pps_sharded']} points/s, {shard_label})")
    print(f"{'speedup':>18}: {result['speedup']}x "
          f"(shard efficiency {result['shard_efficiency']})")
    print(f"{'resume':>18}: {result['resume_wall']:.3f}s "
          f"({result['resume_speedup']}x vs cold)")
    if "identical_resume" in result:
        print(f"{'killed-run resume':>18}: "
              f"{'byte-identical' if result['identical_resume'] else 'DIVERGED'}")
    print(f"{'identical':>18}: {result['identical']}")

    comparison = compare_last(bench_name, result["sharded_wall"], path=args.output)
    if args.compare:
        if comparison is None:
            print("no prior run to compare against")
        else:
            direction = "slower" if comparison["ratio"] > 1 else "faster"
            print(
                f"vs last run ({comparison['previous_timestamp']}): "
                f"{comparison['previous']:.3f}s -> {comparison['current']:.3f}s "
                f"({comparison['ratio']:.2f}x, {direction})"
            )
    if not args.no_record:
        metrics = {
            key: result[key]
            for key in (
                "points", "contexts", "shards", "effective_shards", "workers",
                "single_pool_wall", "pps_single", "pps_sharded",
                "speedup", "shard_efficiency", "stolen_units",
                "resume_wall", "resume_speedup", "identical",
                "identical_resume",
            )
            if key in result
        }
        entry = record(bench_name, result["sharded_wall"], path=args.output, **metrics)
        print(f"recorded {entry['bench']} ({entry['timestamp']})")
    if args.check and not result["identical"]:
        print("FAIL: sharded and single-pool exploration results diverge")
        return 1
    return 0


def _cmd_bench_serve(args: argparse.Namespace) -> int:
    """Duplicate-load test against a live job server (``bench --serve``)."""
    from repro.bench import compare_last, record, run_serve_bench

    clients = args.clients
    bench_name = f"serve_duplicate_load/{args.workload}/clients={clients}"
    result = run_serve_bench(
        clients=clients,
        workload=args.workload,
        workers=args.workers or 4,
    )
    print(f"{'clients':>18}: {result['clients']} duplicate submissions over HTTP")
    print(f"{'submit latency':>18}: p50 {result['p50_ms']}ms, "
          f"p99 {result['p99_ms']}ms, max {result['max_ms']}ms")
    print(f"{'dedup':>18}: {result['dedup_hits']} hits / "
          f"{result['submissions']} submissions "
          f"(rate {result['dedup_hit_rate']}, {result['executions']} execution(s))")
    print(f"{'wall':>18}: {result['wall']:.3f}s until every client had the result")
    print(f"{'identical':>18}: {result['identical']}")

    comparison = compare_last(bench_name, result["wall"], path=args.output)
    if args.compare:
        if comparison is None:
            print("no prior run to compare against")
        else:
            direction = "slower" if comparison["ratio"] > 1 else "faster"
            print(
                f"vs last run ({comparison['previous_timestamp']}): "
                f"{comparison['previous']:.3f}s -> {comparison['current']:.3f}s "
                f"({comparison['ratio']:.2f}x, {direction})"
            )
    if not args.no_record:
        metrics = {
            key: result[key]
            for key in (
                "clients", "workers", "executor", "p50_ms", "p99_ms", "max_ms",
                "dedup_hit_rate", "dedup_hits", "executions", "submissions",
                "identical",
            )
        }
        entry = record(bench_name, result["wall"], path=args.output, **metrics)
        print(f"recorded {entry['bench']} ({entry['timestamp']})")
    if args.check:
        if result["dedup_hit_rate"] < 0.9:
            print(f"FAIL: dedup hit-rate {result['dedup_hit_rate']} below the 0.9 floor")
            return 1
        if not result["identical"]:
            print("FAIL: clients observed diverging result documents")
            return 1
    return 0


def _cmd_bench_sim(args: argparse.Namespace) -> int:
    from repro.bench import compare_last, record, run_batched_sim_bench

    bench_name = f"batched_sim/{args.workload}/trials={args.trials}"
    result = run_batched_sim_bench(args.workload, trials=args.trials)
    print(f"{'scalar':>18}: {result['scalar_wall']:.3f}s")
    print(f"{'batched':>18}: {result['batched_wall']:.3f}s")
    print(f"{'speedup':>18}: {result['speedup']}x")
    print(f"{'identical':>18}: {result['identical']}")

    comparison = compare_last(bench_name, result["batched_wall"], path=args.output)
    if args.compare:
        if comparison is None:
            print("no prior run to compare against")
        else:
            direction = "slower" if comparison["ratio"] > 1 else "faster"
            print(
                f"vs last run ({comparison['previous_timestamp']}): "
                f"{comparison['previous']:.3f}s -> {comparison['current']:.3f}s "
                f"({comparison['ratio']:.2f}x, {direction})"
            )
    if not args.no_record:
        entry = record(
            bench_name,
            result["batched_wall"],
            path=args.output,
            scalar_wall=result["scalar_wall"],
            batched_wall=result["batched_wall"],
            speedup=result["speedup"],
            identical=result["identical"],
            trials=result["trials"],
        )
        print(f"recorded {entry['bench']} ({entry['timestamp']})")
    if args.check and not result["identical"]:
        print("FAIL: scalar and batched campaign reports diverge")
        return 1
    return 0


def _cmd_verify_replay(args: argparse.Namespace) -> int:
    """Re-derive a proof certificate file and byte-compare (``--replay``)."""
    import json

    from repro.verify import replay_flow_report
    from repro.verify.schema import load_envelope

    with open(args.replay, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, dict) and "reports" in payload:
        documents = load_envelope(payload)["reports"]
    else:
        documents = [payload]
    ok = True
    for document in documents:
        identical, message = replay_flow_report(document)
        ok = ok and identical
        print(("REPLAYED " if identical else "DIVERGED ") + message)
    return 0 if ok else 1


def _cmd_verify_proofs(args: argparse.Namespace, names: List[str]) -> int:
    """Flow-equivalence proof mode (``--proofs`` / ``--proofs-json``)."""
    from repro.verify import prove_workload
    from repro.verify.schema import write_envelope

    reports = []
    for name in names:
        report = prove_workload(name, minimize=args.minimize)
        reports.append(report)
        print(report.summary())
        for proof in report.counterexamples():
            print(f"  counterexample {proof.stage}[{proof.subject}]: "
                  f"{proof.counterexample}")
    if args.proofs_json:
        write_envelope(
            args.proofs_json, "flow-proofs", [report.to_dict() for report in reports]
        )
        print(f"wrote {args.proofs_json}")
    return 0 if all(report.proved for report in reports) else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify import fuzz_workload
    from repro.workloads import workload_names

    if args.replay:
        return _cmd_verify_replay(args)
    if args.workload is None and not getattr(args, "workload_from", None):
        print("repro verify: a workload (or 'all') is required unless --replay is given")
        return 2
    args.workload = _resolve_workload(args, extra=("all",))
    names = list(workload_names()) if args.workload == "all" else [args.workload]
    if args.proofs or args.proofs_json:
        return _cmd_verify_proofs(args, names)
    reports = []
    for name in names:
        report = fuzz_workload(
            name,
            runs=args.runs,
            seed=args.seed,
            budget=args.budget,
            shrink=not args.no_shrink,
        )
        reports.append(report)
        print(report.summary())
    if args.json:
        from repro.verify.schema import write_envelope

        write_envelope(args.json, "verify", [report.to_dict() for report in reports])
        print(f"wrote {args.json}")
    conformant = all(report.conformant for report in reports)
    if args.timing_samples:
        from repro.verify import sampled_timing_campaign

        timing_reports = []
        for name in names:
            timing = sampled_timing_campaign(
                name, samples=args.timing_samples, seed=args.seed
            )
            timing_reports.append(timing)
            print(timing.summary())
        if args.timing_json:
            import json

            payload = [timing.to_dict() for timing in timing_reports]
            with open(args.timing_json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
            print(f"wrote {args.timing_json}")
        conformant = conformant and all(t.conformant for t in timing_reports)
    return 0 if conformant else 1


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.resilience import run_campaign

    args.workload = _resolve_workload(args)

    if args.batched or args.mc_samples:
        from repro.errors import EXIT_FATAL
        from repro.sim.batched import HAVE_NUMPY, NUMPY_HINT

        if not HAVE_NUMPY:
            print(NUMPY_HINT)
            return EXIT_FATAL
    report = run_campaign(
        args.workload,
        seed=args.seed,
        trials=args.trials,
        scale_max=args.scale_max,
        magnitude_max=args.magnitude,
        batched=args.batched,
        mc_samples=args.mc_samples,
        spot_check=args.spot_check,
    )
    print(report.summary())
    failed_trials = [trial for trial in report.trials if not trial.ok]
    for trial in failed_trials:
        print(f"  trial {trial.index}: {trial.status} — {trial.detail}")
    if args.json:
        from repro.verify.schema import write_envelope

        write_envelope(args.json, "faults", [report.to_dict()])
        print(f"wrote {args.json}")
    from repro.errors import sweep_exit_code

    return sweep_exit_code(issues=0 if report.healthy else 1)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.errors import EXIT_INTERRUPTED, EXIT_ISSUES, EXIT_OK
    from repro.resilience.pool import RetryPolicy
    from repro.serve.server import ServerConfig, serve_forever

    policy = RetryPolicy(
        max_retries=args.max_retries,
        base_delay=args.base_delay,
        max_delay=args.max_delay,
        seed=args.seed,
    )
    if args.drill:
        import tempfile

        from repro.serve.chaos import chaos_drill, format_drill_report

        with tempfile.TemporaryDirectory(prefix="repro-serve-drill-") as workdir:
            report = chaos_drill(
                workdir, seed=args.seed, executor=args.executor
            )
        print(format_drill_report(report))
        return EXIT_OK if report["ok"] else EXIT_ISSUES

    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        executor=args.executor,
        queue_depth=args.queue_depth,
        client_cap=args.client_cap,
        job_timeout=args.timeout,
        policy=policy,
        drain_grace=args.drain_grace,
    )
    import asyncio

    try:
        asyncio.run(serve_forever(args.store, config))
    except KeyboardInterrupt:
        return EXIT_INTERRUPTED
    return EXIT_OK


def _cmd_dot(args: argparse.Namespace) -> int:
    args.workload = _resolve_workload(args)
    cdfg = WORKLOADS[args.workload]()
    if args.optimized:
        cdfg = optimize_global(cdfg).cdfg
    text = to_dot(cdfg, title=f"{args.workload} ({'optimized' if args.optimized else 'input'})")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_vcd(args: argparse.Namespace) -> int:
    from repro.sim.trace import VcdTracer

    args.workload = _resolve_workload(args)
    design, __ = _build_design(args.workload, args.level)
    system = ControllerSystem(design, seed=args.seed)
    tracer = VcdTracer(system)
    result = tracer.run()
    with open(args.output, "w", encoding="utf-8") as handle:
        tracer.write(handle)
    print(f"wrote {args.output} ({len(tracer.changes)} value changes, "
          f"makespan {result.end_time:.1f}, seed {_format_seed(result.seed)})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Asynchronous distributed control synthesis (Theobald/Nowick DAC'01 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("tables", help="regenerate every paper table/figure")

    compile_cmd = sub.add_parser(
        "compile", help="compile a Python-subset kernel file to a scheduled CDFG"
    )
    compile_cmd.add_argument("file", help="path to a .py file defining the kernel")
    compile_cmd.add_argument(
        "--kernel", default=None, help="function name when the file defines several"
    )
    compile_cmd.add_argument(
        "--bounds",
        default=None,
        metavar="SPEC",
        help="per-class functional-unit bounds, e.g. MUL=2,ALU=1",
    )

    def _add_workload_arguments(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "workload",
            nargs="?",
            default=None,
            help="registered workload name (or use --workload-from)",
        )
        command.add_argument(
            "--workload-from",
            default=None,
            metavar="FILE[:KERNEL]",
            help="compile FILE with the Python-subset frontend and run "
            "on the resulting kernel instead of a registered workload",
        )
        command.add_argument(
            "--bounds",
            default=None,
            metavar="SPEC",
            help="functional-unit bounds for --workload-from, e.g. MUL=2,ALU=1",
        )

    for name, help_text in (
        ("synthesize", "run the synthesis flow and print the controllers"),
        ("simulate", "execute a synthesized design"),
        ("vcd", "dump a VCD waveform of a run"),
        ("profile", "spans, provenance and simulation critical path"),
        ("trace", "stream spans/provenance/events as JSONL"),
    ):
        command = sub.add_parser(name, help=help_text)
        _add_workload_arguments(command)
        command.add_argument("--level", choices=LEVELS, default="gt+lt")
        command.add_argument(
            "--seed",
            type=_parse_seed,
            default=0,
            help="delay sampling: 'nominal', 'random' or an integer (default 0)",
        )
        if name == "synthesize":
            command.add_argument("--verbose", action="store_true")
            command.add_argument(
                "--timings",
                action="store_true",
                help="print per-pass wall time after synthesis",
            )
        if name == "vcd":
            command.add_argument("--output", "-o", default="trace.vcd")
        if name == "trace":
            command.add_argument(
                "--jsonl", default=None, help="write JSONL here instead of stdout"
            )

    explore = sub.add_parser("explore", help="design-space exploration")
    _add_workload_arguments(explore)
    explore.add_argument(
        "--workers",
        type=int,
        default=None,
        help="evaluate points on a process pool (0 = one per CPU; default serial)",
    )
    explore.add_argument(
        "--cache",
        dest="cache",
        action="store_true",
        default=True,
        help="persist the artifact cache across runs (the default)",
    )
    explore.add_argument(
        "--no-cache",
        dest="cache",
        action="store_false",
        help="skip the on-disk cache (in-process sharing still applies)",
    )
    explore.add_argument(
        "--cache-dir",
        default=None,
        help="artifact cache location (default .repro-cache/)",
    )
    explore.add_argument(
        "--per-point",
        action="store_true",
        help="use the historical fully-independent per-point path",
    )
    explore.add_argument(
        "--faults",
        action="store_true",
        help="add a fault-campaign verdict column to the frontier table",
    )
    explore.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for the --faults probes (default 0)",
    )
    explore.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-point wall-clock deadline in seconds (timed-out points fail)",
    )
    explore.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write every explored point (not just the frontier) to "
        "PATH as a repro-report/v1 envelope",
    )
    explore.add_argument(
        "--inject-fail",
        default=None,
        metavar="SPEC",
        help="deterministically fail the GT subsets in SPEC, e.g. "
        "'GT1+GT2,GT3' ('-' for the no-GT point) — for testing the "
        "fault-tolerant sweep",
    )
    explore.add_argument(
        "--space",
        default=None,
        metavar="FILE",
        help="explore a repro-space/v1 parameter space (scenarios x "
        "delay models x seeds x GT/LT grids) instead of one workload's "
        "fixed grid; implies the sharded engine",
    )
    explore.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="run the sweep on N work-stealing shards (each with "
        "--workers pool processes); default 2 in space mode",
    )
    explore.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help="journal every completed point to DIR so a killed run can "
        "be resumed exactly (sharded mode)",
    )
    explore.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help="resume a journaled run from DIR (bit-identical to an "
        "uninterrupted run); implies --run-dir DIR",
    )
    explore.add_argument(
        "--live-frontier",
        action="store_true",
        help="stream the incremental Pareto skyline while points land "
        "(sharded mode)",
    )
    explore.add_argument(
        "--stop-after",
        type=int,
        default=None,
        metavar="N",
        help="stop the sharded sweep after N newly-completed points "
        "(deterministic killed-run drills; the journal stays resumable)",
    )

    bench = sub.add_parser(
        "bench", help="benchmark the exploration sweep and record BENCH_scaling.json"
    )
    bench.add_argument("workload", nargs="?", default="diffeq", choices=sorted(WORKLOADS))
    bench.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool width for every measured sweep (default serial)",
    )
    bench.add_argument(
        "--compare",
        action="store_true",
        help="print the regression ratio against the last recorded run",
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero if cold and warm results diverge (CI gate)",
    )
    bench.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the per-point baseline sweep (faster, no speedup numbers)",
    )
    bench.add_argument(
        "--no-record",
        action="store_true",
        help="measure only; do not append to BENCH_scaling.json",
    )
    bench.add_argument(
        "--output",
        default=None,
        help="results file (default BENCH_scaling.json at the repo root)",
    )
    bench.add_argument(
        "--cache-dir",
        default=None,
        help="bench cache directory (WIPED before the cold run; default a temp dir)",
    )
    bench.add_argument(
        "--sim",
        action="store_true",
        help="benchmark the batched max-plus simulation engine against "
        "the scalar kernel on a full fault campaign instead of the "
        "exploration sweep (--check fails on any report divergence)",
    )
    bench.add_argument(
        "--trials",
        type=int,
        default=256,
        help="randomized fault trials for --sim (default 256)",
    )
    bench.add_argument(
        "--explore",
        action="store_true",
        help="benchmark sharded parameter-space exploration against the "
        "single-pool path on a 1k-point space (records points/sec, "
        "shard efficiency, and resume speedups; --check fails on any "
        "result divergence)",
    )
    bench.add_argument(
        "--shards",
        type=int,
        default=4,
        help="shard count for --explore (default 4)",
    )
    bench.add_argument(
        "--no-resume-check",
        action="store_true",
        help="skip the killed-run resume drill in --explore (faster)",
    )
    bench.add_argument(
        "--serve",
        action="store_true",
        help="duplicate-load test against a live job server: N clients "
        "submit the same job over HTTP; records submit-latency p50/p99 "
        "and the dedup hit-rate (--check fails below the 0.9 floor or "
        "on any result divergence)",
    )
    bench.add_argument(
        "--clients",
        type=int,
        default=64,
        help="concurrent HTTP clients for --serve (default 64)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the crash-safe synthesis job server (HTTP/JSON)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8321,
                       help="listen port (0 picks an ephemeral one)")
    serve.add_argument(
        "--store",
        default=".repro-cache/serve.sqlite3",
        help="durable job store (SQLite WAL); restartable across kills",
    )
    serve.add_argument("--workers", type=int, default=2,
                       help="pool width for job execution")
    serve.add_argument(
        "--executor",
        choices=("process", "thread"),
        default="process",
        help="worker pool kind (process pools survive worker kills "
        "via rebuild; thread pools are lighter for small jobs)",
    )
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="admitted-but-unfinished jobs before 429 shed")
    serve.add_argument("--client-cap", type=int, default=8,
                       help="per-client concurrent job cap before 429 shed")
    serve.add_argument("--timeout", type=float, default=None,
                       help="per-job wall deadline in seconds (default none)")
    serve.add_argument("--max-retries", type=int, default=2,
                       help="retry budget for transient worker deaths")
    serve.add_argument("--base-delay", type=float, default=0.05,
                       help="first retry backoff in seconds")
    serve.add_argument("--max-delay", type=float, default=2.0,
                       help="backoff ceiling in seconds")
    serve.add_argument("--seed", type=int, default=0,
                       help="seed for the jittered backoff (and --drill)")
    serve.add_argument("--drain-grace", type=float, default=30.0,
                       help="seconds SIGTERM waits for running jobs")
    serve.add_argument(
        "--drill",
        action="store_true",
        help="run the chaos acceptance drill (kills, drops, torn rows, "
        "crash + resume) in a scratch directory and exit non-zero on "
        "any lost or diverging job",
    )

    verify = sub.add_parser(
        "verify",
        help="differential conformance fuzzing of every transform level",
    )
    _add_workload_arguments(verify)
    verify.add_argument("--runs", type=int, default=20, help="cases per workload")
    verify.add_argument("--seed", type=int, default=0, help="campaign master seed")
    verify.add_argument(
        "--budget",
        type=float,
        default=None,
        help="stop the campaign after this many seconds",
    )
    verify.add_argument("--json", default=None, help="write the VerifyReport(s) to this path")
    verify.add_argument(
        "--proofs",
        action="store_true",
        help="run the flow-equivalence proof engine instead of the "
        "fuzzer: discharge symbolic per-pass obligations and print one "
        "certificate line per GT/LT application",
    )
    verify.add_argument(
        "--proofs-json",
        default=None,
        metavar="PATH",
        help="write the FlowProof certificates to PATH (implies --proofs)",
    )
    verify.add_argument(
        "--minimize",
        action="store_true",
        help="with --proofs: also run and certify the post-extraction "
        "state-minimization pass",
    )
    verify.add_argument(
        "--replay",
        default=None,
        metavar="PATH",
        help="re-derive the certificates in PATH and byte-compare "
        "(the workload argument is ignored)",
    )
    verify.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failing cases as found, without minimization",
    )
    verify.add_argument(
        "--timing-samples",
        type=int,
        default=0,
        metavar="N",
        help="also run a sampled-timing campaign: N batched delay "
        "samples per transform level, each cross-checked bit-for-bit "
        "against the scalar simulator (default 0 = off; needs numpy)",
    )
    verify.add_argument(
        "--timing-json",
        default=None,
        help="write the sampled-timing report(s) to this path",
    )

    faults = sub.add_parser(
        "faults",
        help="delay-fault campaign: GT3 slack, GT5 skew, randomized trials",
    )
    _add_workload_arguments(faults)
    faults.add_argument("--seed", type=int, default=0, help="campaign seed (default 0)")
    faults.add_argument(
        "--trials", type=int, default=8, help="randomized fault trials (default 8)"
    )
    faults.add_argument(
        "--scale-max",
        type=float,
        default=16.0,
        help="cap of the geometric slowdown ladder (default 16)",
    )
    faults.add_argument(
        "--magnitude",
        type=float,
        default=1.0,
        help="largest random fault magnitude (default 1.0 = 2x slowdown)",
    )
    faults.add_argument(
        "--json", default=None, help="write the campaign report to this path"
    )
    faults.add_argument(
        "--batched",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="route every stage simulation through the batched max-plus "
        "engine (bit-exact vs the scalar kernel, so the report is "
        "byte-identical; needs numpy). --no-batched is the scalar "
        "default.",
    )
    faults.add_argument(
        "--mc-samples",
        type=int,
        default=0,
        metavar="N",
        help="add the GT3 Monte-Carlo never-last re-proof over N "
        "sampled delay assignments (default 0 = off; needs numpy)",
    )
    faults.add_argument(
        "--spot-check",
        type=float,
        default=None,
        metavar="FRAC",
        help="fraction of batched samples re-run through the scalar "
        "oracle at runtime (default: engine default, 1/64; 0 disables)",
    )

    dot = sub.add_parser("dot", help="export a CDFG as Graphviz")
    _add_workload_arguments(dot)
    dot.add_argument("--optimized", action="store_true")
    dot.add_argument("--output", "-o", default=None)

    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "tables": _cmd_tables,
        "compile": _cmd_compile,
        "synthesize": _cmd_synthesize,
        "simulate": _cmd_simulate,
        "profile": _cmd_profile,
        "trace": _cmd_trace,
        "explore": _cmd_explore,
        "bench": _cmd_bench,
        "verify": _cmd_verify,
        "faults": _cmd_faults,
        "serve": _cmd_serve,
        "dot": _cmd_dot,
        "vcd": _cmd_vcd,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
