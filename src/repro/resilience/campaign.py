"""Delay-fault campaigns: stress the assumption-dependent transforms.

GT3 deletes constraint arcs justified only by relative-timing proofs
over the delay model's ``[min, max]`` intervals; GT5 merges channels
whose safety rests on the serialization GT5.2 inserted.  Both edits
are *assumption-dependent*: they are provably safe inside the model,
and silently unsafe outside it.  A fault campaign measures how far
outside the model a design can drift before it breaks:

1. **GT3 slack sweep** — for every arc GT3 removed, slow the FU that
   sourced the arc (the event the proof said would "never be last")
   through a geometric ladder of scale factors.  At each factor the
   never-last proof is *re-derived* on the pre-GT3 graph under the
   faulted delay model (would GT3 still remove this arc?), and the
   transformed design is re-simulated against the golden register
   file.  The largest factor passing both is the removal's *measured
   timing slack*; the first failure distinguishes
   ``proof-invalidated`` (the timing argument no longer holds — the
   design has left its validated envelope, even if this run happened
   to survive) from an observable simulation failure.
2. **GT5 skew sweep** — for every merged multi-arc channel, lag each
   receiving FU the same way and watch the merged-wire occupancy
   checker: a violation means two events were simultaneously
   outstanding on one wire, the exact failure GT5's concurrency
   argument must exclude.
3. **Randomized trials** — seeded :class:`~repro.resilience.faults.FaultPlan`
   draws perturb arbitrary ``(fu, operator)`` delays; each trial must
   keep the golden registers, stay violation-free, and hold the
   analytic makespan bound ``nominal x worst-case-slowdown``.
4. **GT3 Monte-Carlo re-proof** (optional, ``mc_samples > 0``) — the
   analytic never-last proof is checked empirically: B sampled delay
   assignments of the *pre-GT3* graph are evaluated at once by the
   batched max-plus engine, counting per removed arc how often its
   token arrival actually achieved the consumer's firing time.  A
   nonzero count does not contradict the interval proof (samples are
   drawn inside the intervals the proof already covers) but measures
   how close each removal runs to its envelope.

Everything is deterministic in the campaign seed: the same seed
produces a bit-identical JSON report (no wall-clock anywhere in it),
so a verdict in CI can be replayed locally from the report alone.
``batched=True`` routes every nominal-mode stage simulation through
:class:`~repro.sim.batched.BatchedTokenEngine` instead of the scalar
event loop; the engine is bit-exact against the scalar kernel (flagged
samples fall back to scalar runs for their verdicts), so the report is
byte-identical either way — only the wall-clock changes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import DeadlockError, SimulationError
from repro.obs.spans import span
from repro.resilience.faults import FaultPlan, FaultSpec, fault_targets, unit_slowdown
from repro.sim.seeding import NOMINAL, node_stream_seed
from repro.sim.token_sim import simulate_tokens
from repro.timing.delays import DelayModel
from repro.transforms import optimize_global
from repro.transforms.scripts import STANDARD_SEQUENCE

#: default geometric ladder of slowdown factors for the sweeps
DEFAULT_SCALE_LADDER = (1.5, 2.0, 4.0, 8.0, 16.0)

#: float-comparison guard for the makespan bound
_BOUND_EPS = 1e-9


@dataclass
class ArcSlackEntry:
    """Measured timing slack of one GT3 arc removal."""

    arc: str
    src: str
    dst: str
    fu: str
    operators: List[str]
    witness: str
    #: largest slowdown factor that still reproduced the golden run
    max_passing_scale: float
    #: first factor that broke it (None: survived the whole ladder)
    failing_scale: Optional[float] = None
    failure_mode: Optional[str] = None
    failure_detail: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


@dataclass
class ChannelSkewEntry:
    """Occupancy behaviour of one GT5-merged channel under skew."""

    channel: str
    src_fu: str
    stressed_fu: str
    arcs: int
    #: first skew factor that produced an occupancy violation
    first_violating_skew: Optional[float] = None
    detail: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


@dataclass
class Gt3MonteCarloEntry:
    """Empirical never-last evidence for one GT3 arc removal.

    ``last_count`` counts sampled delay assignments (out of
    ``samples``) in which the removed arc's token arrival achieved its
    consumer's firing time — i.e. the arc *could* have been the last
    enabling constraint.  ``suspect_samples`` counts samples whose
    batched timeline could not be trusted (conservatively counted as
    could-be-last for every arc)."""

    arc: str
    src: str
    dst: str
    samples: int
    last_count: int
    never_last: bool
    suspect_samples: int = 0

    def to_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


@dataclass
class FaultTrial:
    """One randomized delay-fault simulation."""

    index: int
    plan: Dict[str, object]
    status: str  # ok | register-mismatch | violation | deadlock | error | bound-exceeded
    detail: Optional[str] = None
    makespan: Optional[float] = None
    makespan_bound: Optional[float] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


@dataclass
class CampaignReport:
    """Deterministic outcome of one fault campaign."""

    workload: str
    seed: int
    trials_requested: int
    scale_ladder: List[float] = field(default_factory=list)
    magnitude_max: float = 1.0
    baseline_conformant: bool = False
    baseline_detail: Optional[str] = None
    nominal_makespan: float = 0.0
    arc_slack: List[ArcSlackEntry] = field(default_factory=list)
    channel_skew: List[ChannelSkewEntry] = field(default_factory=list)
    trials: List[FaultTrial] = field(default_factory=list)
    #: populated only when the campaign ran with ``mc_samples > 0``
    gt3_mc: List[Gt3MonteCarloEntry] = field(default_factory=list)
    mc_samples: int = 0

    @property
    def trials_ok(self) -> int:
        return sum(1 for trial in self.trials if trial.ok)

    @property
    def healthy(self) -> bool:
        """The zero-fault baseline reproduced the golden run."""
        return self.baseline_conformant

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "seed": self.seed,
            "trials_requested": self.trials_requested,
            "scale_ladder": list(self.scale_ladder),
            "magnitude_max": self.magnitude_max,
            "baseline_conformant": self.baseline_conformant,
            "baseline_detail": self.baseline_detail,
            "nominal_makespan": self.nominal_makespan,
            "arc_slack": [entry.to_dict() for entry in self.arc_slack],
            "channel_skew": [entry.to_dict() for entry in self.channel_skew],
            "trials": [trial.to_dict() for trial in self.trials],
            "trials_ok": self.trials_ok,
            "gt3_mc": [entry.to_dict() for entry in self.gt3_mc],
            "mc_samples": self.mc_samples,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CampaignReport":
        report = cls(
            workload=str(payload["workload"]),
            seed=int(payload["seed"]),  # type: ignore[arg-type]
            trials_requested=int(payload["trials_requested"]),  # type: ignore[arg-type]
            scale_ladder=[float(x) for x in payload.get("scale_ladder", [])],  # type: ignore[union-attr]
            magnitude_max=float(payload.get("magnitude_max", 1.0)),  # type: ignore[arg-type]
            baseline_conformant=bool(payload.get("baseline_conformant")),
            baseline_detail=payload.get("baseline_detail"),  # type: ignore[arg-type]
            nominal_makespan=float(payload.get("nominal_makespan", 0.0)),  # type: ignore[arg-type]
        )
        report.arc_slack = [ArcSlackEntry(**item) for item in payload.get("arc_slack", [])]  # type: ignore[union-attr]
        report.channel_skew = [
            ChannelSkewEntry(**item) for item in payload.get("channel_skew", [])  # type: ignore[union-attr]
        ]
        report.trials = [FaultTrial(**item) for item in payload.get("trials", [])]  # type: ignore[union-attr]
        report.gt3_mc = [
            Gt3MonteCarloEntry(**item) for item in payload.get("gt3_mc", [])  # type: ignore[union-attr]
        ]
        report.mc_samples = int(payload.get("mc_samples", 0))  # type: ignore[arg-type]
        return report

    def summary(self) -> str:
        verdict = "HEALTHY" if self.healthy else "BASELINE NON-CONFORMANT"
        lines = [
            f"{self.workload}: {verdict} — {self.trials_ok}/{len(self.trials)} fault "
            f"trials ok, {len(self.arc_slack)} GT3 removals swept, "
            f"{len(self.channel_skew)} merged channels skewed (seed {self.seed})"
        ]
        for entry in self.arc_slack:
            fate = (
                f"fails at x{entry.failing_scale:g} ({entry.failure_mode})"
                if entry.failing_scale is not None
                else "never failed"
            )
            lines.append(
                f"  GT3 slack {entry.arc}: {entry.fu} up to x{entry.max_passing_scale:g}, {fate}"
            )
        for entry in self.channel_skew:
            fate = (
                f"occupancy violation at x{entry.first_violating_skew:g}"
                if entry.first_violating_skew is not None
                else "safe across the ladder"
            )
            lines.append(
                f"  GT5 skew {entry.channel} (lagging {entry.stressed_fu}): {fate}"
            )
        for entry in self.gt3_mc:
            fate = (
                "never last"
                if entry.never_last
                else f"last in {entry.last_count}/{entry.samples} samples"
            )
            lines.append(f"  GT3 MC {entry.arc}: {fate}")
        return "\n".join(lines)


def load_report(path: str) -> CampaignReport:
    with open(path, "r", encoding="utf-8") as handle:
        return CampaignReport.from_dict(json.load(handle))


# ----------------------------------------------------------------------
# simulation verdicts
# ----------------------------------------------------------------------
def _verdict_from_result(result, golden) -> Tuple[str, Optional[str], Optional[float]]:
    if result.violations:
        return "violation", result.violations[0], result.end_time
    for register, value in golden.items():
        got = result.registers.get(register)
        if got != value:
            return (
                "register-mismatch",
                f"register {register} = {got!r}, golden says {value!r}",
                result.end_time,
            )
    return "ok", None, result.end_time


def _simulate_verdict(
    cdfg,
    delays: DelayModel,
    golden: Dict[str, float],
    channel_plan=None,
) -> Tuple[str, Optional[str], Optional[float]]:
    """(status, detail, makespan) of one faulted nominal-mode run."""
    try:
        result = simulate_tokens(
            cdfg,
            delay_model=delays,
            seed=NOMINAL,
            strict=False,
            channel_plan=channel_plan,
        )
    except DeadlockError as exc:
        return "deadlock", str(exc), None
    except SimulationError as exc:
        return "error", str(exc), None
    return _verdict_from_result(result, golden)


class _BatchedVerdicts:
    """Batched drop-in for repeated :func:`_simulate_verdict` calls.

    Wraps a :class:`~repro.sim.batched.BatchedTokenEngine` compiled for
    the optimized graph and turns whole lists of fault plans into
    verdict tuples.  Bit-exactness contract: clean samples take their
    makespans straight from the max-plus evaluation (proven identical
    to the scalar kernel), while any sample the engine flags as suspect
    — possible violation, exact tie, merged-wire overlap — is re-run
    through :func:`_simulate_verdict` for the authoritative status,
    detail string, and makespan.  Campaign reports produced through
    this path are byte-identical to scalar ones.
    """

    def __init__(self, cdfg, base: DelayModel, golden, channel_plan, spot_check=None):
        from repro.sim.batched import DEFAULT_SPOT_CHECK, BatchedTokenEngine

        self.cdfg = cdfg
        self.base = base
        self.golden = golden
        self.channel_plan = channel_plan
        self.spot_check = DEFAULT_SPOT_CHECK if spot_check is None else spot_check
        self.engine = BatchedTokenEngine(
            cdfg, delay_model=base, channel_plan=channel_plan, spot_check=self.spot_check
        )
        # the compile run IS the zero-fault baseline simulation
        self.baseline = _verdict_from_result(self.engine.program.reference, golden)

    def for_plans(self, plans) -> List[Tuple[str, Optional[str], Optional[float]]]:
        if not plans:
            return []
        batch = self.engine.run_plans(plans)
        verdicts: List[Tuple[str, Optional[str], Optional[float]]] = []
        for index, plan in enumerate(plans):
            if batch.suspect[index]:
                verdicts.append(
                    _simulate_verdict(
                        self.cdfg, plan.apply(self.base), self.golden,
                        channel_plan=self.channel_plan,
                    )
                )
            else:
                status, detail, __ = self.baseline
                verdicts.append((status, detail, float(batch.makespans[index])))
        return verdicts


def scale_ladder(scale_max: float = 16.0) -> Tuple[float, ...]:
    """The geometric slowdown ladder, clipped at ``scale_max``."""
    return tuple(factor for factor in DEFAULT_SCALE_LADDER if factor <= scale_max)


# ----------------------------------------------------------------------
# the campaign
# ----------------------------------------------------------------------
def run_campaign(
    workload: str,
    seed: int = 0,
    trials: int = 8,
    scale_max: float = 16.0,
    magnitude_max: float = 1.0,
    delays: Optional[DelayModel] = None,
    enabled: Optional[Sequence[str]] = None,
    batched: bool = False,
    mc_samples: int = 0,
    spot_check: Optional[float] = None,
) -> CampaignReport:
    """Run a full fault campaign on ``workload``; fully deterministic.

    ``enabled`` restricts the global-transform script (default: the
    whole canonical GT1..GT5 sequence).  The report carries no
    wall-clock data, so two runs with equal arguments produce
    bit-identical JSON — and because the batched engine is bit-exact
    against the scalar kernel, the same holds across ``batched``
    modes: only wall-clock changes, never a byte of the report.

    ``mc_samples > 0`` adds the GT3 Monte-Carlo never-last re-proof
    (needs numpy regardless of ``batched`` — it is inherently a batch
    computation).  ``spot_check`` tunes the fraction of batched samples
    re-run through the scalar oracle at runtime (None: engine default).
    """
    from repro.workloads import build_workload

    with span("resilience/campaign", workload=workload, seed=seed):
        cdfg = build_workload(workload)
        base = delays or DelayModel()
        ladder = scale_ladder(scale_max)
        report = CampaignReport(
            workload=workload,
            seed=seed,
            trials_requested=trials,
            scale_ladder=list(ladder),
            magnitude_max=magnitude_max,
            mc_samples=mc_samples,
        )

        golden = simulate_tokens(cdfg, seed=NOMINAL).registers
        script = tuple(enabled) if enabled is not None else STANDARD_SEQUENCE
        optimized = optimize_global(cdfg, enabled=script, delays=base)
        plan = optimized.plan

        verdicts: Optional[_BatchedVerdicts] = None
        if batched:
            verdicts = _try_batched_verdicts(
                optimized.cdfg, base, golden, plan, spot_check
            )
        if verdicts is not None:
            status, detail, makespan = verdicts.baseline
        else:
            status, detail, makespan = _simulate_verdict(
                optimized.cdfg, base, golden, channel_plan=plan
            )
        report.baseline_conformant = status == "ok"
        report.baseline_detail = detail
        report.nominal_makespan = makespan if makespan is not None else 0.0

        report.arc_slack = _sweep_gt3_slack(
            cdfg, script, optimized, base, golden, plan, ladder, verdicts=verdicts
        )
        report.channel_skew = _sweep_gt5_skew(
            optimized, base, golden, plan, ladder, verdicts=verdicts
        )
        report.trials = _run_trials(
            optimized, base, golden, plan, seed, trials, magnitude_max,
            nominal_makespan=report.nominal_makespan, verdicts=verdicts,
        )
        if mc_samples > 0:
            report.gt3_mc = _gt3_monte_carlo(
                cdfg, script, optimized, base, seed, mc_samples
            )
    return report


def _try_batched_verdicts(cdfg, base, golden, plan, spot_check):
    """Compile the batched engine, or None for the scalar fallback.

    Falls back when numpy is missing or the design is unbatchable (the
    NOMINAL reference run deadlocks or is unsafe) — cases where the
    scalar path reproduces the exact diagnostic the report needs.
    """
    try:
        from repro.sim.batched import HAVE_NUMPY

        if not HAVE_NUMPY:
            return None
        return _BatchedVerdicts(cdfg, base, golden, plan, spot_check=spot_check)
    except SimulationError:
        return None


def _proof_still_holds(
    base_cdfg, pre_gt3_script, faulted: DelayModel, src: str, dst: str
) -> bool:
    """Would GT3 still remove ``src -> dst`` under the faulted model?

    Re-derives the never-last proof exactly as GT3 does — iterative
    removals on the pre-GT3 graph — rather than replaying a cached
    witness, because earlier removals can change which witness (if
    any) carries a later proof.
    """
    from repro.transforms.gt3_relative_timing import RelativeTimingOptimization

    pre = optimize_global(base_cdfg, enabled=pre_gt3_script, delays=faulted).cdfg
    rerun = RelativeTimingOptimization(delays=faulted).apply(pre)
    for record in rerun.provenance:
        if record.kind != "timed-arc-removed":
            continue
        if record.detail.get("src") == src and record.detail.get("dst") == dst:
            return True
    return False


def _sweep_gt3_slack(
    base_cdfg, script, optimized, base, golden, plan, ladder, verdicts=None
) -> List[ArcSlackEntry]:
    """Stress every GT3-removed arc's source FU through the ladder."""
    try:
        gt3 = optimized.report("GT3")
    except KeyError:
        return []
    # the graph exactly as GT3 saw it: canonical-order transforms up to GT3
    pre_gt3_script = tuple(
        name for name in STANDARD_SEQUENCE if name in script and name < "GT3"
    )
    removals = [
        record for record in gt3.provenance if record.kind == "timed-arc-removed"
    ]
    ladder_plans = {
        factor: {
            record.subject: FaultPlan(
                seed=0,
                specs=tuple(
                    FaultSpec(
                        kind="scale",
                        fu=str(record.detail.get("fu", "")),
                        operator=op,
                        magnitude=factor - 1.0,
                    )
                    for op in (
                        [str(x) for x in record.detail.get("operators", [])] or [None]
                    )
                ),
            )
            for record in removals
        }
        for factor in ladder
    }
    # batched mode evaluates the whole (removal x factor) grid in one
    # pass; the ladder walk below then just reads verdicts (the scalar
    # walk's early break only ever skipped redundant simulations)
    lookup = None
    if verdicts is not None and removals:
        flat = [
            (factor, record.subject, ladder_plans[factor][record.subject])
            for record in removals
            for factor in ladder
        ]
        flat_verdicts = verdicts.for_plans([plan_ for __, __unused, plan_ in flat])
        lookup = {
            (subject, factor): verdict
            for (factor, subject, __), verdict in zip(flat, flat_verdicts)
        }
    entries: List[ArcSlackEntry] = []
    for record in removals:
        fu = str(record.detail.get("fu", ""))
        src = str(record.detail.get("src", ""))
        dst = str(record.detail.get("dst", ""))
        operators = [str(op) for op in record.detail.get("operators", [])] or [None]
        entry = ArcSlackEntry(
            arc=record.subject,
            src=src,
            dst=dst,
            fu=fu,
            operators=[op for op in operators if op is not None],
            witness=str(record.detail.get("witness", "")),
            max_passing_scale=1.0,
        )
        for factor in ladder:
            fault_plan = ladder_plans[factor][record.subject]
            if lookup is not None:
                status, detail, __ = lookup[(record.subject, factor)]
            else:
                status, detail, __ = _simulate_verdict(
                    optimized.cdfg, fault_plan.apply(base), golden, channel_plan=plan
                )
            if status == "ok" and not _proof_still_holds(
                base_cdfg, pre_gt3_script, fault_plan.apply(base), src, dst
            ):
                status = "proof-invalidated"
                detail = (
                    f"at x{factor:g} the never-last proof for {src} -> {dst} "
                    f"no longer holds (simulation still conformant, but the "
                    f"removal is outside its validated timing envelope)"
                )
            if status == "ok":
                entry.max_passing_scale = factor
            else:
                entry.failing_scale = factor
                entry.failure_mode = status
                entry.failure_detail = detail
                break
        entries.append(entry)
    return entries


def _sweep_gt5_skew(
    optimized, base, golden, plan, ladder, verdicts=None
) -> List[ChannelSkewEntry]:
    """Lag each receiver of every merged multi-arc channel."""
    from repro.cdfg.graph import ENV

    # enumerate the (channel, stressed FU, factor) grid up front so the
    # batched path can evaluate it in one engine pass
    grid = []
    for channel in plan.controller_channels():
        if len(channel.arcs) < 2:
            continue
        for stressed in sorted(fu for fu in channel.dst_fus if fu != ENV):
            factors = []
            for factor in ladder:
                specs = unit_slowdown(optimized.cdfg, stressed, factor - 1.0)
                if not specs:
                    break
                factors.append((factor, FaultPlan(seed=0, specs=specs)))
            grid.append((channel, stressed, factors))
    lookup = None
    if verdicts is not None and grid:
        flat = [
            (channel.name, stressed, factor, fault_plan)
            for channel, stressed, factors in grid
            for factor, fault_plan in factors
        ]
        flat_verdicts = verdicts.for_plans([item[3] for item in flat])
        lookup = {
            (name, stressed, factor): verdict
            for (name, stressed, factor, __), verdict in zip(flat, flat_verdicts)
        }
    entries: List[ChannelSkewEntry] = []
    for channel, stressed, factors in grid:
        entry = ChannelSkewEntry(
            channel=channel.name,
            src_fu=channel.src_fu,
            stressed_fu=stressed,
            arcs=len(channel.arcs),
        )
        for factor, fault_plan in factors:
            if lookup is not None:
                status, detail, __ = lookup[(channel.name, stressed, factor)]
            else:
                status, detail, __ = _simulate_verdict(
                    optimized.cdfg, fault_plan.apply(base), golden, channel_plan=plan
                )
            if status == "violation" and f"channel {channel.name}" in (detail or ""):
                entry.first_violating_skew = factor
                entry.detail = detail
                break
        entries.append(entry)
    return entries


def _run_trials(
    optimized, base, golden, plan, seed, trials, magnitude_max, nominal_makespan,
    verdicts=None,
) -> List[FaultTrial]:
    """Seeded randomized fault plans on the fully transformed design."""
    targets = fault_targets(optimized.cdfg)
    plans = [
        FaultPlan.generate(
            targets, seed=seed * 1_000_003 + index, magnitude_max=magnitude_max
        )
        for index in range(trials)
    ]
    if verdicts is not None:
        outcomes = verdicts.for_plans(plans)
    else:
        outcomes = [
            _simulate_verdict(
                optimized.cdfg, fault_plan.apply(base), golden, channel_plan=plan
            )
            for fault_plan in plans
        ]
    results: List[FaultTrial] = []
    for index, (fault_plan, (status, detail, makespan)) in enumerate(
        zip(plans, outcomes)
    ):
        bound = nominal_makespan * fault_plan.worst_case_slowdown() + _BOUND_EPS
        if status == "ok" and makespan is not None and makespan > bound:
            status = "bound-exceeded"
            detail = f"makespan {makespan} exceeds bound {bound}"
        results.append(
            FaultTrial(
                index=index,
                plan=fault_plan.to_dict(),
                status=status,
                detail=detail,
                makespan=makespan,
                makespan_bound=bound,
            )
        )
    return results


def _gt3_monte_carlo(
    base_cdfg, script, optimized, base, seed, mc_samples
) -> List[Gt3MonteCarloEntry]:
    """Empirical never-last counts for every GT3-removed arc.

    Compiles the *pre-GT3* graph (where the removed arcs still exist)
    and evaluates ``mc_samples`` seeded delay assignments in one batch,
    reading each removed arc's could-be-last indicator.  Sample seeds
    are derived deterministically from the campaign seed, so the
    entries are as reproducible as the rest of the report.
    """
    from repro.sim.batched import BatchedTokenEngine

    try:
        gt3 = optimized.report("GT3")
    except KeyError:
        return []
    removals = [
        record for record in gt3.provenance if record.kind == "timed-arc-removed"
    ]
    if not removals:
        return []
    pre_gt3_script = tuple(
        name for name in STANDARD_SEQUENCE if name in script and name < "GT3"
    )
    pre = optimize_global(base_cdfg, enabled=pre_gt3_script, delays=base).cdfg
    engine = BatchedTokenEngine(pre, delay_model=base)
    seeds = [node_stream_seed(seed, f"gt3-mc:{index}") for index in range(mc_samples)]
    arcs = [
        (str(r.detail.get("src", "")), str(r.detail.get("dst", ""))) for r in removals
    ]
    batch = engine.run_seeded(seeds, arcs=arcs)
    suspect_count = int(batch.suspect.sum())
    entries = []
    for record, key in zip(removals, arcs):
        last_count = int(batch.arc_last[key].sum())
        entries.append(
            Gt3MonteCarloEntry(
                arc=record.subject,
                src=key[0],
                dst=key[1],
                samples=mc_samples,
                last_count=last_count,
                never_last=last_count == 0,
                suspect_samples=suspect_count,
            )
        )
    return entries


# ----------------------------------------------------------------------
# fast per-point probe for `repro explore --faults`
# ----------------------------------------------------------------------
def quick_probe(
    cdfg,
    global_transforms: Sequence[str],
    delays: Optional[DelayModel] = None,
    seed: int = 0,
    trials: int = 3,
    magnitude_max: float = 0.5,
    golden: Optional[Dict[str, float]] = None,
) -> str:
    """A tiny fault verdict for one exploration point.

    Token-level only (local transforms do not change token semantics):
    re-synthesizes the point's GT subset, runs ``trials`` seeded fault
    plans, and folds the verdicts into a short column value —
    ``ok(n)`` when all pass, else ``FAIL@<trial>:<status>``.
    """
    base = delays or DelayModel()
    if golden is None:
        golden = simulate_tokens(cdfg, seed=NOMINAL).registers
    optimized = optimize_global(cdfg, enabled=tuple(global_transforms), delays=base)
    targets = fault_targets(optimized.cdfg)
    for index in range(trials):
        fault_plan = FaultPlan.generate(
            targets, seed=seed * 1_000_003 + index, magnitude_max=magnitude_max
        )
        status, __, __unused = _simulate_verdict(
            optimized.cdfg, fault_plan.apply(base), golden, channel_plan=optimized.plan
        )
        if status != "ok":
            return f"FAIL@{index}:{status}"
    return f"ok({trials})"
