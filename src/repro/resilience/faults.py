"""Seeded, deterministic delay-fault plans.

A :class:`FaultPlan` is a reproducible perturbation of a
:class:`~repro.timing.delays.DelayModel`: a tuple of
:class:`FaultSpec` entries, each scaling, widening or pinning the
delay interval of one ``(fu, operator)`` pair.  Plans are pure data —
applying one never mutates the base model (it goes through
:meth:`DelayModel.with_override`), and generating one from a seed is
bit-reproducible, so an entire fault campaign can be replayed from its
JSON report.

Fault kinds (``magnitude`` is the *extra* perturbation, so magnitude
``0.0`` is always the identity for ``scale`` and ``jitter``):

``scale``
    multiply the whole interval by ``1 + magnitude`` — a uniformly
    slower unit (process corner, voltage droop);
``jitter``
    stretch only the upper bound by ``(high - low) * magnitude`` — a
    noisier unit whose worst case degrades but whose best case holds;
``stuck_slow``
    collapse the interval to ``high * (1 + magnitude)`` — a unit stuck
    at (or beyond) its slowest datasheet corner, with no variation.

Faults target ``(fu, operator)`` pairs the workload actually executes
(the same discipline as the conformance fuzzer's delay overrides):
perturbing a whole unit would also slow its register latches, stepping
outside the bundled-data timing assumption the local transforms rely
on.  Channel skew is expressed by slowing the FU on one side of the
channel — :func:`unit_slowdown` builds the per-operator spec set for
that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.timing.delays import DelayModel

FAULT_KINDS = ("scale", "jitter", "stuck_slow")


@dataclass(frozen=True)
class FaultSpec:
    """One delay perturbation of one ``(fu, operator)`` pair."""

    kind: str  # "scale" | "jitter" | "stuck_slow"
    fu: str
    operator: Optional[str]
    magnitude: float

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.magnitude < 0:
            raise ValueError(f"negative fault magnitude {self.magnitude}")

    def perturb(self, interval: Tuple[float, float]) -> Tuple[float, float]:
        """The faulted ``[min, max]`` interval."""
        low, high = interval
        factor = 1.0 + self.magnitude
        if self.kind == "scale":
            return (low * factor, high * factor)
        if self.kind == "jitter":
            return (low, high + (high - low) * self.magnitude)
        # stuck_slow: pinned at (or beyond) the slowest corner
        pinned = high * factor
        return (pinned, pinned)

    def worst_case_slowdown(self) -> float:
        """Upper bound on the nominal-delay ratio this fault can cause.

        ``scale``/``jitter`` move the midpoint by at most ``1 +
        magnitude``; ``stuck_slow`` pins to ``high * (1 + magnitude)``,
        and ``high <= 2 * midpoint`` for any non-negative interval.
        """
        if self.kind == "stuck_slow":
            return 2.0 * (1.0 + self.magnitude)
        return 1.0 + self.magnitude

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "fu": self.fu,
            "operator": self.operator,
            "magnitude": self.magnitude,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultSpec":
        return cls(
            kind=str(payload["kind"]),
            fu=str(payload["fu"]),
            operator=None if payload.get("operator") is None else str(payload["operator"]),
            magnitude=float(payload["magnitude"]),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of delay faults, applicable to any base model."""

    seed: int
    specs: Tuple[FaultSpec, ...] = ()

    def apply(self, base: Optional[DelayModel] = None) -> DelayModel:
        """A faulted copy of ``base`` (never mutates it)."""
        model = base or DelayModel()
        for spec in self.specs:
            interval = model.operator_interval(spec.fu, spec.operator)
            model = model.with_override(spec.fu, spec.operator, spec.perturb(interval))
        return model

    def worst_case_slowdown(self) -> float:
        """Bound on how much any single delay's nominal grew."""
        return max((spec.worst_case_slowdown() for spec in self.specs), default=1.0)

    def to_dict(self) -> Dict[str, object]:
        return {"seed": self.seed, "specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultPlan":
        return cls(
            seed=int(payload["seed"]),  # type: ignore[arg-type]
            specs=tuple(FaultSpec.from_dict(item) for item in payload.get("specs", [])),
        )

    @classmethod
    def generate(
        cls,
        targets: Sequence[Tuple[str, str]],
        seed: int,
        count: Optional[int] = None,
        magnitude_max: float = 1.0,
        kinds: Sequence[str] = FAULT_KINDS,
    ) -> "FaultPlan":
        """Draw a random plan over ``targets`` — deterministic in ``seed``.

        ``targets`` are the ``(fu, operator)`` pairs eligible for
        perturbation (see :func:`fault_targets`); ``count`` defaults to
        1–3 faults drawn from the seed.  Magnitudes are quantized to
        1/16 so reports stay exactly representable in JSON floats.
        """
        rng = random.Random(seed)
        if not targets:
            return cls(seed=seed, specs=())
        if count is None:
            count = rng.randint(1, min(3, len(targets)))
        specs = []
        for __ in range(count):
            fu, operator = rng.choice(list(targets))
            kind = rng.choice(list(kinds))
            sixteenths = rng.randint(0, int(magnitude_max * 16))
            specs.append(
                FaultSpec(kind=kind, fu=fu, operator=operator, magnitude=sixteenths / 16.0)
            )
        return cls(seed=seed, specs=tuple(specs))


def fault_targets(cdfg) -> List[Tuple[str, str]]:
    """The ``(fu, operator)`` pairs a CDFG's operations exercise."""
    targets = {
        (node.fu, statement.operator)
        for node in cdfg.operation_nodes()
        if node.fu
        for statement in node.statements
        if statement.operator is not None
    }
    return sorted(targets)


def unit_slowdown(
    cdfg, fu: str, magnitude: float, kind: str = "scale"
) -> Tuple[FaultSpec, ...]:
    """Specs slowing every operator ``fu`` executes by the same factor.

    The per-operator form of "this unit is slow": used by the GT5 skew
    sweep to lag one side of a merged channel without touching the
    unit's latch timing.
    """
    return tuple(
        FaultSpec(kind=kind, fu=target_fu, operator=operator, magnitude=magnitude)
        for target_fu, operator in fault_targets(cdfg)
        if target_fu == fu
    )
