"""Crash-tolerant process-pool mapping for exploration sweeps.

``ProcessPoolExecutor.map`` has all-or-nothing semantics: one worker
dying (OOM kill, segfault in a native extension, ``os._exit``) raises
``BrokenProcessPool`` and throws away every completed result.  For a
design-space sweep that is the wrong trade — 63 finished points should
not be lost because point 64 crashed the worker.

:func:`resilient_map` keeps per-payload futures so completed results
survive a pool collapse, then recovers in three stages:

1. **Retry**: rebuild the pool and resubmit only the unfinished
   payloads, with exponential backoff between attempts (a transient
   crash — OOM spike, killed container sibling — usually clears).
2. **Serial degradation**: after ``retries`` collapses, evaluate the
   remaining payloads in-process.  A payload that *deterministically*
   kills its worker can then be caught as an ordinary exception (or at
   worst reproduces under a debugger instead of vanishing in a pool).
3. **Interrupt preservation**: ``KeyboardInterrupt`` stops the sweep
   but returns every completed result, flagged in the diagnostics, so
   the caller can flush caches and print a partial table.

Exceptions raised by individual payloads are converted through
``on_error`` (payload, exception) -> result, never aborting the map.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

#: distinguishes "never computed" from a legitimate None result
_UNSET = object()


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff schedule for pool rebuilds and retries.

    The schedule is **seeded-deterministic**: the jitter for retry
    attempt *n* is drawn from a generator seeded with ``(seed, n)``, so
    the same policy produces the same delay sequence in every process
    and every run — reproducible crash drills, no thundering herd when
    many shards share a policy with distinct seeds.

    ``delay(attempt)`` for attempt 0, 1, 2, ... is
    ``min(base_delay * 2**attempt, max_delay)`` plus a jitter term
    uniform in ``[0, jitter * backoff)``.  ``max_retries`` is how many
    times a caller should retry before giving up (or degrading).
    """

    max_retries: int = 2
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def delay(self, attempt: int) -> float:
        """The deterministic backoff before retry ``attempt`` (0-based)."""
        backoff = min(self.base_delay * (2 ** attempt), self.max_delay)
        if not self.jitter or backoff <= 0.0:
            return backoff
        # string seeding hashes via SHA-512 in CPython: stable across
        # processes and PYTHONHASHSEED values, unlike hash(tuple)
        rng = random.Random(f"retry:{self.seed}:{attempt}")
        return backoff + rng.uniform(0.0, self.jitter * backoff)

    def schedule(self) -> List[float]:
        """Every delay the policy would sleep, in order."""
        return [self.delay(attempt) for attempt in range(self.max_retries)]


@dataclass
class MapDiagnostics:
    """What the resilient map had to do to finish."""

    broken_pools: int = 0
    retried_payloads: int = 0
    degraded_serial: bool = False
    interrupted: bool = False
    completed: int = 0

    def to_dict(self) -> dict:
        return dict(self.__dict__)


def resilient_map(
    func: Callable,
    payloads: Sequence,
    max_workers: int,
    initializer: Optional[Callable] = None,
    initargs: Tuple = (),
    retries: int = 2,
    backoff: float = 0.05,
    on_error: Optional[Callable] = None,
    policy: Optional[RetryPolicy] = None,
) -> Tuple[List, MapDiagnostics]:
    """Map ``func`` over ``payloads`` on a process pool, tolerating crashes.

    Returns ``(results, diagnostics)`` where ``results`` aligns with
    ``payloads``; entries never computed (interrupt) are ``None``.
    ``on_error`` converts a payload's exception into its result slot
    (default: re-raise, which callers that pre-catch inside ``func``
    never hit).  ``policy`` governs how many pool collapses are
    retried and how long to back off between rebuilds; the legacy
    ``retries``/``backoff`` arguments build one when it is omitted.
    """
    if policy is None:
        policy = RetryPolicy(max_retries=retries, base_delay=backoff)
    results = [_UNSET] * len(payloads)
    diagnostics = MapDiagnostics()
    pending = list(range(len(payloads)))
    attempt = 0

    while pending:
        broken = False
        try:
            with ProcessPoolExecutor(
                max_workers=min(max_workers, len(pending)),
                initializer=initializer,
                initargs=initargs,
            ) as pool:
                futures = {pool.submit(func, payloads[index]): index for index in pending}
                not_done = set(futures)
                try:
                    while not_done:
                        done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                        for future in done:
                            index = futures[future]
                            try:
                                results[index] = future.result()
                                diagnostics.completed += 1
                            except BrokenProcessPool:
                                broken = True
                            except Exception as exc:
                                if on_error is None:
                                    raise
                                results[index] = on_error(payloads[index], exc)
                                diagnostics.completed += 1
                        if broken:
                            break
                except KeyboardInterrupt:
                    diagnostics.interrupted = True
                    pool.shutdown(wait=False, cancel_futures=True)
                    return _finalize(results), diagnostics
        except BrokenProcessPool:
            broken = True
        except KeyboardInterrupt:
            diagnostics.interrupted = True
            return _finalize(results), diagnostics

        pending = [index for index in pending if results[index] is _UNSET]
        if not pending:
            break
        if not broken:
            continue  # defensive: nothing crashed, loop resubmits leftovers
        diagnostics.broken_pools += 1
        diagnostics.retried_payloads += len(pending)
        if attempt >= policy.max_retries:
            diagnostics.degraded_serial = True
            serial_results, serial_diag = serial_map(
                func,
                [payloads[index] for index in pending],
                initializer=initializer,
                initargs=initargs,
                on_error=on_error,
            )
            for index, result in zip(pending, serial_results):
                if result is not None:
                    results[index] = result
            diagnostics.completed += serial_diag.completed
            diagnostics.interrupted = diagnostics.interrupted or serial_diag.interrupted
            break
        time.sleep(policy.delay(attempt))
        attempt += 1

    return _finalize(results), diagnostics


def serial_map(
    func: Callable,
    payloads: Sequence,
    initializer: Optional[Callable] = None,
    initargs: Tuple = (),
    on_error: Optional[Callable] = None,
) -> Tuple[List, MapDiagnostics]:
    """The in-process twin of :func:`resilient_map` (same contract)."""
    diagnostics = MapDiagnostics()
    if initializer is not None:
        initializer(*initargs)
    results: List = [None] * len(payloads)
    for position, payload in enumerate(payloads):
        try:
            results[position] = func(payload)
            diagnostics.completed += 1
        except KeyboardInterrupt:
            diagnostics.interrupted = True
            break
        except Exception as exc:
            if on_error is None:
                raise
            results[position] = on_error(payload, exc)
            diagnostics.completed += 1
    return results, diagnostics


def _finalize(results: List) -> List:
    return [None if result is _UNSET else result for result in results]
