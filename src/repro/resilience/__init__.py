"""Fault injection and resilience for the synthesis flow.

Three concerns, one subsystem:

- :mod:`repro.resilience.faults` — seeded, deterministic delay-fault
  plans (scale / jitter / stuck-slow per ``(fu, operator)``);
- :mod:`repro.resilience.campaign` — fault campaigns that measure the
  timing slack behind GT3's arc removals, the skew tolerance of GT5's
  merged channels, and the behaviour of the whole design under random
  delay faults (``repro faults`` on the CLI);
- :mod:`repro.resilience.pool` / :mod:`repro.resilience.injection` —
  crash-tolerant process-pool mapping (retry, backoff, serial
  degradation, interrupt preservation) plus the deterministic failure
  injectors that exercise it in tests and CI.
"""

from repro.resilience.campaign import (
    ArcSlackEntry,
    CampaignReport,
    ChannelSkewEntry,
    FaultTrial,
    Gt3MonteCarloEntry,
    load_report,
    quick_probe,
    run_campaign,
)
from repro.resilience.faults import FaultPlan, FaultSpec, fault_targets, unit_slowdown
from repro.resilience.injection import (
    ConfigFaultInjector,
    InjectedFault,
    PointTimeout,
    parse_inject_spec,
    point_deadline,
)
from repro.resilience.pool import MapDiagnostics, RetryPolicy, resilient_map, serial_map

__all__ = [
    "ArcSlackEntry",
    "CampaignReport",
    "ChannelSkewEntry",
    "ConfigFaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FaultTrial",
    "Gt3MonteCarloEntry",
    "InjectedFault",
    "MapDiagnostics",
    "PointTimeout",
    "RetryPolicy",
    "fault_targets",
    "load_report",
    "parse_inject_spec",
    "point_deadline",
    "quick_probe",
    "resilient_map",
    "run_campaign",
    "serial_map",
    "unit_slowdown",
]
