"""Deterministic failure injection for exploration sweeps.

The fault-tolerant exploration path is only trustworthy if its failure
handling is exercised, so the injector is a first-class (picklable)
object that CI and tests pass into ``explore_design_space`` — or the
``repro explore --inject-fail`` flag — to make chosen grid points
fail on demand:

- ``mode="raise"`` — the point raises inside the worker; the per-point
  guard converts it into a ``status="failed"`` design point.
- ``mode="exit"`` — the worker process dies (``os._exit``), breaking
  the process pool; the resilient map must recover via retry or serial
  degradation.  With ``once_marker`` set, the crash happens only the
  first time (a sentinel file records it), modelling a transient
  worker death; without it the crash repeats, and only processes that
  actually are pool workers die — the serial fallback in the parent
  degrades to an ordinary raise, so a persistent crasher ends up
  ``failed`` instead of killing the sweep.

This module also provides the per-point wall-clock deadline used by
``explore_design_space(point_timeout=...)``: SIGALRM-based where
available (worker processes run evaluations on their main thread), a
no-op elsewhere.
"""

from __future__ import annotations

import os
import signal
import threading
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

from repro.errors import ReproError


class InjectedFault(ReproError):
    """Raised by a :class:`ConfigFaultInjector` in ``raise`` mode."""


class PointTimeout(ReproError):
    """One exploration point exceeded its wall-clock deadline."""


def _normalize(config: Tuple[str, ...]) -> Tuple[str, ...]:
    return tuple(sorted(name.upper() for name in config))


@dataclass(frozen=True)
class ConfigFaultInjector:
    """Fail specific ``(gt, lt)`` grid points, deterministically.

    ``targets`` holds normalized GT subsets (sorted, upper-case); a
    point matches when its GT subset equals a target — any LT subset.
    Frozen + plain data, so it pickles into pool workers unchanged.
    """

    targets: Tuple[Tuple[str, ...], ...]
    mode: str = "raise"  # "raise" | "exit"
    once_marker: Optional[str] = None

    @classmethod
    def for_configs(cls, configs, mode: str = "raise", once_marker: Optional[str] = None):
        return cls(
            targets=tuple(sorted({_normalize(tuple(config)) for config in configs})),
            mode=mode,
            once_marker=once_marker,
        )

    def matches(self, global_transforms: Tuple[str, ...]) -> bool:
        return _normalize(tuple(global_transforms)) in self.targets

    def __call__(self, global_transforms, local_transforms) -> None:
        if not self.matches(tuple(global_transforms)):
            return
        label = "+".join(global_transforms) or "(no GT)"
        if self.mode == "exit":
            # only ever kill real pool workers — in the parent process
            # (serial path or degraded fallback) dying would defeat the
            # resilience being tested, so degrade to an ordinary raise
            import multiprocessing

            in_worker = multiprocessing.parent_process() is not None
            if self.once_marker is not None:
                marker = Path(self.once_marker)
                if marker.exists():
                    raise InjectedFault(f"injected fault at {label} (post-crash retry)")
                if in_worker:
                    try:
                        marker.touch()
                    except OSError:
                        pass
                    os._exit(17)
                raise InjectedFault(f"injected fault at {label} (serial, nothing to kill)")
            if in_worker:
                os._exit(17)
            raise InjectedFault(f"injected fault at {label} (crasher, serial fallback)")
        raise InjectedFault(f"injected fault at {label}")


def parse_inject_spec(spec: str, mode: str = "raise") -> ConfigFaultInjector:
    """Build an injector from a CLI spec like ``GT1+GT2,GT1+GT3``.

    Each comma-separated item is one GT subset (``+``-joined); the
    empty item (``-``) targets the no-GT point.
    """
    configs = []
    for item in spec.split(","):
        item = item.strip()
        names = () if item in ("", "-") else tuple(part for part in item.split("+") if part)
        configs.append(names)
    return ConfigFaultInjector.for_configs(configs, mode=mode)


#: One-time flag: a sweep evaluating hundreds of points off the main
#: thread should warn once, not once per point.
_watchdog_warned = False


def _reset_watchdog_warning() -> None:
    """Re-arm the one-time skip warning (test hook)."""
    global _watchdog_warned
    _watchdog_warned = False


def watchdog_unavailable_reason() -> Optional[str]:
    """Why :func:`point_deadline` would be skipped *here*, else ``None``.

    Checks the calling thread, so call it from wherever the deadline
    would actually be armed.
    """
    if not hasattr(signal, "SIGALRM"):
        return "signal.SIGALRM is unavailable on this platform"
    if threading.current_thread() is not threading.main_thread():
        return "the current thread is not the main thread"
    return None


def watchdog_active(pooled: bool = False) -> bool:
    """Whether upcoming point deadlines will actually be enforced.

    ``pooled`` evaluations run on the main thread of dedicated worker
    processes, so only platform ``SIGALRM`` support matters there; a
    serial sweep arms the timer on the calling thread, which must be
    the process's main thread.
    """
    if not hasattr(signal, "SIGALRM"):
        return False
    if pooled:
        return True
    return threading.current_thread() is threading.main_thread()


@contextmanager
def point_deadline(seconds: Optional[float]):
    """Raise :class:`PointTimeout` if the block runs longer than ``seconds``.

    Uses ``SIGALRM``/``setitimer``, which is only available on the main
    thread of a Unix process — exactly where pool workers and the
    serial exploration path evaluate points.  Anywhere else (Windows,
    background threads) the deadline is skipped rather than
    half-enforced, with a one-time :class:`RuntimeWarning` naming the
    reason so a silently-unbounded sweep is at least a visible one.
    """
    if not seconds:
        yield
        return
    reason = watchdog_unavailable_reason()
    if reason is not None:
        global _watchdog_warned
        if not _watchdog_warned:
            _watchdog_warned = True
            warnings.warn(
                f"point deadline of {seconds:g}s is not enforced: {reason}",
                RuntimeWarning,
                stacklevel=3,
            )
        yield
        return

    def _expired(signum, frame):
        raise PointTimeout(f"design-point evaluation exceeded {seconds:g}s")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
