"""Channel and channel-plan data structures."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.cdfg.graph import ENV, Cdfg
from repro.errors import CdfgError

ArcKey = Tuple[str, str]


@dataclass
class Channel:
    """One wire from a sender controller to one or more receivers.

    ``arcs`` lists the constraint arcs the wire carries; every event is
    a single transition, seen by all receivers.  A channel with more
    than one receiver FU is a *multi-way* channel (GT5.3).
    """

    name: str
    src_fu: str
    dst_fus: FrozenSet[str]
    arcs: List[ArcKey] = field(default_factory=list)

    @property
    def is_multiway(self) -> bool:
        return len(self.dst_fus) > 1

    @property
    def is_env(self) -> bool:
        return self.src_fu == ENV or ENV in self.dst_fus

    def wire_name(self) -> str:
        """Deterministic signal name for the extracted controllers."""
        return self.name

    def __str__(self) -> str:
        receivers = "+".join(sorted(self.dst_fus))
        kind = " (multi-way)" if self.is_multiway else ""
        return f"{self.name}: {self.src_fu} -> {receivers}, {len(self.arcs)} arc(s){kind}"


@dataclass
class ChannelPlan:
    """Assignment of every inter-controller arc to a channel."""

    channels: List[Channel] = field(default_factory=list)
    #: arc key -> channel name
    arc_to_channel: Dict[ArcKey, str] = field(default_factory=dict)

    def add(self, channel: Channel) -> Channel:
        self.channels.append(channel)
        for key in channel.arcs:
            if key in self.arc_to_channel:
                raise CdfgError(f"arc {key} already assigned to {self.arc_to_channel[key]}")
            self.arc_to_channel[key] = channel.name
        return channel

    def channel_of(self, key: ArcKey) -> Channel:
        name = self.arc_to_channel.get(key)
        if name is None:
            raise CdfgError(f"arc {key} carried by no channel")
        return self.by_name(name)

    def by_name(self, name: str) -> Channel:
        for channel in self.channels:
            if channel.name == name:
                return channel
        raise CdfgError(f"no channel named {name!r}")

    # ------------------------------------------------------------------
    def count(self, include_env: bool = True) -> int:
        """Number of channels (the paper's Figure 12 column 1 counts
        environment wires; Figure 5 counts controller-controller only)."""
        if include_env:
            return len(self.channels)
        return sum(1 for channel in self.channels if not channel.is_env)

    def multiway_count(self) -> int:
        return sum(1 for channel in self.channels if channel.is_multiway)

    def controller_channels(self) -> List[Channel]:
        return [channel for channel in self.channels if not channel.is_env]

    def summary(self) -> str:
        lines = [
            f"{self.count()} channels "
            f"({self.count(include_env=False)} controller-controller, "
            f"{self.multiway_count()} multi-way)"
        ]
        for channel in self.channels:
            lines.append(f"  {channel}")
        return "\n".join(lines)


def derive_channels(cdfg: Cdfg) -> ChannelPlan:
    """The *unoptimized* channel assignment: one channel per arc.

    This is the paper's basic synthesis method (Section 2.3): "each
    communication channel is implemented by a single wire".
    """
    plan = ChannelPlan()
    for index, arc in enumerate(sorted(cdfg.inter_fu_arcs(), key=lambda a: a.key)):
        src_fu = cdfg.fu_of(arc.src)
        dst_fu = cdfg.fu_of(arc.dst)
        channel = Channel(
            name=f"ch{index}_{src_fu}_{dst_fu}",
            src_fu=src_fu,
            dst_fus=frozenset({dst_fu}),
            arcs=[arc.key],
        )
        plan.add(channel)
    return plan
