"""Communication channels between functional-unit controllers.

In the target architecture every constraint arc between two different
controllers is carried by a *communication channel* — a single wire
signalling with one transition per event (paper Section 2.2).  GT5
reduces the number of channels by multiplexing, concurrency reduction
and symmetrization; the resulting :class:`~repro.channels.model.ChannelPlan`
maps every arc to the wire that carries it and is consumed by the
burst-mode extraction step.
"""

from repro.channels.model import Channel, ChannelPlan, derive_channels

__all__ = ["Channel", "ChannelPlan", "derive_channels"]
