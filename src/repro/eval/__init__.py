"""Evaluation drivers: one function per paper table/figure.

- :mod:`repro.eval.yun`: Yun et al.'s published reference numbers
  (Figures 12/13 last rows), used exactly as the paper uses them;
- :mod:`repro.eval.metrics`: channel/state/transition/logic counters;
- :mod:`repro.eval.experiments`: ``run_fig5`` / ``run_fig12`` /
  ``run_fig13`` / ``run_trajectory`` / ``run_performance``;
- :mod:`repro.eval.tables`: fixed-width table rendering.
"""

from repro.eval.experiments import (
    Fig5Result,
    Fig12Result,
    Fig13Result,
    PerformanceResult,
    TrajectoryResult,
    run_fig5,
    run_fig12,
    run_fig13,
    run_performance,
    run_trajectory,
)
from repro.eval.yun import YUN_FIG12, YUN_FIG13, PAPER_FIG12, PAPER_FIG13

__all__ = [
    "Fig5Result",
    "Fig12Result",
    "Fig13Result",
    "PerformanceResult",
    "TrajectoryResult",
    "run_fig5",
    "run_fig12",
    "run_fig13",
    "run_performance",
    "run_trajectory",
    "YUN_FIG12",
    "YUN_FIG13",
    "PAPER_FIG12",
    "PAPER_FIG13",
]
