"""Makespan statistics across random delay assignments.

The asynchronous designs are delay-insensitive in *value* but not in
*time*: the makespan varies with each bounded-delay draw.  This module
runs a design across many seeds and summarizes the distribution
(mean, standard deviation, bootstrap-free normal confidence interval),
so performance comparisons between synthesis levels are statements
about distributions rather than single samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.afsm.extract import DistributedDesign
from repro.sim.system import simulate_system
from repro.timing.delays import DelayModel


@dataclass
class MakespanStats:
    """Summary of a design's makespan distribution."""

    samples: List[float]

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples))

    @property
    def std(self) -> float:
        return float(np.std(self.samples, ddof=1)) if len(self.samples) > 1 else 0.0

    @property
    def minimum(self) -> float:
        return float(np.min(self.samples))

    @property
    def maximum(self) -> float:
        return float(np.max(self.samples))

    def confidence_interval(self, z: float = 1.96) -> tuple:
        """Normal-approximation CI for the mean."""
        if self.count < 2:
            return (self.mean, self.mean)
        half = z * self.std / np.sqrt(self.count)
        return (self.mean - half, self.mean + half)

    def __str__(self) -> str:
        low, high = self.confidence_interval()
        return (
            f"{self.mean:.1f} +/- {self.std:.1f} "
            f"(95% CI [{low:.1f}, {high:.1f}], n={self.count})"
        )


def measure_makespan(
    design: DistributedDesign,
    seeds: Sequence[int] = tuple(range(20)),
    delays: Optional[DelayModel] = None,
    expected_registers: Optional[Dict[str, float]] = None,
) -> MakespanStats:
    """Run ``design`` once per seed and collect makespans.

    With ``expected_registers``, every run is also verified against the
    golden register file — a performance number from a wrong design is
    worthless.
    """
    samples: List[float] = []
    for seed in seeds:
        result = simulate_system(design, delays=delays, seed=seed)
        if expected_registers is not None:
            for register, value in expected_registers.items():
                if result.registers.get(register) != value:
                    raise AssertionError(
                        f"seed {seed}: register {register} = "
                        f"{result.registers.get(register)!r}, expected {value!r}"
                    )
        samples.append(result.end_time)
    return MakespanStats(samples=samples)


def speedup(baseline: MakespanStats, optimized: MakespanStats) -> float:
    """Mean speedup factor of ``optimized`` over ``baseline``."""
    return baseline.mean / optimized.mean
