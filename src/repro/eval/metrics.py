"""Counting helpers shared by the experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.afsm.extract import DistributedDesign
from repro.cdfg.graph import Cdfg
from repro.channels.model import ChannelPlan, derive_channels


@dataclass
class DesignCounts:
    """Channel and machine sizes of one synthesized design."""

    channels_total: int
    channels_controller: int
    channels_multiway: int
    machines: Dict[str, Tuple[int, int]]  # fu -> (states, transitions)

    @property
    def total_states(self) -> int:
        return sum(states for states, __ in self.machines.values())

    @property
    def total_transitions(self) -> int:
        return sum(transitions for __, transitions in self.machines.values())


def count_design(design: DistributedDesign) -> DesignCounts:
    return DesignCounts(
        channels_total=design.plan.count(),
        channels_controller=design.plan.count(include_env=False),
        channels_multiway=design.plan.multiway_count(),
        machines={
            fu: (controller.state_count, controller.transition_count)
            for fu, controller in design.controllers.items()
        },
    )


def channel_counts(cdfg: Cdfg, plan: Optional[ChannelPlan] = None) -> Tuple[int, int, int]:
    """(total, controller-controller, multiway) channels of a CDFG."""
    plan = plan or derive_channels(cdfg)
    return (plan.count(), plan.count(include_env=False), plan.multiway_count())
