"""Fixed-width table rendering for the benchmark harness output."""

from __future__ import annotations

from typing import List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain monospace table (papers' figure style)."""
    columns = len(headers)
    texts: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(str(headers[i])) for i in range(columns)]
    for row in texts:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    separator = "-" * (sum(widths) + 2 * (columns - 1))
    out = [line([str(h) for h in headers]), separator]
    out.extend(line(row) for row in texts)
    return "\n".join(out)
