"""Published reference numbers.

``YUN_*`` are Yun et al.'s manual-design numbers as printed in the
paper's Figures 12 and 13 (the paper itself compares against these
published values; the circuits are not available).  ``PAPER_*`` are
the paper's own tool results, used by EXPERIMENTS.md to report
paper-vs-measured deltas.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Figure 12, row "YUN (manual)": controller -> (#states, #transitions)
YUN_FIG12: Dict[str, Tuple[int, int]] = {
    "ALU1": (7, 9),
    "ALU2": (14, 16),
    "MUL1": (4, 4),
    "MUL2": (3, 3),
}

#: Figure 12, paper's tool: level -> {controller: (#states, #transitions)}
PAPER_FIG12: Dict[str, Dict[str, Tuple[int, int]]] = {
    "unoptimized": {
        "ALU1": (26, 29),
        "ALU2": (45, 52),
        "MUL1": (21, 24),
        "MUL2": (12, 14),
    },
    "optimized-GT": {
        "ALU1": (16, 18),
        "ALU2": (26, 32),
        "MUL1": (12, 14),
        "MUL2": (8, 10),
    },
    "optimized-GT-and-LT": {
        "ALU1": (7, 9),
        "ALU2": (11, 13),
        "MUL1": (6, 6),
        "MUL2": (4, 5),
    },
}

#: Figure 12, column 1: level -> #communication channels
PAPER_FIG12_CHANNELS: Dict[str, int] = {
    "unoptimized": 17,
    "optimized-GT": 5,
    "optimized-GT-and-LT": 5,
}

#: Figure 13: controller -> (#products, #literals), Yun's manual design
YUN_FIG13: Dict[str, Tuple[int, int]] = {
    "ALU1": (18, 110),
    "ALU2": (46, 141),
    "MUL1": (19, 41),
    "MUL2": (10, 15),
}

#: Figure 13: the paper's tool ("our method" column)
PAPER_FIG13: Dict[str, Tuple[int, int]] = {
    "ALU1": (14, 83),
    "ALU2": (40, 113),
    "MUL1": (11, 30),
    "MUL2": (8, 18),
}

#: Figure 5: controller-controller channels before/after GT5
PAPER_FIG5: Tuple[int, int] = (10, 5)
