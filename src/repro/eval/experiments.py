"""Experiment drivers reproducing the paper's evaluation artifacts.

Each ``run_*`` function regenerates one table/figure end-to-end from
the DIFFEQ CDFG and returns a result object whose ``table()`` method
prints the same rows the paper reports, side by side with the
published numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.afsm.extract import DistributedDesign, extract_controllers
from repro.channels.model import ChannelPlan, derive_channels
from repro.eval.metrics import DesignCounts, count_design
from repro.eval.tables import render_table
from repro.eval.yun import (
    PAPER_FIG5,
    PAPER_FIG12,
    PAPER_FIG12_CHANNELS,
    PAPER_FIG13,
    YUN_FIG12,
    YUN_FIG13,
)
from repro.local_transforms import optimize_local
from repro.logic.synthesis import LogicSummary, synthesize_design
from repro.sim.system import simulate_system
from repro.sim.token_sim import simulate_tokens
from repro.timing.delays import DelayModel
from repro.transforms import optimize_global
from repro.workloads.diffeq import DIFFEQ_FUS, build_diffeq_cdfg

LEVELS = ("unoptimized", "optimized-GT", "optimized-GT-and-LT", "minimized")


def synthesize_levels(
    cdfg=None, delays: Optional[DelayModel] = None
) -> Dict[str, DistributedDesign]:
    """The three synthesis levels of Figure 12 for one CDFG, plus the
    post-paper ``minimized`` level (simulation-equivalence quotient,
    gated by the flow checker — :mod:`repro.afsm.minimize`)."""
    from repro.afsm.minimize import minimize_design

    cdfg = cdfg if cdfg is not None else build_diffeq_cdfg()
    unopt = extract_controllers(cdfg, derive_channels(cdfg))
    optimized = optimize_global(cdfg, delays=delays)
    gt = extract_controllers(optimized.cdfg, optimized.plan)
    gt_lt = optimize_local(gt).design
    minimized, __, __ = minimize_design(gt_lt)
    return {
        "unoptimized": unopt,
        "optimized-GT": gt,
        "optimized-GT-and-LT": gt_lt,
        "minimized": minimized,
    }


# ----------------------------------------------------------------------
# Figure 5: channel elimination
# ----------------------------------------------------------------------
@dataclass
class Fig5Result:
    before_controller_channels: int
    after_controller_channels: int
    after_multiway: int
    paper_before: int = PAPER_FIG5[0]
    paper_after: int = PAPER_FIG5[1]
    channels: List[str] = field(default_factory=list)

    def table(self) -> str:
        rows = [
            ("before GT5 (controller-controller)", self.before_controller_channels, self.paper_before),
            ("after GT5 (controller-controller)", self.after_controller_channels, self.paper_after),
            ("after GT5 (multi-way among them)", self.after_multiway, 2),
        ]
        return render_table(("Figure 5: DIFFEQ channels", "measured", "paper"), rows)


def run_fig5(cdfg=None) -> Fig5Result:
    cdfg = cdfg if cdfg is not None else build_diffeq_cdfg()
    before = optimize_global(cdfg, enabled=("GT1", "GT2", "GT3", "GT4"))
    before_channels = derive_channels(before.cdfg).count(include_env=False)
    after = optimize_global(cdfg)
    plan = after.plan
    return Fig5Result(
        before_controller_channels=before_channels,
        after_controller_channels=plan.count(include_env=False),
        after_multiway=plan.multiway_count(),
        channels=[str(channel) for channel in plan.controller_channels()],
    )


# ----------------------------------------------------------------------
# Figure 12: state machine comparison
# ----------------------------------------------------------------------
@dataclass
class Fig12Result:
    counts: Dict[str, DesignCounts]
    channels: Dict[str, int]

    def table(self) -> str:
        headers = ["level", "#ch (measured/paper)"]
        for fu in DIFFEQ_FUS:
            headers.append(f"{fu} states (m/p)")
            headers.append(f"{fu} trans (m/p)")
        headers_yun = list(headers)
        rows = []
        for level in LEVELS:
            counts = self.counts[level]
            # the paper stops at GT+LT; the minimized row has no
            # published column, rendered as "-"
            paper_level = PAPER_FIG12.get(level, {})
            row: List[object] = [
                level,
                f"{self.channels[level]}/{PAPER_FIG12_CHANNELS.get(level, '-')}",
            ]
            for fu in DIFFEQ_FUS:
                states, transitions = counts.machines[fu]
                paper_states, paper_transitions = paper_level.get(fu, ("-", "-"))
                row.append(f"{states}/{paper_states}")
                row.append(f"{transitions}/{paper_transitions}")
            rows.append(row)
        yun_row: List[object] = ["YUN (manual)", "5/5"]
        for fu in DIFFEQ_FUS:
            states, transitions = YUN_FIG12[fu]
            yun_row.append(f"-/{states}")
            yun_row.append(f"-/{transitions}")
        rows.append(yun_row)
        return render_table(headers_yun, rows)


def run_fig12(cdfg=None) -> Fig12Result:
    designs = synthesize_levels(cdfg)
    counts = {level: count_design(design) for level, design in designs.items()}
    channels = {
        "unoptimized": counts["unoptimized"].channels_total,
        # the paper's optimized rows count the controller-controller
        # channels of Figure 5/6 (environment wires excluded)
        "optimized-GT": counts["optimized-GT"].channels_controller,
        "optimized-GT-and-LT": counts["optimized-GT-and-LT"].channels_controller,
        "minimized": counts["minimized"].channels_controller,
    }
    return Fig12Result(counts=counts, channels=channels)


# ----------------------------------------------------------------------
# Figure 13: gate-level comparison
# ----------------------------------------------------------------------
@dataclass
class Fig13Result:
    summaries: Dict[str, LogicSummary]
    #: gate-level cost after the post-paper minimization pass (empty
    #: when the minimized level was not synthesized)
    minimized: Dict[str, LogicSummary] = field(default_factory=dict)

    def totals(self) -> Tuple[int, int]:
        products = sum(s.products for s in self.summaries.values())
        literals = sum(s.literals for s in self.summaries.values())
        return products, literals

    def minimized_totals(self) -> Tuple[int, int]:
        products = sum(s.products for s in self.minimized.values())
        literals = sum(s.literals for s in self.minimized.values())
        return products, literals

    def table(self) -> str:
        headers = [
            "unit",
            "Yun #prod",
            "Yun #lits",
            "paper #prod",
            "paper #lits",
            "measured #prod",
            "measured #lits",
        ]
        if self.minimized:
            headers += ["min #prod", "min #lits"]
        rows = []
        for fu in DIFFEQ_FUS:
            summary = self.summaries[fu]
            row = [
                fu,
                YUN_FIG13[fu][0],
                YUN_FIG13[fu][1],
                PAPER_FIG13[fu][0],
                PAPER_FIG13[fu][1],
                summary.products,
                summary.literals,
            ]
            if self.minimized:
                minimized = self.minimized[fu]
                row += [minimized.products, minimized.literals]
            rows.append(tuple(row))
        products, literals = self.totals()
        total_row = [
            "total",
            sum(v[0] for v in YUN_FIG13.values()),
            sum(v[1] for v in YUN_FIG13.values()),
            sum(v[0] for v in PAPER_FIG13.values()),
            sum(v[1] for v in PAPER_FIG13.values()),
            products,
            literals,
        ]
        if self.minimized:
            total_row += list(self.minimized_totals())
        rows.append(tuple(total_row))
        return render_table(tuple(headers), rows)


def run_fig13(cdfg=None) -> Fig13Result:
    designs = synthesize_levels(cdfg)
    # the paper synthesized ALU1 with Minimalist (shared products) and
    # the XBM controllers with 3D (single-output)
    summaries = synthesize_design(designs["optimized-GT-and-LT"], shared_for=("ALU1",))
    minimized = synthesize_design(designs["minimized"], shared_for=("ALU1",))
    return Fig13Result(summaries=summaries, minimized=minimized)


# ----------------------------------------------------------------------
# transform trajectory (Figures 1 -> 3 -> 4 -> 6)
# ----------------------------------------------------------------------
@dataclass
class TrajectoryResult:
    steps: List[Tuple[str, int, int]]  # (stage, arcs, controller channels)

    def table(self) -> str:
        return render_table(("after", "#constraint arcs", "#cc channels"), self.steps)


def run_trajectory(cdfg=None) -> TrajectoryResult:
    cdfg = cdfg if cdfg is not None else build_diffeq_cdfg()
    steps = [("Figure 1 (input)", cdfg.arc_count(), derive_channels(cdfg).count(include_env=False))]
    prefixes = [
        ("GT1", ("GT1",)),
        ("GT2", ("GT1", "GT2")),
        ("GT3", ("GT1", "GT2", "GT3")),
        ("GT4 (Figure 4)", ("GT1", "GT2", "GT3", "GT4")),
        ("GT5 (Figure 6)", ("GT1", "GT2", "GT3", "GT4", "GT5")),
    ]
    for label, enabled in prefixes:
        result = optimize_global(cdfg, enabled=enabled)
        steps.append(
            (
                label,
                result.cdfg.arc_count(),
                result.plan.count(include_env=False),
            )
        )
    return TrajectoryResult(steps=steps)


# ----------------------------------------------------------------------
# performance (simulated makespan per synthesis level)
# ----------------------------------------------------------------------
@dataclass
class PerformanceResult:
    token_times: Dict[str, float]
    system_times: Dict[str, float]

    def table(self) -> str:
        rows = []
        for level in LEVELS:
            rows.append(
                (
                    level,
                    f"{self.token_times[level]:.1f}" if level in self.token_times else "-",
                    f"{self.system_times[level]:.1f}",
                )
            )
        return render_table(
            ("level", "CDFG token-sim makespan", "AFSM system-sim makespan"), rows
        )


def run_performance(cdfg=None, seed: int = 7) -> PerformanceResult:
    cdfg = cdfg if cdfg is not None else build_diffeq_cdfg()
    optimized = optimize_global(cdfg)
    token_times = {
        "unoptimized": simulate_tokens(cdfg, seed=seed).end_time,
        "optimized-GT": simulate_tokens(optimized.cdfg, seed=seed).end_time,
    }
    system_times = {}
    for level, design in synthesize_levels(cdfg).items():
        system_times[level] = simulate_system(design, seed=seed).end_time
    return PerformanceResult(token_times=token_times, system_times=system_times)
