"""GT5: communication channel elimination (paper Section 3.5).

After GT1-GT4, every remaining controller-controller constraint arc
would become a dedicated single-wire channel.  GT5 reduces the channel
count with three sub-transforms:

GT5.1 *Channel multiplexing* — two channels connecting the same
  controllers share one wire when their events are never concurrently
  active; the events become different phases of the shared wire.

GT5.2 *Concurrency reduction* — a constraint ``a -> c`` is replaced by
  a chain ``a -> b``, ``b -> c`` through a hub on a third unit, so the
  resulting pieces can be multiplexed with existing channels and the
  direct ``fu(a) -> fu(c)`` wire disappears.  Applied only to arcs with
  timing slack (the hub may delay ``c``).

GT5.3 *Channel symmetrization* — the "done" event of one source node
  that constrains nodes on several units naturally broadcasts on one
  *multi-way* channel; two event groups from the same sender with
  overlapping (but not identical) receiver sets are made symmetric by
  *safe addition* of already-implied arcs, after which they multiplex
  into a single multi-way wire.

Concurrency is proven structurally: two arcs never share the wire at
the same time when consumption of each instance of one precedes
production of the relevant instance of the other along a path of
constraints in the unfolded iteration graph (see
:meth:`ChannelElimination._never_concurrent`).  The check is
conservative — a failed path query only prevents a merge, never an
unsound one.

The optimized :class:`~repro.channels.model.ChannelPlan` is stored in
``report.artifacts["channel_plan"]``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.cdfg.arc import Arc, ArcRole, control_tag
from repro.cdfg.graph import ENV, Cdfg
from repro.channels.model import ArcKey, Channel, ChannelPlan
from repro.timing.analysis import arc_slack, compute_arrival_times
from repro.timing.delays import DelayModel
from repro.transforms.base import Transform, TransformReport
from repro.transforms.unfold import Copy, UnfoldedReach, cached_unfolded_reach


class _Group:
    """All controller-controller arcs fired by one source node's done."""

    def __init__(self, source: str, src_fu: str):
        self.source = source
        self.src_fu = src_fu
        self.arcs: List[ArcKey] = []

    def receiver_fus(self, cdfg: Cdfg) -> FrozenSet[str]:
        return frozenset(cdfg.fu_of(dst) for __, dst in self.arcs)


class ChannelElimination(Transform):
    """GT5: multiplexing, concurrency reduction, symmetrization."""

    name = "GT5"

    def __init__(
        self,
        delays: Optional[DelayModel] = None,
        unfold: int = 4,
        max_added_arcs_per_merge: int = 1,
        enable_concurrency_reduction: bool = True,
        enable_symmetrization: bool = True,
        allow_backward_additions: bool = False,
    ):
        self.delays = delays or DelayModel()
        self.unfold = max(unfold, 3)
        self.max_added_arcs_per_merge = max_added_arcs_per_merge
        self.enable_concurrency_reduction = enable_concurrency_reduction
        self.enable_symmetrization = enable_symmetrization
        #: cross-iteration safe additions create pre-enabled wires whose
        #: reset timing is hard to discharge; off by default
        self.allow_backward_additions = allow_backward_additions

    # ------------------------------------------------------------------
    def apply(self, cdfg: Cdfg) -> TransformReport:
        report = TransformReport(self.name)

        # GT5's grouping and concurrency proofs assume an irredundant
        # constraint graph (the paper's flow always runs GT2 first):
        # dominated arcs would put spurious events on shared wires.
        # Apply the reduction here if the caller skipped it.
        from repro.transforms.gt2_dominated import RemoveDominatedConstraints

        reduction = RemoveDominatedConstraints().apply(cdfg)
        if reduction.applied:
            report.removed_arcs.extend(reduction.removed_arcs)
            for entry in reduction.provenance:
                report.record(
                    "pre-reduction-arc-removed", entry.subject,
                    delegated_to="GT2", **entry.detail,
                )
            report.note(
                f"pre-reduced {len(reduction.removed_arcs)} dominated arcs "
                "(GT5 requires a transitively-reduced CDFG)"
            )

        if self.enable_concurrency_reduction:
            self._concurrency_reduction(cdfg, report)

        groups = self._source_groups(cdfg)
        if self.enable_symmetrization:
            self._symmetrize(cdfg, groups, report)
        plan = self._build_plan(cdfg, groups, report)
        report.artifacts["channel_plan"] = plan
        report.applied = True
        report.note(
            f"final plan: {plan.count()} channels "
            f"({plan.count(include_env=False)} controller-controller, "
            f"{plan.multiway_count()} multi-way)"
        )
        return report

    # ------------------------------------------------------------------
    # grouping
    # ------------------------------------------------------------------
    def _cc_arcs(self, cdfg: Cdfg) -> List[Arc]:
        """Controller-controller arcs (environment wires stay as-is)."""
        return [
            arc
            for arc in cdfg.inter_fu_arcs()
            if cdfg.fu_of(arc.src) != ENV and cdfg.fu_of(arc.dst) != ENV
        ]

    def _source_groups(self, cdfg: Cdfg) -> List[_Group]:
        groups: Dict[str, _Group] = {}
        for arc in sorted(self._cc_arcs(cdfg), key=lambda a: a.key):
            group = groups.get(arc.src)
            if group is None:
                group = groups[arc.src] = _Group(arc.src, cdfg.fu_of(arc.src))
            group.arcs.append(arc.key)
        return list(groups.values())

    @staticmethod
    def _mixed_receivers(cdfg: Cdfg, arcs: Sequence[ArcKey]) -> bool:
        """True when some receiver FU would hold both backward and
        forward arcs on one wire.  A backward arc makes the wire
        pre-enabled; a receiver with only forward arcs then absorbs the
        startup transition, but a receiver with *both* cannot tell the
        startup event from a same-iteration one, and extraction rejects
        the channel."""
        flags: Dict[str, Set[bool]] = {}
        for src, dst in arcs:
            flags.setdefault(cdfg.fu_of(dst), set()).add(cdfg.arc(src, dst).backward)
        return any(len(seen) > 1 for seen in flags.values())

    def _split_mixed_groups(
        self,
        cdfg: Cdfg,
        groups: List[_Group],
        report: Optional[TransformReport] = None,
    ) -> List[_Group]:
        """Give backward and forward arcs separate wires where a
        receiver would otherwise see both (the unoptimized plan keeps
        them separate anyway; only the mixed case pays the extra
        channel)."""
        result: List[_Group] = []
        for group in groups:
            if not self._mixed_receivers(cdfg, group.arcs):
                result.append(group)
                continue
            forward = _Group(group.source, group.src_fu)
            backward = _Group(group.source, group.src_fu)
            for key in group.arcs:
                target = backward if cdfg.arc(*key).backward else forward
                target.arcs.append(key)
            result.extend([forward, backward])
            if report is not None:
                report.record(
                    "group-split-pre-enabled", group.source,
                    sub_transform="GT5.1",
                    forward=[f"{s} -> {d}" for s, d in sorted(forward.arcs)],
                    backward=[f"{s} -> {d}" for s, d in sorted(backward.arcs)],
                )
                report.note(
                    f"5.1: split {group.source}'s wire: a receiver mixed "
                    "backward and forward arcs (pre-enabled wire)"
                )
        return result

    # ------------------------------------------------------------------
    # GT5.2 concurrency reduction
    # ------------------------------------------------------------------
    def _concurrency_reduction(self, cdfg: Cdfg, report: TransformReport) -> None:
        """Reroute lone-pair arcs through hubs where profitable.

        Each original arc is rerouted at most once and arcs created by
        a reroute are never themselves rerouted, so the pass terminates
        (an unbounded loop could otherwise ping-pong constraints
        between hubs).
        """
        attempted: set = set()
        changed = True
        while changed:
            changed = False
            pair_counts = self._pair_counts(cdfg)
            for arc in sorted(self._cc_arcs(cdfg), key=lambda a: a.key):
                if arc.backward:
                    continue  # a chain of two forward arcs cannot replace it
                if arc.label == "GT5.2" or arc.key in attempted:
                    continue
                attempted.add(arc.key)
                pair = (cdfg.fu_of(arc.src), cdfg.fu_of(arc.dst))
                if pair_counts.get(pair, 0) != 1:
                    continue  # the direct wire is shared anyway
                if not self._non_critical(cdfg, arc):
                    continue  # on or near the critical path: keep direct
                hub = self._find_hub(cdfg, arc, pair_counts)
                if hub is None:
                    continue
                cdfg.remove_arc(arc.src, arc.dst)
                if not cdfg.has_arc(arc.src, hub):
                    cdfg.add_arc(
                        Arc(arc.src, hub, frozenset({control_tag()}), label="GT5.2")
                    )
                    report.added_arcs.append(f"{arc.src} -> {hub}")
                if not cdfg.has_arc(hub, arc.dst):
                    cdfg.add_arc(
                        Arc(hub, arc.dst, frozenset({control_tag()}), label="GT5.2")
                    )
                    report.added_arcs.append(f"{hub} -> {arc.dst}")
                report.removed_arcs.append(str(arc))
                report.record(
                    "arc-rerouted", str(arc), sub_transform="GT5.2", hub=hub,
                    hub_fu=cdfg.fu_of(hub),
                )
                report.note(f"5.2: rerouted {arc} via hub {hub!r}")
                changed = True
                break

    def _non_critical(self, cdfg: Cdfg, arc: Arc) -> bool:
        """The paper applies concurrency reduction "to non-critical
        constraints": an arc is provably non-critical when a sibling
        constraint of the same destination always arrives no earlier
        (the same anchored relative-timing proof GT3 uses)."""
        from repro.timing.analysis import relative_arc_dominates

        for witness in cdfg.arcs_to(arc.dst):
            if witness.key == arc.key or witness.backward:
                continue
            if cdfg.is_iterate_arc(witness):
                continue
            try:
                if relative_arc_dominates(cdfg, arc, witness, delays=self.delays):
                    return True
            except Exception:
                continue
        return False

    @staticmethod
    def _pair_counts(cdfg: Cdfg) -> Dict[Tuple[str, str], int]:
        counts: Dict[Tuple[str, str], int] = {}
        for arc in cdfg.inter_fu_arcs():
            pair = (cdfg.fu_of(arc.src), cdfg.fu_of(arc.dst))
            counts[pair] = counts.get(pair, 0) + 1
        return counts

    def _find_hub(
        self, cdfg: Cdfg, arc: Arc, pair_counts: Dict[Tuple[str, str], int]
    ) -> Optional[str]:
        """A node b with existing traffic fu(a)->fu(b) and fu(b)->fu(c),
        positioned between a and c (no cycles), same block as the arc."""
        src_fu = cdfg.fu_of(arc.src)
        dst_fu = cdfg.fu_of(arc.dst)
        for hub in cdfg.node_names():
            hub_fu = cdfg.fu_of(hub)
            if hub_fu in (src_fu, dst_fu, ENV):
                continue
            if cdfg.block_of(hub) != cdfg.block_of(arc.src):
                continue
            if cdfg.block_of(hub) != cdfg.block_of(arc.dst):
                continue
            if cdfg.branch_of(hub) != cdfg.branch_of(arc.src):
                continue
            if pair_counts.get((src_fu, hub_fu), 0) < 1:
                continue
            if pair_counts.get((hub_fu, dst_fu), 0) < 1:
                continue
            # ordering feasibility: hub must be placeable between a and c
            if cdfg.implies(hub, arc.src) or cdfg.implies(arc.dst, hub):
                continue
            return hub
        return None

    # ------------------------------------------------------------------
    # GT5.3 symmetrization
    # ------------------------------------------------------------------
    def _symmetrize(
        self, cdfg: Cdfg, groups: List[_Group], report: TransformReport
    ) -> None:
        """Equalize receiver sets of mergeable groups by safe addition.

        Only *implied* arcs are added (zero semantic cost), and at most
        ``max_added_arcs_per_merge`` per group pair, so the controllers
        do not accumulate gratuitous synchronization.
        """
        changed = True
        while changed:
            changed = False
            for narrow in groups:
                for wide in groups:
                    if narrow is wide or narrow.src_fu != wide.src_fu:
                        continue
                    narrow_set = narrow.receiver_fus(cdfg)
                    wide_set = wide.receiver_fus(cdfg)
                    missing = wide_set - narrow_set
                    if not missing or not (narrow_set & wide_set):
                        continue  # identical already, or no overlap
                    if not narrow_set < wide_set:
                        continue
                    if len(missing) > self.max_added_arcs_per_merge:
                        continue
                    additions = self._plan_additions(cdfg, narrow, missing)
                    if additions is None:
                        continue
                    for new_arc in additions:
                        cdfg.add_arc(new_arc)
                        narrow.arcs.append(new_arc.key)
                        report.added_arcs.append(str(new_arc))
                        report.record(
                            "safe-addition", str(new_arc), sub_transform="GT5.3",
                            group_source=narrow.source,
                            widened_toward=sorted(missing),
                        )
                        report.note(f"5.3: safe addition {new_arc}")
                    changed = True

    def _plan_additions(
        self, cdfg: Cdfg, group: _Group, missing: FrozenSet[str]
    ) -> Optional[List[Arc]]:
        """Implied arcs from the group's source to each missing FU."""
        reach = cached_unfolded_reach(cdfg, unfold=2)
        additions: List[Arc] = []
        src = group.source
        for fu in sorted(missing):
            candidate = self._implied_target(cdfg, reach, src, fu)
            if candidate is None:
                return None
            dst, backward = candidate
            additions.append(
                Arc(src, dst, frozenset({control_tag()}), backward=backward, label="GT5.3")
            )
        return additions

    def _implied_target(
        self, cdfg: Cdfg, reach: UnfoldedReach, src: str, fu: str
    ) -> Optional[Tuple[str, bool]]:
        for dst in cdfg.fu_schedule(fu):
            if dst == src or cdfg.has_arc(src, dst):
                continue
            if not cdfg.node(dst).is_operation:
                continue
            if not self._addition_position_ok(cdfg, src, dst):
                continue
            if reach.implies_same_iteration(src, dst):
                return (dst, False)
            if (
                self.allow_backward_additions
                and reach.is_iterated(src)
                and reach.is_iterated(dst)
                and reach.implies_next_iteration(src, dst)
            ):
                return (dst, True)
        return None

    @staticmethod
    def _addition_position_ok(cdfg: Cdfg, src: str, dst: str) -> bool:
        """A safe addition must fire exactly as often as its consumer
        expects: either the nodes share a block and branch, or the arc
        is a loop-entry constraint (src at an enclosing non-branch
        level, dst not inside any IF branch below that level)."""
        if cdfg.block_of(src) == cdfg.block_of(dst):
            return cdfg.branch_of(src) == cdfg.branch_of(dst)
        src_block = cdfg.block_of(src)
        current = dst
        while True:
            if cdfg.branch_of(current) is not None:
                return False  # inside an IF branch: fires conditionally
            enclosing = cdfg.block_of(current)
            if enclosing == src_block:
                return True
            if enclosing is None:
                return False
            current = enclosing

    # ------------------------------------------------------------------
    # GT5.1 multiplexing + plan construction
    # ------------------------------------------------------------------
    def _build_plan(
        self, cdfg: Cdfg, groups: List[_Group], report: Optional[TransformReport] = None
    ) -> ChannelPlan:
        reach = cached_unfolded_reach(cdfg, unfold=self.unfold)
        groups = self._split_mixed_groups(cdfg, groups, report)
        merged: List[List[_Group]] = []
        for group in groups:
            placed = False
            for cluster in merged:
                if cluster[0].src_fu != group.src_fu:
                    continue
                if cluster[0].receiver_fus(cdfg) != group.receiver_fus(cdfg):
                    continue
                combined = [key for member in cluster for key in member.arcs]
                combined.extend(group.arcs)
                if self._mixed_receivers(cdfg, combined):
                    continue
                if all(self._groups_never_concurrent(cdfg, reach, member, group) for member in cluster):
                    cluster.append(group)
                    placed = True
                    break
            if not placed:
                merged.append([group])

        plan = ChannelPlan()
        for index, cluster in enumerate(merged):
            receivers = cluster[0].receiver_fus(cdfg)
            arcs: List[ArcKey] = []
            for group in cluster:
                arcs.extend(group.arcs)
            label = "_".join(sorted(receivers))
            name = f"ch{index}_{cluster[0].src_fu}_to_{label}"
            if report is not None and len(cluster) > 1:
                report.record(
                    "channels-merged", name, sub_transform="GT5.1",
                    sources=sorted(group.source for group in cluster),
                    receivers=sorted(receivers),
                    arcs=[f"{src} -> {dst}" for src, dst in sorted(arcs)],
                )
            plan.add(
                Channel(
                    name=name,
                    src_fu=cluster[0].src_fu,
                    dst_fus=receivers,
                    arcs=sorted(arcs),
                )
            )
        # environment wires keep dedicated channels
        env_arcs = [
            arc
            for arc in cdfg.inter_fu_arcs()
            if cdfg.fu_of(arc.src) == ENV or cdfg.fu_of(arc.dst) == ENV
        ]
        for index, arc in enumerate(sorted(env_arcs, key=lambda a: a.key)):
            plan.add(
                Channel(
                    name=f"env{index}_{cdfg.fu_of(arc.src)}_{cdfg.fu_of(arc.dst)}",
                    src_fu=cdfg.fu_of(arc.src),
                    dst_fus=frozenset({cdfg.fu_of(arc.dst)}),
                    arcs=[arc.key],
                )
            )
        return plan

    # ------------------------------------------------------------------
    # concurrency proof
    # ------------------------------------------------------------------
    def _groups_never_concurrent(
        self, cdfg: Cdfg, reach: UnfoldedReach, left: _Group, right: _Group
    ) -> bool:
        for left_key in left.arcs:
            for right_key in right.arcs:
                if not self._never_concurrent(cdfg, reach, left_key, right_key):
                    return False
        return True

    def _arc_instances(
        self, cdfg: Cdfg, reach: UnfoldedReach, key: ArcKey
    ) -> List[Tuple[Copy, Copy]]:
        """(production, consumption) node copies for each firing of an arc."""
        src, dst = key
        arc = cdfg.arc(src, dst)
        src_iter = reach.is_iterated(src)
        dst_iter = reach.is_iterated(dst)
        if not src_iter and not dst_iter:
            return [((src, None), (dst, None))]
        if not src_iter:
            return [((src, None), (dst, 0))]
        if not dst_iter:
            return [((src, self.unfold - 1), (dst, None))]
        if arc.backward:
            return [((src, k), (dst, k + 1)) for k in range(self.unfold - 1)]
        return [((src, k), (dst, k)) for k in range(self.unfold)]

    def _never_concurrent(
        self, cdfg: Cdfg, reach: UnfoldedReach, left: ArcKey, right: ArcKey
    ) -> bool:
        """Sound structural check that two arcs never hold simultaneous
        pending events: for every pair of instances, the consumption of
        one happens-before the production of the other."""
        for left_prod, left_cons in self._arc_instances(cdfg, reach, left):
            for right_prod, right_cons in self._arc_instances(cdfg, reach, right):
                left_first = left_cons == right_prod or reach.path_exists(left_cons, right_prod)
                right_first = right_cons == left_prod or reach.path_exists(right_cons, left_prod)
                if not (left_first or right_first):
                    return False
        return True
