"""Transform framework: reports, the pass manager and safety checks."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.cdfg.graph import Cdfg
from repro.cdfg.validate import check_well_formed
from repro.errors import TransformError
from repro.obs.provenance import ProvenanceRecord
from repro.obs.spans import span
from repro.transforms.unfold import cached_unfolded_reach


@dataclass
class TransformReport:
    """What a transform did to a CDFG."""

    name: str
    applied: bool = False
    removed_arcs: List[str] = field(default_factory=list)
    added_arcs: List[str] = field(default_factory=list)
    merged_nodes: List[str] = field(default_factory=list)
    details: List[str] = field(default_factory=list)
    #: transform-specific outputs (GT5 stores its ChannelPlan here)
    artifacts: Dict[str, object] = field(default_factory=dict)
    #: wall time of the pass in seconds (filled by PassManager.run)
    duration: float = 0.0
    #: typed provenance of every individual action of the pass
    provenance: List[ProvenanceRecord] = field(default_factory=list)

    def note(self, message: str) -> None:
        self.details.append(message)

    def record(self, kind: str, subject: str, **detail: object) -> ProvenanceRecord:
        """Append (and return) a provenance record for this pass."""
        entry = ProvenanceRecord(self.name, kind, subject, dict(detail))
        self.provenance.append(entry)
        return entry

    def summary(self) -> str:
        parts = [self.name, "applied" if self.applied else "no-op"]
        if self.removed_arcs:
            parts.append(f"-{len(self.removed_arcs)} arcs")
        if self.added_arcs:
            parts.append(f"+{len(self.added_arcs)} arcs")
        if self.merged_nodes:
            parts.append(f"{len(self.merged_nodes)} merges")
        if self.duration:
            parts.append(f"[{self.duration:.3f}s]")
        return " ".join(parts)


class Transform(abc.ABC):
    """A CDFG transformation.  ``apply`` mutates the graph in place."""

    #: Short name (GT1..GT5) used in reports and logs.
    name: str = "transform"

    @abc.abstractmethod
    def apply(self, cdfg: Cdfg) -> TransformReport:
        """Apply the transform to ``cdfg``; return a report."""


class PassManager:
    """Run a sequence of transforms with optional safety checking.

    With ``checked=True`` (the default) the pass manager validates
    well-formedness after each transform and verifies that the ordering
    the original CDFG guarantees between operation nodes is preserved
    (transforms may *add* ordering — GT5.2 does — but never lose any,
    except where a transform is explicitly entitled to: GT3 removals
    are justified by timing analysis and GT1 re-expresses ENDLOOP
    synchronization, so those two carry their own proofs).
    """

    def __init__(self, checked: bool = True):
        self.checked = checked

    def run(
        self,
        cdfg: Cdfg,
        transforms: Sequence[Transform],
        oracle: Optional[Callable[[TransformReport, Cdfg, Cdfg], None]] = None,
    ) -> Tuple[Cdfg, List[TransformReport]]:
        """Apply ``transforms`` to a copy of ``cdfg``.

        Each pass's wall time is recorded on its report and in the
        process-global :mod:`repro.perf` registry under
        ``global/<name>``.

        ``oracle`` is a per-pass invariant check, called as
        ``oracle(report, before, after)`` after every ``apply()`` (and
        after well-formedness validation when ``checked``); ``before``
        is a snapshot of the graph the pass received.  It should raise
        (e.g. :class:`~repro.errors.VerificationError`) on violation.
        The snapshot copy is only taken when an oracle is installed.

        Each pass runs inside a :func:`repro.obs.spans.span` named
        ``global/<name>`` (which still feeds the :mod:`repro.perf`
        registry, so ``--timings`` is unchanged) and is guaranteed at
        least one provenance record: transforms emit typed records for
        every action, and the manager appends a ``pass-summary`` record
        with the aggregate counts.
        """
        from repro import perf

        working = cdfg.copy()
        reports: List[TransformReport] = []
        for transform in transforms:
            snapshot = working.copy() if oracle is not None else None
            with span(f"global/{transform.name}", workload=cdfg.name) as section:
                report = transform.apply(working)
            report.duration = section.duration
            section.attributes.update(
                applied=report.applied,
                removed_arcs=len(report.removed_arcs),
                added_arcs=len(report.added_arcs),
            )
            if not report.provenance:
                _derive_generic_provenance(report)
            report.record(
                "pass-summary",
                cdfg.name,
                applied=report.applied,
                removed_arcs=len(report.removed_arcs),
                added_arcs=len(report.added_arcs),
                merged_nodes=len(report.merged_nodes),
            )
            reports.append(report)
            if self.checked:
                with perf.timed_section("global/check_well_formed"):
                    check_well_formed(working)
            if oracle is not None:
                oracle(report, snapshot, working)
        return working, reports


def _derive_generic_provenance(report: TransformReport) -> None:
    """Fallback records for a transform without bespoke instrumentation."""
    for arc in report.removed_arcs:
        report.record("arc-removed", arc)
    for arc in report.added_arcs:
        report.record("arc-added", arc)
    for node in report.merged_nodes:
        report.record("nodes-merged", node)


def operation_order_pairs(cdfg: Cdfg, unfold: int = 2) -> Set[Tuple[str, str]]:
    """Ordered pairs of *operation* node copies implied by the constraints.

    Computed over an ``unfold``-copy loop unfolding so cross-iteration
    ordering (backward arcs) is included.  Shared node names are paired
    with their unfolded iteration index.
    """
    reach = cached_unfolded_reach(cdfg, unfold=unfold)
    pairs: Set[Tuple[str, str]] = set()
    operations = [node.name for node in cdfg.operation_nodes()]
    for src in operations:
        for src_copy in reach.copies(src):
            for dst_copy in reach.reachable(src_copy):
                dst, dst_k = dst_copy
                if dst in operations:
                    pairs.add((_copy_id(src_copy), _copy_id(dst_copy)))
    return pairs


def _copy_id(copy: Tuple[str, Optional[int]]) -> str:
    name, iteration = copy
    return name if iteration is None else f"{name}@{iteration}"


def check_precedence_preserved(
    before: Cdfg,
    after: Cdfg,
    allow_missing: bool = False,
    unfold: int = 2,
) -> List[Tuple[str, str]]:
    """Ordered operation pairs of ``before`` missing from ``after``.

    Node renaming from GT4 merges is resolved: a merged node stands in
    for each of its constituents.  Returns the missing pairs (empty
    means full preservation); raises :class:`TransformError` unless
    ``allow_missing`` is set.
    """
    alias: Dict[str, str] = {}
    for node in after.operation_nodes():
        for part in node.name.split("; "):
            alias[part] = node.name
        alias[node.name] = node.name

    before_pairs = operation_order_pairs(before, unfold=unfold)
    after_pairs = operation_order_pairs(after, unfold=unfold)

    missing: List[Tuple[str, str]] = []
    for src_id, dst_id in sorted(before_pairs):
        src, __, src_k = src_id.partition("@")
        dst, __, dst_k = dst_id.partition("@")
        if src not in alias or dst not in alias:
            continue  # node disappeared entirely (not produced by our transforms)
        mapped_src = alias[src] + (f"@{src_k}" if src_k else "")
        mapped_dst = alias[dst] + (f"@{dst_k}" if dst_k else "")
        if mapped_src == mapped_dst:
            continue  # the pair collapsed into one node (GT4)
        if (mapped_src, mapped_dst) not in after_pairs:
            missing.append((src_id, dst_id))
    if missing and not allow_missing:
        raise TransformError(
            "precedence", f"ordering lost for {len(missing)} pairs, e.g. {missing[:3]}"
        )
    return missing
