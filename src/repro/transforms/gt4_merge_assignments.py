"""GT4: merging of assignment nodes (paper Section 3.4).

Pure register-copy nodes (``X1 := X``) examine and write registers but
do not use their functional unit, so they can execute *in parallel*
with the preceding (preferred, as in the paper's ``Y := Y + M2; X1 :=
X`` example) or succeeding operation bound to the same unit.  Merging
removes one node from the controller's schedule, shortening the
extracted state machine.

A merge is performed only when the two nodes are independent — no data
or register-allocation arc connects them in either direction (their
only mutual constraint is the FU scheduling arc), and they live in the
same block and branch.  The merged node inherits every remaining
constraint of both: the union can only tighten ordering, so precedence
is preserved.
"""

from __future__ import annotations

from typing import Optional

from repro.cdfg.arc import Arc, ArcRole
from repro.cdfg.graph import Cdfg
from repro.cdfg.node import Node
from repro.cdfg.kinds import NodeKind
from repro.transforms.base import Transform, TransformReport


class MergeAssignmentNodes(Transform):
    """GT4: fold copy nodes into neighbouring operation nodes."""

    name = "GT4"

    def apply(self, cdfg: Cdfg) -> TransformReport:
        report = TransformReport(self.name)
        merged = True
        while merged:
            merged = False
            for node in list(cdfg.operation_nodes()):
                if node.uses_functional_unit:
                    continue
                partner = self._pick_partner(cdfg, node.name)
                if partner is None:
                    continue
                self._merge(cdfg, partner, node.name, report)
                merged = True
                break
        report.applied = bool(report.merged_nodes)
        return report

    # ------------------------------------------------------------------
    def _pick_partner(self, cdfg: Cdfg, copy_name: str) -> Optional[str]:
        previous, following = cdfg.schedule_neighbors(copy_name)
        for candidate in (previous, following):
            if candidate is None:
                continue
            if self._mergeable(cdfg, candidate, copy_name):
                return candidate
        return None

    def _mergeable(self, cdfg: Cdfg, target: str, copy_name: str) -> bool:
        target_node = cdfg.node(target)
        if target_node.kind is not NodeKind.OPERATION:
            return False
        if cdfg.block_of(target) != cdfg.block_of(copy_name):
            return False
        if cdfg.branch_of(target) != cdfg.branch_of(copy_name):
            return False
        # independence: only a scheduling arc may connect the pair
        for src, dst in ((target, copy_name), (copy_name, target)):
            if cdfg.has_arc(src, dst):
                arc = cdfg.arc(src, dst)
                if arc.roles != frozenset({ArcRole.SCHEDULING}):
                    return False
        copy_node = cdfg.node(copy_name)
        if copy_node.reads & target_node.writes or target_node.reads & copy_node.writes:
            return False
        if copy_node.writes & target_node.writes:
            return False
        # a longer path between the pair would become a cycle after merging
        for src, dst in ((target, copy_name), (copy_name, target)):
            exclude = (src, dst) if cdfg.has_arc(src, dst) else None
            if cdfg.implies(src, dst, exclude_arc=exclude):
                return False
        return True

    def _merge(self, cdfg: Cdfg, target: str, copy_name: str, report: TransformReport) -> None:
        target_node = cdfg.node(target)
        copy_node = cdfg.node(copy_name)
        # keep schedule order within the merged statement list
        schedule = cdfg.fu_schedule(target_node.fu or "")
        if schedule.index(target) < schedule.index(copy_name):
            statements = target_node.statements + copy_node.statements
            merged_name = f"{target}; {copy_name}"
        else:
            statements = copy_node.statements + target_node.statements
            merged_name = f"{copy_name}; {target}"

        # drop the pair's mutual scheduling arc before rewiring
        for src, dst in ((target, copy_name), (copy_name, target)):
            if cdfg.has_arc(src, dst):
                cdfg.remove_arc(src, dst)

        merged_node = Node(
            merged_name,
            NodeKind.OPERATION,
            fu=target_node.fu,
            statements=statements,
        )
        cdfg.replace_node(target, merged_node)
        # rewire the copy node's remaining arcs onto the merged node
        for arc in list(cdfg.arcs_to(copy_name)):
            cdfg.remove_arc(arc.src, arc.dst)
            if arc.src != merged_name:
                cdfg.add_arc(Arc(arc.src, merged_name, arc.tags, backward=arc.backward, label=arc.label))
        for arc in list(cdfg.arcs_from(copy_name)):
            cdfg.remove_arc(arc.src, arc.dst)
            if arc.dst != merged_name:
                cdfg.add_arc(Arc(merged_name, arc.dst, arc.tags, backward=arc.backward, label=arc.label))
        cdfg.remove_node(copy_name)
        report.merged_nodes.append(merged_name)
        report.record(
            "nodes-merged", merged_name,
            copy_node=copy_name, target_node=target, fu=target_node.fu,
        )
        report.note(f"merged {copy_name!r} into {target!r} as {merged_name!r}")
