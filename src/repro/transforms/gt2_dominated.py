"""GT2: removal of dominated constraints (paper Section 3.2).

A constraint arc (a, b) is *implied* when a path of other constraints
leads from a to b; implied arcs are removed ("the constraint is
removed if it is contained in the transitive closure of all other
constraints").

For a DAG the transitive reduction is unique, and every arc with an
alternative path of length >= 2 can be dropped simultaneously; we
operate on the single-iteration forward DAG and therefore never touch
backward arcs, iterate arcs, or the IF decision arc (whose role is
behavioural, not ordering).
"""

from __future__ import annotations

from repro.cdfg.graph import Cdfg
from repro.cdfg.kinds import NodeKind
from repro.transforms.base import Transform, TransformReport


class RemoveDominatedConstraints(Transform):
    """GT2: drop arcs implied by the remaining constraints."""

    name = "GT2"

    def apply(self, cdfg: Cdfg) -> TransformReport:
        report = TransformReport(self.name)
        dominated = []
        for arc in cdfg.forward_arcs():
            if self._is_protected(cdfg, arc):
                continue
            if cdfg.implies(arc.src, arc.dst, exclude_arc=arc.key):
                dominated.append(arc)
        for arc in dominated:
            cdfg.remove_arc(arc.src, arc.dst)
            report.removed_arcs.append(str(arc))
            report.note(f"removed dominated {arc}")
        report.applied = bool(dominated)
        return report

    @staticmethod
    def _is_protected(cdfg: Cdfg, arc) -> bool:
        src_kind = cdfg.node(arc.src).kind
        dst_kind = cdfg.node(arc.dst).kind
        # the IF decision arc tells ENDIF which branch ran: never remove
        if src_kind is NodeKind.IF and dst_kind is NodeKind.ENDIF:
            return True
        return False
