"""GT2: removal of dominated constraints (paper Section 3.2).

A constraint arc (a, b) is *implied* when a path of other constraints
leads from a to b; implied arcs are removed ("the constraint is
removed if it is contained in the transitive closure of all other
constraints").

For a DAG the transitive reduction is unique, and every arc with an
alternative path of length >= 2 can be dropped simultaneously; we
operate on the single-iteration forward DAG and therefore never touch
backward arcs, iterate arcs, or the IF decision arc (whose role is
behavioural, not ordering).
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

from repro.cdfg.graph import Cdfg
from repro.cdfg.kinds import NodeKind
from repro.transforms.base import Transform, TransformReport


class RemoveDominatedConstraints(Transform):
    """GT2: drop arcs implied by the remaining constraints."""

    name = "GT2"

    def apply(self, cdfg: Cdfg) -> TransformReport:
        report = TransformReport(self.name)
        dominated = []
        for arc in cdfg.forward_arcs():
            if self._is_protected(cdfg, arc):
                continue
            path = dominating_path(cdfg, arc.src, arc.dst, exclude_arc=arc.key)
            if path is not None:
                dominated.append((arc, path))
        for arc, path in dominated:
            cdfg.remove_arc(arc.src, arc.dst)
            report.removed_arcs.append(str(arc))
            report.record(
                "dominated-arc-removed", str(arc), dominating_path=path,
            )
            report.note(f"removed dominated {arc} (via {' -> '.join(path)})")
        report.applied = bool(dominated)
        return report

    @staticmethod
    def _is_protected(cdfg: Cdfg, arc) -> bool:
        src_kind = cdfg.node(arc.src).kind
        dst_kind = cdfg.node(arc.dst).kind
        # the IF decision arc tells ENDIF which branch ran: never remove
        if src_kind is NodeKind.IF and dst_kind is NodeKind.ENDIF:
            return True
        return False


def dominating_path(
    cdfg: Cdfg,
    src: str,
    dst: str,
    exclude_arc: Optional[Tuple[str, str]] = None,
) -> Optional[List[str]]:
    """A shortest forward path src -> ... -> dst avoiding ``exclude_arc``.

    Returns the node sequence including both endpoints, or ``None`` when
    no such path exists.  This is the witness that a constraint arc
    (src, dst) is dominated — :meth:`Cdfg.implies` answers the same
    query but yields only a boolean.
    """
    parents = {src: None}
    queue = deque([src])
    while queue:
        current = queue.popleft()
        for arc in cdfg.arcs_from(current):
            if arc.backward or cdfg.is_iterate_arc(arc):
                continue
            if exclude_arc is not None and arc.key == exclude_arc:
                continue
            if arc.dst in parents:
                continue
            parents[arc.dst] = current
            if arc.dst == dst:
                path = [dst]
                while path[-1] != src:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            queue.append(arc.dst)
    return None
