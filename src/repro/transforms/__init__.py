"""Global (CDFG-level) transformations — paper Section 3.

The five transforms optimize controller-controller communication:

- :class:`~repro.transforms.gt1_loop_parallelism.LoopParallelism` (GT1)
- :class:`~repro.transforms.gt2_dominated.RemoveDominatedConstraints` (GT2)
- :class:`~repro.transforms.gt3_relative_timing.RelativeTimingOptimization` (GT3)
- :class:`~repro.transforms.gt4_merge_assignments.MergeAssignmentNodes` (GT4)
- :class:`~repro.transforms.gt5_channel_elimination.ChannelElimination` (GT5)

All transforms preserve the precedence order of the original CDFG
(checked by :func:`repro.transforms.base.check_precedence_preserved`).
:mod:`repro.transforms.scripts` packages the standard sequences.
"""

from repro.transforms.base import (
    PassManager,
    Transform,
    TransformReport,
    check_precedence_preserved,
)
from repro.transforms.gt1_loop_parallelism import LoopParallelism
from repro.transforms.gt2_dominated import RemoveDominatedConstraints
from repro.transforms.gt3_relative_timing import RelativeTimingOptimization
from repro.transforms.gt4_merge_assignments import MergeAssignmentNodes
from repro.transforms.gt5_channel_elimination import ChannelElimination
from repro.transforms.scripts import GlobalOptimizationResult, optimize_global

__all__ = [
    "PassManager",
    "Transform",
    "TransformReport",
    "check_precedence_preserved",
    "LoopParallelism",
    "RemoveDominatedConstraints",
    "RelativeTimingOptimization",
    "MergeAssignmentNodes",
    "ChannelElimination",
    "GlobalOptimizationResult",
    "optimize_global",
]
