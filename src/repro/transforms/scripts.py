"""Standard global-transformation scripts.

The paper presents the transforms as a toolbox ("much like the
transforms of SIS") and announces scripts as future work; this module
provides the canonical script used throughout the evaluation —
GT1 -> GT2 -> GT3 -> GT4 -> GT5 — plus hooks for ablation studies
(every transform can be disabled individually).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.cdfg.graph import Cdfg
from repro.channels.model import ChannelPlan, derive_channels
from repro.obs.provenance import ProvenanceRecord, write_jsonl
from repro.obs.spans import span
from repro.timing.delays import DelayModel
from repro.transforms.base import PassManager, Transform, TransformReport
from repro.transforms.gt1_loop_parallelism import LoopParallelism
from repro.transforms.gt2_dominated import RemoveDominatedConstraints
from repro.transforms.gt3_relative_timing import RelativeTimingOptimization
from repro.transforms.gt4_merge_assignments import MergeAssignmentNodes
from repro.transforms.gt5_channel_elimination import ChannelElimination

#: Canonical order of the global transforms.
STANDARD_SEQUENCE = ("GT1", "GT2", "GT3", "GT4", "GT5")


@dataclass
class GlobalOptimizationResult:
    """Output of :func:`optimize_global`."""

    cdfg: Cdfg
    reports: List[TransformReport] = field(default_factory=list)
    channel_plan: Optional[ChannelPlan] = None

    def report(self, name: str) -> TransformReport:
        for report in self.reports:
            if report.name == name:
                return report
        raise KeyError(f"no report for transform {name!r}")

    @property
    def provenance(self) -> List[ProvenanceRecord]:
        """Every pass's provenance records, in application order."""
        return [entry for report in self.reports for entry in report.provenance]

    def export_provenance(self, target) -> int:
        """Write the provenance as JSONL to a path or stream."""
        return write_jsonl(self.provenance, target)

    @property
    def plan(self) -> ChannelPlan:
        """The channel plan (GT5's if it ran, else one-wire-per-arc)."""
        if self.channel_plan is not None:
            return self.channel_plan
        return derive_channels(self.cdfg)


def build_sequence(
    enabled: Sequence[str] = STANDARD_SEQUENCE,
    delays: Optional[DelayModel] = None,
    checked: bool = True,
) -> List[Transform]:
    """Instantiate the requested transforms in canonical order."""
    delays = delays or DelayModel()
    catalog = {
        "GT1": lambda: LoopParallelism(),
        "GT2": lambda: RemoveDominatedConstraints(),
        "GT3": lambda: RelativeTimingOptimization(delays=delays),
        "GT4": lambda: MergeAssignmentNodes(),
        "GT5": lambda: ChannelElimination(delays=delays),
    }
    unknown = [name for name in enabled if name not in catalog]
    if unknown:
        raise KeyError(f"unknown transforms: {unknown}")
    return [catalog[name]() for name in STANDARD_SEQUENCE if name in enabled]


def apply_transform(
    cdfg: Cdfg,
    name: str,
    delays: Optional[DelayModel] = None,
    checked: bool = True,
    oracle: Optional[Callable[[TransformReport, Cdfg, Cdfg], None]] = None,
) -> "GlobalOptimizationResult":
    """Apply ONE global transform to a copy of ``cdfg``.

    The single-step entry point of the incremental exploration engine
    (:mod:`repro.cache.incremental`): applying the canonical script one
    transform at a time through this helper is pass-for-pass identical
    to one :func:`optimize_global` call with the full subset, because
    both run each pass through the same :class:`PassManager` on the
    graph state left by the previous pass.
    """
    return optimize_global(cdfg, enabled=(name,), delays=delays, checked=checked, oracle=oracle)


def optimize_global(
    cdfg: Cdfg,
    enabled: Sequence[str] = STANDARD_SEQUENCE,
    delays: Optional[DelayModel] = None,
    checked: bool = True,
    oracle: Optional[Callable[[TransformReport, Cdfg, Cdfg], None]] = None,
) -> GlobalOptimizationResult:
    """Run the global-transform script on a copy of ``cdfg``.

    ``enabled`` selects a subset of GT1..GT5 (canonical order is always
    respected); ``checked`` validates graph well-formedness after each
    transform.  ``oracle`` is forwarded to the pass manager and called
    as ``oracle(report, before, after)`` after every pass (see
    :class:`~repro.transforms.base.PassManager`); the metamorphic
    per-transform oracles live in :mod:`repro.verify.oracles`.
    """
    transforms = build_sequence(enabled, delays=delays, checked=checked)
    manager = PassManager(checked=checked)
    with span("optimize_global", workload=cdfg.name, enabled="+".join(enabled)):
        optimized, reports = manager.run(cdfg, transforms, oracle=oracle)

    channel_plan: Optional[ChannelPlan] = None
    for report in reports:
        plan = report.artifacts.get("channel_plan")
        if plan is not None:
            channel_plan = plan  # type: ignore[assignment]
    return GlobalOptimizationResult(cdfg=optimized, reports=reports, channel_plan=channel_plan)
