"""GT1: loop parallelism (paper Section 3.1).

Re-structures each loop so that successive iterations may overlap:

A. *Remove synchronization at ENDLOOP*: every arc into ENDLOOP is
   removed except the FU scheduling arc from ENDLOOP's predecessor in
   its own unit's schedule.
B. *Add backward arcs* for loop-body variables: for each variable, from
   its last instances (one write, or the parallel reads since the last
   write) to its first instances (the first write, or the reads that
   precede it).  Backward arcs are pre-enabled for the first iteration.
   Candidates already implied by a cross-iteration path of remaining
   constraints are pruned (the paper's steps C/D show the same
   dominated-constraint reasoning; we apply it uniformly).  A variable
   whose only body access is a single node (a write nothing else
   reads) admits no backward arc — src and dst would coincide — yet
   its write stream still races across iterations; such lone accessors
   are serialized through ENDLOOP instead, like step C's loop
   variable.
C. *Add an arc for the loop variable*: from its last write to ENDLOOP,
   so the LOOP node examines an up-to-date value — unless implied.
D. *Limit parallelism*: from the first body node of each functional
   unit to ENDLOOP, restoring the single-outstanding-transition
   property of ready wires — unless implied.  This restricts overlap
   to two consecutive iterations.

The transform is safe under the paper's system timing constraint for
loop exit (all components of the final iteration complete before their
results are needed); the token simulator checks exactly that.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cdfg.arc import Arc, ArcRole, control_tag
from repro.cdfg.graph import Cdfg
from repro.cdfg.kinds import NodeKind
from repro.cdfg.node import Node
from repro.transforms.base import Transform, TransformReport
from repro.transforms.unfold import cached_unfolded_reach


class LoopParallelism(Transform):
    """GT1: overlap successive loop iterations."""

    name = "GT1"

    def apply(self, cdfg: Cdfg) -> TransformReport:
        report = TransformReport(self.name)
        for loop in cdfg.nodes_of_kind(NodeKind.LOOP):
            self._apply_to_loop(cdfg, loop.name, report)
        report.applied = bool(report.removed_arcs or report.added_arcs)
        return report

    # ------------------------------------------------------------------
    def _apply_to_loop(self, cdfg: Cdfg, loop: str, report: TransformReport) -> None:
        endloop = self._endloop_of(cdfg, loop)
        members = self._body_members(cdfg, loop)

        self._step_a(cdfg, endloop, report)
        self._step_b(cdfg, loop, endloop, members, report)
        self._step_c(cdfg, loop, endloop, members, report)
        self._step_d(cdfg, loop, endloop, members, report)

    @staticmethod
    def _endloop_of(cdfg: Cdfg, loop: str) -> str:
        for arc in cdfg.arcs_to(loop):
            if cdfg.node(arc.src).kind is NodeKind.ENDLOOP:
                return arc.src
        raise AssertionError(f"LOOP {loop!r} without ENDLOOP")

    @staticmethod
    def _body_members(cdfg: Cdfg, loop: str) -> List[str]:
        """Direct member nodes of the loop block, in program order.

        Program order is recovered from insertion order of the graph's
        nodes, which the builder guarantees.
        """
        return [name for name in cdfg.node_names() if cdfg.block_of(name) == loop]

    # -- step A ---------------------------------------------------------
    def _step_a(self, cdfg: Cdfg, endloop: str, report: TransformReport) -> None:
        prev_in_schedule, __ = cdfg.schedule_neighbors(endloop)
        for arc in list(cdfg.arcs_to(endloop)):
            if arc.src == prev_in_schedule and arc.has_role(ArcRole.SCHEDULING):
                continue
            cdfg.remove_arc(arc.src, arc.dst)
            report.removed_arcs.append(str(arc))
            report.record(
                "sync-removed", str(arc), step="A", endloop=endloop,
                kept_scheduling_arc=prev_in_schedule,
            )
            report.note(f"A: removed ENDLOOP sync {arc}")

    # -- step B ---------------------------------------------------------
    def _step_b(
        self, cdfg: Cdfg, loop: str, endloop: str, members: List[str], report: TransformReport
    ) -> None:
        condition = cdfg.node(loop).condition
        candidates: List[Tuple[str, str, str]] = []  # (src, dst, variable)
        lone_writers: List[Tuple[str, str]] = []  # (node, variable)
        for variable, (firsts, lasts) in sorted(self._variable_instances(cdfg, members).items()):
            if len(firsts) == 1 and firsts == lasts:
                # sole accessor node: a write nothing else in the body
                # touches.  No backward arc can order it (src == dst),
                # but successive iterations still race on the write
                # stream — serialize it through ENDLOOP, like step C
                # does for the loop variable (which already gets its
                # arc there).
                if variable != condition:
                    lone_writers.append((firsts[0], variable))
                continue
            for last in lasts:
                for first in firsts:
                    if last != first:
                        candidates.append((last, first, variable))

        for name, variable in lone_writers:
            if cdfg.implies(name, endloop):
                report.note(
                    f"B: lone write {name} [{variable}] already ordered "
                    "before ENDLOOP"
                )
                continue
            arc = cdfg.add_arc(Arc(name, endloop, frozenset({control_tag()})))
            report.added_arcs.append(str(arc))
            report.record(
                "lone-write-serialized", str(arc), step="B", variable=variable,
            )
            report.note(
                f"B: serialized lone write of {variable!r} through {endloop} "
                "(write-write ordering across iterations)"
            )

        added: List[Tuple[str, str, str]] = []
        for src, dst, variable in candidates:
            if not cdfg.has_arc(src, dst):
                cdfg.add_arc(
                    Arc(src, dst, frozenset({control_tag()}), backward=True,
                        label=f"backward[{variable}]")
                )
            added.append((src, dst, variable))

        # prune candidates implied by a cross-iteration path of the others:
        # unfold once with every candidate in place, then answer each
        # "implied by the rest?" query as a BFS that skips the candidate's
        # own unfolded edges plus those of the already-pruned arcs —
        # identical to removing/re-adding arcs per candidate, minus the
        # re-unfolding that made GT1 the hottest global pass
        reach = cached_unfolded_reach(cdfg, unfold=2)
        banned: set = set()
        for src, dst, variable in added:
            if not cdfg.has_arc(src, dst):
                continue  # already pruned together with a sibling
            arc = cdfg.arc(src, dst)
            if not arc.backward:
                continue  # pre-existing forward arc: not ours to prune
            own = reach.cross_instances(src, dst)
            if reach.path_exists_avoiding((src, 0), (dst, 1), banned | own):
                cdfg.remove_arc(src, dst)
                banned |= own
                report.record(
                    "backward-arc-pruned", f"{src} -> {dst}", step="B",
                    variable=variable, reason="implied by cross-iteration path",
                )
                report.note(f"B: backward arc {src} -> {dst} [{variable}] implied; pruned")
            elif str(arc) not in report.added_arcs:
                report.added_arcs.append(str(arc))
                report.record(
                    "backward-arc-added", str(arc), step="B", variable=variable,
                )
                report.note(f"B: added backward arc {arc}")

    def _variable_instances(
        self, cdfg: Cdfg, members: List[str]
    ) -> Dict[str, Tuple[List[str], List[str]]]:
        """For each variable: (first instances, last instances).

        Accesses are scanned in program order.  The first instances are
        the initial write, or every read that precedes it; the last
        instances are the final write, or every read after it.  Nested
        block roots stand in for all accesses inside their blocks.
        """
        accesses: Dict[str, List[Tuple[str, str]]] = {}  # var -> [(kind, node)]
        for name in members:
            node = cdfg.node(name)
            reads, writes = self._node_accesses(cdfg, node)
            for variable in sorted(reads):
                accesses.setdefault(variable, []).append(("read", name))
            for variable in sorted(writes):
                accesses.setdefault(variable, []).append(("write", name))

        instances: Dict[str, Tuple[List[str], List[str]]] = {}
        for variable, events in accesses.items():
            if not any(kind == "write" for kind, __ in events):
                # read-only in the body: no cross-iteration hazard, and
                # the first/last notion degenerates to "every read",
                # which would weave a pre-enabled backward-arc cycle
                # among the readers (unsafe on ready wires)
                continue
            firsts: List[str] = []
            for kind, name in events:
                if kind == "write":
                    if not firsts:
                        firsts = [name]
                    break
                firsts.append(name)
            lasts: List[str] = []
            for kind, name in reversed(events):
                if kind == "write":
                    if not lasts:
                        lasts = [name]
                    break
                lasts.append(name)
            lasts.reverse()
            instances[variable] = (firsts, lasts)
        return instances

    def _node_accesses(self, cdfg: Cdfg, node: Node) -> Tuple[set, set]:
        if node.kind.is_block_open:
            # nested block: summarize (condition read + member accesses)
            reads = set(node.reads)
            writes = set()
            for member in cdfg.block_members(node.name):
                member_reads, member_writes = self._node_accesses(cdfg, cdfg.node(member))
                reads |= member_reads
                writes |= member_writes
            return reads, writes
        if node.kind.is_block_close:
            return set(), set()
        return set(node.reads), set(node.writes)

    # -- step C ---------------------------------------------------------
    def _step_c(
        self, cdfg: Cdfg, loop: str, endloop: str, members: List[str], report: TransformReport
    ) -> None:
        condition = cdfg.node(loop).condition
        assert condition is not None
        last_write: Optional[str] = None
        for name in members:
            node = cdfg.node(name)
            __, writes = self._node_accesses(cdfg, node)
            if condition in writes:
                last_write = name
        if last_write is None:
            report.note(f"C: loop variable {condition!r} not written in body of {loop}")
            return
        if cdfg.implies(last_write, endloop):
            report.note(f"C: ({last_write}, {endloop}) dominated; not added")
            return
        arc = cdfg.add_arc(Arc(last_write, endloop, frozenset({control_tag()})))
        report.added_arcs.append(str(arc))
        report.record(
            "loop-variable-arc-added", str(arc), step="C",
            variable=condition, loop=loop,
        )
        report.note(f"C: added loop-variable arc {arc}")

    # -- step D ---------------------------------------------------------
    def _step_d(
        self, cdfg: Cdfg, loop: str, endloop: str, members: List[str], report: TransformReport
    ) -> None:
        first_of_fu: Dict[str, str] = {}
        for name in members:
            fu = cdfg.fu_of(name)
            first_of_fu.setdefault(fu, name)
        for fu, first in sorted(first_of_fu.items()):
            if cdfg.implies(first, endloop):
                report.note(f"D: ({first}, {endloop}) dominated; not added")
                continue
            arc = cdfg.add_arc(Arc(first, endloop, frozenset({control_tag()})))
            report.added_arcs.append(str(arc))
            report.record(
                "limit-parallelism-arc-added", str(arc), step="D", fu=fu, loop=loop,
            )
            report.note(f"D: added limit-parallelism arc {arc}")
