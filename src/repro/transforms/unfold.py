"""Cross-iteration reachability via loop unfolding.

Several transforms need to answer "does a path of constraints lead
from node *a* in iteration *k* to node *b* in iteration *k+d*?" —
GT1 step B prunes implied backward arcs with it, GT5's multiplexing
check uses it to prove two channels are never concurrently active, and
the precedence-preservation checker compares unfolded orderings.

:class:`UnfoldedReach` materializes ``unfold`` copies of every loop
iteration (non-nested loops only, like :mod:`repro.timing.analysis`)
and answers reachability queries over the copies.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.cdfg.graph import Cdfg
from repro.cdfg.kinds import NodeKind
from repro.errors import TransformError

#: A node copy: (name, iteration index or None for out-of-loop nodes).
Copy = Tuple[str, Optional[int]]


def _loop_of(cdfg: Cdfg, name: str) -> Optional[str]:
    current = cdfg.block_of(name)
    while current is not None:
        if cdfg.node(current).kind is NodeKind.LOOP:
            return current
        current = cdfg.block_of(current)
    return None


def _is_iterated(cdfg: Cdfg, name: str) -> bool:
    node = cdfg.node(name)
    return node.kind in (NodeKind.LOOP, NodeKind.ENDLOOP) or _loop_of(cdfg, name) is not None


class UnfoldedReach:
    """Reachability over an ``unfold``-copy loop unfolding of a CDFG."""

    def __init__(self, cdfg: Cdfg, unfold: int = 2):
        if unfold < 1:
            raise TransformError("unfold", "needs unfold >= 1")
        for node in cdfg.nodes_of_kind(NodeKind.LOOP):
            if _loop_of(cdfg, node.name) is not None:
                raise TransformError("unfold", f"nested loop {node.name!r} unsupported")
        self.cdfg = cdfg
        self.unfold = unfold
        self._succ: Dict[Copy, List[Copy]] = {}
        self._build()

    def _build(self) -> None:
        cdfg = self.cdfg
        for name in cdfg.node_names():
            for copy in self.copies(name):
                self._succ.setdefault(copy, [])
        for arc in cdfg.arcs():
            src_iterated = _is_iterated(cdfg, arc.src)
            dst_iterated = _is_iterated(cdfg, arc.dst)
            cross = arc.backward or cdfg.is_iterate_arc(arc)
            if not src_iterated and not dst_iterated:
                self._succ[(arc.src, None)].append((arc.dst, None))
            elif not src_iterated:
                self._succ[(arc.src, None)].append((arc.dst, 0))
            elif not dst_iterated:
                self._succ[(arc.src, self.unfold - 1)].append((arc.dst, None))
            else:
                for k in range(self.unfold):
                    if cross:
                        if k + 1 < self.unfold:
                            self._succ[(arc.src, k)].append((arc.dst, k + 1))
                    else:
                        self._succ[(arc.src, k)].append((arc.dst, k))

    def copies(self, name: str) -> List[Copy]:
        if _is_iterated(self.cdfg, name):
            return [(name, k) for k in range(self.unfold)]
        return [(name, None)]

    def reachable(self, source: Copy) -> Set[Copy]:
        seen: Set[Copy] = {source}
        queue = deque([source])
        while queue:
            current = queue.popleft()
            for successor in self._succ[current]:
                if successor not in seen:
                    seen.add(successor)
                    queue.append(successor)
        return seen

    def path_exists(self, source: Copy, target: Copy) -> bool:
        return target in self.reachable(source)

    def implies_same_iteration(self, src: str, dst: str) -> bool:
        """Path from ``src`` to ``dst`` within one iteration (or between
        the unique copies for out-of-loop nodes)."""
        src_copy = (src, 0) if _is_iterated(self.cdfg, src) else (src, None)
        dst_copy = (dst, 0) if _is_iterated(self.cdfg, dst) else (dst, None)
        return self.path_exists(src_copy, dst_copy)

    def implies_next_iteration(self, src: str, dst: str) -> bool:
        """Path from ``src`` in iteration 0 to ``dst`` in iteration 1."""
        if not (_is_iterated(self.cdfg, src) and _is_iterated(self.cdfg, dst)):
            raise TransformError("unfold", "next-iteration query needs in-loop nodes")
        if self.unfold < 2:
            raise TransformError("unfold", "next-iteration query needs unfold >= 2")
        return self.path_exists((src, 0), (dst, 1))
