"""Cross-iteration reachability via loop unfolding.

Several transforms need to answer "does a path of constraints lead
from node *a* in iteration *k* to node *b* in iteration *k+d*?" —
GT1 step B prunes implied backward arcs with it, GT5's multiplexing
check uses it to prove two channels are never concurrently active, and
the precedence-preservation checker compares unfolded orderings.

:class:`UnfoldedReach` materializes ``unfold`` copies of every loop
iteration (non-nested loops only, like :mod:`repro.timing.analysis`)
and answers reachability queries over the copies.

Scaling: instead of one BFS per query, the full reachability closure
is computed once (lazily, on the first query) as one bitset per node
copy — strongly connected components are condensed and bitsets are
OR-propagated in reverse topological order — after which
:meth:`~UnfoldedReach.path_exists` is a single bit test.  Because the
unfolded graph is rebuilt by many callers on the same graph state,
:func:`cached_unfolded_reach` additionally memoizes whole instances in
the graph's :meth:`~repro.cdfg.graph.Cdfg.analysis_cache`, which the
generation counter invalidates on any mutation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.cdfg.graph import Cdfg
from repro.cdfg.kinds import NodeKind
from repro.errors import TransformError

#: A node copy: (name, iteration index or None for out-of-loop nodes).
Copy = Tuple[str, Optional[int]]


def _loop_of(cdfg: Cdfg, name: str) -> Optional[str]:
    current = cdfg.block_of(name)
    while current is not None:
        if cdfg.node(current).kind is NodeKind.LOOP:
            return current
        current = cdfg.block_of(current)
    return None


def _is_iterated(cdfg: Cdfg, name: str) -> bool:
    node = cdfg.node(name)
    return node.kind in (NodeKind.LOOP, NodeKind.ENDLOOP) or _loop_of(cdfg, name) is not None


def cached_unfolded_reach(cdfg: Cdfg, unfold: int = 2) -> "UnfoldedReach":
    """A (possibly shared) :class:`UnfoldedReach` for ``cdfg``.

    Memoized per graph and ``unfold`` in the graph's analysis cache, so
    repeated requests on an unmutated graph reuse both the unfolded
    successor lists and any reachability closure already computed.
    Falls back to a fresh instance when caching is globally disabled
    (:func:`repro.perf.caching_enabled`).
    """
    from repro import perf

    if not perf.caching_enabled():
        return UnfoldedReach(cdfg, unfold=unfold)
    cache = cdfg.analysis_cache()
    key = ("unfolded_reach", unfold)
    reach = cache.get(key)
    if reach is None:
        reach = cache[key] = UnfoldedReach(cdfg, unfold=unfold)
    return reach


class UnfoldedReach:
    """Reachability over an ``unfold``-copy loop unfolding of a CDFG."""

    def __init__(self, cdfg: Cdfg, unfold: int = 2):
        if unfold < 1:
            raise TransformError("unfold", "needs unfold >= 1")
        for node in cdfg.nodes_of_kind(NodeKind.LOOP):
            if _loop_of(cdfg, node.name) is not None:
                raise TransformError("unfold", f"nested loop {node.name!r} unsupported")
        self.cdfg = cdfg
        self.unfold = unfold
        self._iterated: Set[str] = {
            name for name in cdfg.node_names() if _is_iterated(cdfg, name)
        }
        self._succ: Dict[Copy, List[Copy]] = {}
        self._build()
        self._order: List[Copy] = list(self._succ)
        self._index: Dict[Copy, int] = {copy: i for i, copy in enumerate(self._order)}
        #: per-copy reachability bitsets, computed lazily on first query
        self._closure: Optional[List[int]] = None

    def _build(self) -> None:
        cdfg = self.cdfg
        iterated = self._iterated
        for name in cdfg.node_names():
            for copy in self.copies(name):
                self._succ.setdefault(copy, [])
        for arc in cdfg.arcs():
            src_iterated = arc.src in iterated
            dst_iterated = arc.dst in iterated
            cross = arc.backward or cdfg.is_iterate_arc(arc)
            if not src_iterated and not dst_iterated:
                self._succ[(arc.src, None)].append((arc.dst, None))
            elif not src_iterated:
                self._succ[(arc.src, None)].append((arc.dst, 0))
            elif not dst_iterated:
                self._succ[(arc.src, self.unfold - 1)].append((arc.dst, None))
            else:
                for k in range(self.unfold):
                    if cross:
                        if k + 1 < self.unfold:
                            self._succ[(arc.src, k)].append((arc.dst, k + 1))
                    else:
                        self._succ[(arc.src, k)].append((arc.dst, k))

    def is_iterated(self, name: str) -> bool:
        """True when ``name`` executes once per loop iteration."""
        return name in self._iterated

    def copies(self, name: str) -> List[Copy]:
        if name in self._iterated:
            return [(name, k) for k in range(self.unfold)]
        return [(name, None)]

    # ------------------------------------------------------------------
    # closure
    # ------------------------------------------------------------------
    def _ensure_closure(self) -> List[int]:
        """Reachability bitsets for every copy (index order).

        Tarjan's algorithm (iterative) condenses strongly connected
        components; components are emitted successors-first, so one
        OR-propagation pass in emission order yields the closure.  Each
        copy's set includes the copy itself, matching the BFS this
        replaces.
        """
        if self._closure is not None:
            return self._closure
        index_of = self._index
        succ: List[List[int]] = [
            [index_of[target] for target in self._succ[copy]] for copy in self._order
        ]
        n = len(succ)
        visited = [False] * n
        on_stack = [False] * n
        num = [0] * n
        low = [0] * n
        comp = [-1] * n
        comp_members: List[List[int]] = []
        tarjan_stack: List[int] = []
        counter = 0
        for root in range(n):
            if visited[root]:
                continue
            work: List[Tuple[int, int]] = [(root, 0)]
            while work:
                vertex, next_edge = work[-1]
                if next_edge == 0:
                    visited[vertex] = True
                    num[vertex] = low[vertex] = counter
                    counter += 1
                    tarjan_stack.append(vertex)
                    on_stack[vertex] = True
                descended = False
                edges = succ[vertex]
                for i in range(next_edge, len(edges)):
                    target = edges[i]
                    if not visited[target]:
                        work[-1] = (vertex, i + 1)
                        work.append((target, 0))
                        descended = True
                        break
                    if on_stack[target]:
                        low[vertex] = min(low[vertex], num[target])
                if descended:
                    continue
                if low[vertex] == num[vertex]:
                    members: List[int] = []
                    while True:
                        popped = tarjan_stack.pop()
                        on_stack[popped] = False
                        comp[popped] = len(comp_members)
                        members.append(popped)
                        if popped == vertex:
                            break
                    comp_members.append(members)
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[vertex])
        # components only point at earlier-emitted components
        comp_bits: List[int] = [0] * len(comp_members)
        for comp_id, members in enumerate(comp_members):
            bits = 0
            for vertex in members:
                bits |= 1 << vertex
                for target in succ[vertex]:
                    target_comp = comp[target]
                    if target_comp != comp_id:
                        bits |= comp_bits[target_comp]
            comp_bits[comp_id] = bits
        self._closure = [comp_bits[comp[vertex]] for vertex in range(n)]
        return self._closure

    def reachable(self, source: Copy) -> Set[Copy]:
        closure = self._ensure_closure()
        bits = closure[self._index[source]]
        order = self._order
        result: Set[Copy] = set()
        while bits:
            lowest = bits & -bits
            result.add(order[lowest.bit_length() - 1])
            bits ^= lowest
        return result

    def path_exists(self, source: Copy, target: Copy) -> bool:
        target_index = self._index.get(target)
        if target_index is None:
            return False
        closure = self._ensure_closure()
        return bool(closure[self._index[source]] >> target_index & 1)

    def cross_instances(self, src: str, dst: str) -> Set[Tuple[Copy, Copy]]:
        """The unfolded edge instances a *cross* (backward/iterate) arc
        ``src -> dst`` contributes, per the :meth:`_build` mapping."""
        if src in self._iterated and dst in self._iterated:
            return {
                ((src, k), (dst, k + 1)) for k in range(self.unfold - 1)
            }
        return set()

    def path_exists_avoiding(
        self, source: Copy, target: Copy, banned: Set[Tuple[Copy, Copy]]
    ) -> bool:
        """BFS variant of :meth:`path_exists` that ignores the edge
        instances in ``banned`` — used by GT1's pruning, which must ask
        "is this arc implied by a path of the *others*?" without
        mutating (and hence re-unfolding) the graph per candidate."""
        if target not in self._index:
            return False
        if source == target:
            return True
        seen = {source}
        frontier = [source]
        while frontier:
            current = frontier.pop()
            for successor in self._succ[current]:
                if successor in seen or (current, successor) in banned:
                    continue
                if successor == target:
                    return True
                seen.add(successor)
                frontier.append(successor)
        return False

    def implies_same_iteration(self, src: str, dst: str) -> bool:
        """Path from ``src`` to ``dst`` within one iteration (or between
        the unique copies for out-of-loop nodes)."""
        src_copy = (src, 0) if src in self._iterated else (src, None)
        dst_copy = (dst, 0) if dst in self._iterated else (dst, None)
        return self.path_exists(src_copy, dst_copy)

    def implies_next_iteration(self, src: str, dst: str) -> bool:
        """Path from ``src`` in iteration 0 to ``dst`` in iteration 1."""
        if not (src in self._iterated and dst in self._iterated):
            raise TransformError("unfold", "next-iteration query needs in-loop nodes")
        if self.unfold < 2:
            raise TransformError("unfold", "next-iteration query needs unfold >= 2")
        return self.path_exists((src, 0), (dst, 1))
