"""GT3: relative-timing optimization (paper Section 3.3).

Uses bounded-delay timing analysis to delete constraint arcs that can
never be the last to arrive at their destination: the paper's example
removes arc 10 ``(M2 := U * dx, U := U - M1)`` because arc 11
``(M1 := A * B, U := U - M1)`` is enabled only after a chain of three
computations and is therefore always slower.

Safety follows the paper's requirement: "it must be verified that the
removed constraint arc is under no execution path the last to occur."
:func:`repro.timing.analysis.is_provably_not_last` provides that proof
over the delay model's ``[min, max]`` intervals.  Removals are applied
one at a time with the analysis recomputed in between, because deleting
a constraint lets its destination fire earlier, which can invalidate a
previously-computed proof for another arc.

Only data/register-allocation arcs are candidates: control and
scheduling arcs carry structural roles (loop entry, FU ordering) that
the timing argument does not cover.
"""

from __future__ import annotations

from typing import Optional

from repro.cdfg.arc import ArcRole
from repro.cdfg.graph import Cdfg
from repro.timing.analysis import relative_arc_dominates
from repro.timing.delays import DelayModel
from repro.transforms.base import Transform, TransformReport


class RelativeTimingOptimization(Transform):
    """GT3: remove provably-never-last constraint arcs."""

    name = "GT3"

    def __init__(self, delays: Optional[DelayModel] = None, unfold: int = 3):
        self.delays = delays or DelayModel()
        self.unfold = unfold

    def apply(self, cdfg: Cdfg) -> TransformReport:
        report = TransformReport(self.name)
        changed = True
        while changed:
            changed = False
            for arc in sorted(self._candidates(cdfg), key=lambda a: a.key):
                witness = self._find_witness(cdfg, arc)
                if witness is not None:
                    src_node = cdfg.node(arc.src)
                    cdfg.remove_arc(arc.src, arc.dst)
                    report.removed_arcs.append(str(arc))
                    report.record(
                        "timed-arc-removed", str(arc),
                        witness=f"{witness.src} -> {witness.dst}",
                        proof="witness arc provably arrives no earlier "
                        "under the [min, max] delay model",
                        # structured fields for the fault-campaign slack
                        # sweep (repro.resilience): which FU/operators to
                        # stress to test the removal's timing margin
                        src=arc.src,
                        dst=arc.dst,
                        fu=cdfg.fu_of(arc.src),
                        operators=sorted(
                            {
                                statement.operator
                                for statement in src_node.statements
                                if statement.operator is not None
                            }
                        ),
                    )
                    report.note(
                        f"removed never-last arc {arc} "
                        f"(witness: {witness.src} -> {witness.dst})"
                    )
                    changed = True
                    break  # re-derive proofs on the updated graph
        report.applied = bool(report.removed_arcs)
        return report

    def _find_witness(self, cdfg: Cdfg, candidate) -> Optional[object]:
        """An incoming arc of the same destination that provably always
        arrives no earlier than ``candidate``."""
        for witness in sorted(cdfg.arcs_to(candidate.dst), key=lambda a: a.key):
            if witness.key == candidate.key or witness.backward:
                continue
            if cdfg.is_iterate_arc(witness):
                continue
            try:
                if relative_arc_dominates(cdfg, candidate, witness, delays=self.delays):
                    return witness
            except Exception:
                continue
        return None

    @staticmethod
    def _candidates(cdfg: Cdfg):
        for arc in cdfg.forward_arcs():
            roles = arc.roles
            if ArcRole.CONTROL in roles or ArcRole.SCHEDULING in roles:
                continue
            # removing the sole remaining constraint would leave the
            # destination untriggered: never a candidate
            incoming = [
                other for other in cdfg.arcs_to(arc.dst)
                if not other.backward and not cdfg.is_iterate_arc(other)
            ]
            if len(incoming) < 2:
                continue
            yield arc
