"""Local (controller-datapath) transformations — paper Section 5.

Applied to each extracted burst-mode controller after the global
signal interaction is fixed:

- :class:`~repro.local_transforms.lt1_move_up.MoveUp` (LT1): outputs
  move to earlier bursts, shortening the critical path — notably
  global "done" signals rise together with the result latch;
- :class:`~repro.local_transforms.lt2_move_down.MoveDown` (LT2):
  off-critical-path outputs (reset phases) move to later bursts,
  enabling folding and signal sharing;
- :class:`~repro.local_transforms.lt3_mux_preselection.MuxPreselection`
  (LT3): the next operation's input muxes are selected at the end of
  the current one;
- :class:`~repro.local_transforms.lt4_remove_acks.RemoveAcknowledgments`
  (LT4): non-essential local acknowledge wires are deleted under
  user-supplied timing assumptions;
- :class:`~repro.local_transforms.lt5_signal_sharing.SignalSharing`
  (LT5): control wires that always switch together merge into one
  forked wire.

:func:`repro.local_transforms.scripts.optimize_local` runs the
canonical sequence LT4 -> LT2 -> LT1 -> LT3 -> LT5 (with state folding
between steps) over every controller of a design.
"""

from repro.local_transforms.base import LocalTransform, LocalReport
from repro.local_transforms.lt1_move_up import MoveUp
from repro.local_transforms.lt2_move_down import MoveDown
from repro.local_transforms.lt3_mux_preselection import MuxPreselection
from repro.local_transforms.lt4_remove_acks import RemoveAcknowledgments
from repro.local_transforms.lt5_signal_sharing import SignalSharing
from repro.local_transforms.scripts import optimize_local

__all__ = [
    "LocalTransform",
    "LocalReport",
    "MoveUp",
    "MoveDown",
    "MuxPreselection",
    "RemoveAcknowledgments",
    "SignalSharing",
    "optimize_local",
]
