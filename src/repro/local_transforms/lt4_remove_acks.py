"""LT4: removal of non-essential acknowledgment wires (Section 5.4).

"The transform replaces the req/ack wire pair by just a req-wire
whenever possible.  User-supplied timing information is used to verify
that the controller operates correctly once the acknowledgment wire
has been deleted."

The timing information here is the standard bundled-data assumption:
mux selects and register latches settle faster than the functional
unit computes, so their acknowledgments carry no information the
controller needs.  The functional unit's own completion signal is
*essential* (operation delay is data-dependent) and kept by default —
the paper's example likewise removes ``reg_A_ack`` and
``reg_A_mux_ack``, not the ALU's completion.

After edge removal, transitions whose input bursts became empty are
folded away; this is where the big state-count reductions of Figure 12
(optimized-GT -> optimized-GT-and-LT) come from.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.afsm.machine import BurstModeMachine
from repro.afsm.signals import SignalKind
from repro.local_transforms.base import LocalReport, LocalTransform

#: action kinds whose acknowledgments are removable under the default
#: bundled-data timing assumption
DEFAULT_REMOVABLE: FrozenSet[str] = frozenset({"src_mux", "reg_mux", "latch"})


class RemoveAcknowledgments(LocalTransform):
    """LT4: delete removable local ack wires and fold the machine."""

    name = "LT4"

    def __init__(self, removable_kinds: FrozenSet[str] = DEFAULT_REMOVABLE):
        self.removable_kinds = frozenset(removable_kinds)

    def apply(self, machine: BurstModeMachine) -> LocalReport:
        report = LocalReport(self.name, machine.name)
        # latch acknowledgments of condition registers are *essential*:
        # the controller samples those registers directly (XBM
        # conditionals), faster than a latch settles, so the completion
        # information cannot be replaced by a timing assumption
        condition_registers = {
            signal.action[1]
            for signal in machine.signals()
            if signal.kind is SignalKind.CONDITIONAL and signal.action is not None
        }
        copy_latch_reqs = self._copy_fragment_latches(machine)
        removable = []
        for signal in machine.signals():
            if signal.kind is not SignalKind.LOCAL_ACK or signal.partner is None:
                continue
            try:
                partner = machine.signal(signal.partner)
            except Exception:
                continue
            if partner.action is None or partner.action[0] not in self.removable_kinds:
                continue
            if (
                partner.action[0] == "latch"
                and partner.action[1] in condition_registers
            ):
                report.note(
                    f"kept essential acknowledgment {signal.name} "
                    f"(condition register {partner.action[1]!r})"
                )
                continue
            if partner.action[0] == "latch" and partner.name in copy_latch_reqs:
                # a pure register copy has no functional-unit completion
                # to anchor its timing: without this acknowledgment the
                # capture could race a later overwrite of the source
                # (or the fragment's done could outrun the capture)
                report.note(
                    f"kept essential acknowledgment {signal.name} "
                    "(pure-copy fragment has no other completion)"
                )
                continue
            removable.append(signal.name)

        for ack in removable:
            used = False
            for transition in machine.transitions():
                if ack in transition.input_burst.signals():
                    transition.input_burst = transition.input_burst.without_signal(ack)
                    used = True
            machine.drop_signal(ack)
            if used:
                report.removed_signals.append(ack)
                report.note(f"removed acknowledgment wire {ack}")

        report.folded_states = machine.fold_trivial_states()
        report.applied = bool(report.removed_signals)
        return report

    @staticmethod
    def _copy_fragment_latches(machine: BurstModeMachine) -> set:
        """Latch request wires driven by fragments that never start a
        functional unit (pure register copies)."""
        fragments_with_fu: set = set()
        latch_by_fragment: dict = {}
        for transition in machine.transitions():
            node = transition.tags.get("node")
            if node is None:
                continue
            for edge in transition.output_burst.edges:
                signal = machine.signal(edge.signal)
                if signal.action is None:
                    continue
                actions = (
                    signal.action[1] if signal.action[0] == "multi" else [signal.action]
                )
                for action in actions:
                    if action[0] == "fu_go":
                        fragments_with_fu.add(node)
                    elif action[0] == "latch":
                        latch_by_fragment.setdefault(node, set()).add(signal.name)
        copy_latches: set = set()
        for node, latches in latch_by_fragment.items():
            if node not in fragments_with_fu:
                copy_latches |= latches
        return copy_latches
