"""LT2: move-down (Section 5.2).

Moves output signals that are not on the critical path to a later
burst — "typically applied to the reset phases of local signals".
Reset edges (req-) migrate toward the end of their fragment so that
earlier bursts thin out, folding can merge states, and LT5 finds more
sharable signals.

A reset edge never moves onto or past a transition that waits for its
partner acknowledgment's falling edge, and never onto a burst that
already touches the same wire.
"""

from __future__ import annotations

from repro.afsm.burst import Edge
from repro.afsm.machine import BurstModeMachine
from repro.afsm.signals import SignalKind
from repro.local_transforms.base import LocalReport, LocalTransform, fragment_chains


class MoveDown(LocalTransform):
    """LT2: push local reset phases to later bursts."""

    name = "LT2"

    def apply(self, machine: BurstModeMachine) -> LocalReport:
        report = LocalReport(self.name, machine.name)
        for chain in fragment_chains(machine):
            for position, transition in enumerate(chain):
                for edge in list(transition.output_burst.edges):
                    if edge.rising:
                        continue
                    signal = machine.signal(edge.signal)
                    if signal.kind is not SignalKind.LOCAL_REQ:
                        continue
                    target = self._latest_position(machine, chain, position, edge)
                    if target > position:
                        transition.output_burst = transition.output_burst.without_signal(
                            edge.signal
                        )
                        chain[target].output_burst = chain[target].output_burst.adding(edge)
                        report.moved_edges.append(str(edge))
                        report.record(
                            "edge-moved-down", str(edge),
                            fragment=transition.tags.get("node"),
                            from_burst=position, to_burst=target,
                        )
                        report.note(
                            f"moved {edge} from burst {position} to {target} "
                            f"of fragment {transition.tags.get('node')}"
                        )
        report.folded_states = machine.fold_trivial_states()
        report.applied = bool(report.moved_edges)
        return report

    def _latest_position(self, machine, chain, position: int, edge: Edge) -> int:
        signal = machine.signal(edge.signal)
        ack = signal.partner
        best = position
        for candidate in range(position + 1, len(chain)):
            transition = chain[candidate]
            if ack is not None and ack in transition.input_burst.signals():
                break  # the ack falls only after this reset: cannot pass
            if edge.signal in transition.output_burst.signals():
                break
            if edge.signal in transition.input_burst.signals():
                break
            best = candidate
        return best
