"""LT1: move-up (Section 5.1).

Safely moves an output signal to an earlier burst.  The headline
application is the paper's Figure 11 example: the global done signal
``A1M+`` moves from the final burst up to the transition that latches
the result, so "latching the result and sending a global done to
other controllers are now performed in parallel".

Safety rule implemented: a global done edge may move up to — but not
above — the burst that issues its fragment's register latch (the
result must be committed concurrently with, or before, the done
reaches any consumer; bundled-data timing covers the latch settle).
Local output edges may move up while no crossed burst waits for a
signal produced by the edge's datapath action (conservative: local
edges only move into bursts later than their trigger's ack).

One class of done is exempt: a done whose channel delivers a register
that a *decision node on another controller* samples as its condition
(``Signal.guards_condition``).  The consumer's choice state reads the
condition level right after the done arrives, with no datapath delay
in between, so bundled-data timing does not cover the latch settle —
hoisting such a done beside the latch lets the remote sample race the
write and take the wrong branch.  Those dones stay in place.
"""

from __future__ import annotations

from typing import List, Optional

from repro.afsm.machine import BurstModeMachine, Transition
from repro.afsm.signals import SignalKind
from repro.local_transforms.base import LocalReport, LocalTransform, fragment_chains


class MoveUp(LocalTransform):
    """LT1: hoist global done signals to the latch burst."""

    name = "LT1"

    def apply(self, machine: BurstModeMachine) -> LocalReport:
        report = LocalReport(self.name, machine.name)
        for chain in fragment_chains(machine):
            latch_position = self._latch_position(machine, chain)
            if latch_position is None:
                continue
            for position in range(latch_position + 1, len(chain)):
                transition = chain[position]
                for edge in list(transition.output_burst.edges):
                    signal = machine.signal(edge.signal)
                    if signal.kind is not SignalKind.GLOBAL_READY:
                        continue
                    if signal.guards_condition:
                        report.record(
                            "edge-kept-for-condition", str(edge),
                            fragment=transition.tags.get("node"),
                        )
                        report.note(
                            f"kept done {edge} in place: its channel guards a "
                            "remote condition sample"
                        )
                        continue
                    target = chain[latch_position]
                    if edge.signal in target.output_burst.signals():
                        continue
                    if edge.signal in target.input_burst.signals():
                        continue
                    transition.output_burst = transition.output_burst.without_signal(
                        edge.signal
                    )
                    target.output_burst = target.output_burst.adding(edge)
                    report.moved_edges.append(str(edge))
                    report.record(
                        "edge-moved-up", str(edge),
                        fragment=transition.tags.get("node"),
                        from_burst=position, to_burst=latch_position,
                        latch_transition=f"{target.src}->{target.dst}",
                    )
                    report.note(
                        f"moved done {edge} up to the latch burst of "
                        f"fragment {transition.tags.get('node')}"
                    )
        report.folded_states = machine.fold_trivial_states()
        report.applied = bool(report.moved_edges)
        return report

    @staticmethod
    def _latch_position(machine: BurstModeMachine, chain: List[Transition]) -> Optional[int]:
        """Index of the burst issuing the fragment's register latch."""
        for position, transition in enumerate(chain):
            for edge in transition.output_burst.edges:
                if not edge.rising:
                    continue
                signal = machine.signal(edge.signal)
                if signal.action is None:
                    continue
                kinds = (
                    [sub[0] for sub in signal.action[1]]
                    if signal.action[0] == "multi"
                    else [signal.action[0]]
                )
                if "latch" in kinds:
                    return position
        return None
