"""Local transform framework and fragment navigation helpers."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.afsm.machine import BurstModeMachine, Transition
from repro.obs.provenance import ProvenanceRecord


@dataclass
class LocalReport:
    """What a local transform did to one machine."""

    name: str
    machine: str
    applied: bool = False
    moved_edges: List[str] = field(default_factory=list)
    removed_signals: List[str] = field(default_factory=list)
    merged_signals: List[str] = field(default_factory=list)
    folded_states: int = 0
    details: List[str] = field(default_factory=list)
    #: wall time of the pass in seconds (filled by optimize_local)
    duration: float = 0.0
    #: typed provenance of every individual action of the pass
    provenance: List[ProvenanceRecord] = field(default_factory=list)

    def note(self, message: str) -> None:
        self.details.append(message)

    def record(self, kind: str, subject: str, **detail: object) -> ProvenanceRecord:
        """Append (and return) a provenance record for this pass; the
        machine name is always included in the detail."""
        merged = {"machine": self.machine}
        merged.update(detail)
        entry = ProvenanceRecord(self.name, kind, subject, merged)
        self.provenance.append(entry)
        return entry


class LocalTransform(abc.ABC):
    """A rewrite of one burst-mode machine, in place."""

    name: str = "LT?"

    @abc.abstractmethod
    def apply(self, machine: BurstModeMachine) -> LocalReport:
        """Apply to ``machine``; return a report."""


def fragment_chains(machine: BurstModeMachine) -> List[List[Transition]]:
    """Linear chains of transitions grouped by originating CDFG node.

    Fragments were emitted as linear state chains; this walks each
    maximal linear run of transitions sharing a ``node`` tag, in state
    order, so transforms can reason about "earlier/later in the same
    fragment".
    """
    chains: List[List[Transition]] = []
    visited: set = set()
    for transition in sorted(machine.transitions(), key=lambda t: t.uid):
        if transition.uid in visited:
            continue
        node = transition.tags.get("node")
        if node is None:
            continue
        # walk backwards to the chain head (guarding against a fragment
        # whose transitions form a cycle, e.g. a one-node loop body)
        head = transition
        walked = {head.uid}
        while True:
            previous = [
                t
                for t in machine.transitions_to(head.src)
                if t.tags.get("node") == node and t.uid not in visited and t is not head
            ]
            if len(previous) != 1 or len(machine.transitions_from(head.src)) != 1:
                break
            if previous[0].uid in walked:
                break  # wrapped around a cyclic fragment
            head = previous[0]
            walked.add(head.uid)
        chain = [head]
        visited.add(head.uid)
        current = head
        while True:
            following = [
                t
                for t in machine.transitions_from(current.dst)
                if t.tags.get("node") == node and t.uid not in visited
            ]
            if len(following) != 1 or len(machine.transitions_to(current.dst)) != 1:
                break
            chain.append(following[0])
            visited.add(following[0].uid)
            current = following[0]
        chains.append(chain)
    return chains
