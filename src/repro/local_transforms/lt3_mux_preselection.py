"""LT3: mux pre-selection (Section 5.3).

"For a functional unit executing the current RTL operation, it is
typically deterministic which RTL operation is next, so its controller
can start pre-selecting the muxes for the next operation at the end of
the current RTL operation's execution."

Implemented as a move of the successor fragment's source-mux (and
copy-route register-mux) rise edges into the final burst of the
predecessor fragment, when:

- the two fragments are joined deterministically (single successor
  transition chain, no intervening choice state);
- the predecessor's final burst does not already touch the wire (the
  same physical mux line may be reset there);
- no burst between loses ordering (none exists: the fragments are
  adjacent).

The moved selection happens strictly earlier, which is safe because a
mux selection only routes data; the consuming latch/operation of the
*next* fragment still waits for its own triggers.

One extra applicability condition protects register muxes.  Routing an
operand (source mux) early is always harmless, but re-steering a
*register's input mux* races any still-settling capture of that
register.  If the register's latch acknowledgment is still consumed
somewhere in the machine, the walk from latch to preselect point
crosses the ack wait and the capture is sequenced.  After LT4 has
stripped that ack (fragments with a functional-unit go), nothing
observes the capture completing — the unoptimized schedule is safe
only because the next select request comes several bursts later, and
hoisting it to a predecessor's tail can land it inside the settling
window (observed: a loop-head preselect racing the latch of a fused
``i := 0`` copy).  So LT3 refuses to preselect the register mux of any
register whose latch request is no longer ack-sequenced.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.afsm.machine import BurstModeMachine, Transition
from repro.afsm.signals import SignalKind
from repro.local_transforms.base import LocalReport, LocalTransform, fragment_chains


def _is_preselectable(machine: BurstModeMachine, signal_name: str) -> bool:
    signal = machine.signal(signal_name)
    if signal.kind is not SignalKind.LOCAL_REQ or signal.action is None:
        return False
    kinds = (
        [sub[0] for sub in signal.action[1]]
        if signal.action[0] == "multi"
        else [signal.action[0]]
    )
    return all(kind in ("src_mux", "reg_mux") for kind in kinds)


class MuxPreselection(LocalTransform):
    """LT3: select the next operation's muxes during the current one."""

    name = "LT3"

    def apply(self, machine: BurstModeMachine) -> LocalReport:
        report = LocalReport(self.name, machine.name)
        unsequenced = self._unsequenced_latch_registers(machine)
        chains = fragment_chains(machine)
        by_first_state: Dict[str, List[Transition]] = {}
        for chain in chains:
            by_first_state[chain[0].src] = chain

        tails_by_dst: Dict[str, List[Transition]] = {}
        for chain in chains:
            tails_by_dst.setdefault(chain[-1].dst, []).append(chain[-1])
        chain_of_tail = {chain[-1].uid: chain for chain in chains}

        for start, successor in by_first_state.items():
            tails = tails_by_dst.get(start, [])
            if not tails:
                continue
            # every entry into the successor's start state must be a
            # fragment tail, and the state must join deterministically
            if len(machine.transitions_to(start)) != len(tails):
                continue
            if len(machine.transitions_from(start)) != 1:
                continue
            source = successor[0]
            for edge in list(source.output_burst.edges):
                if not edge.rising or not _is_preselectable(machine, edge.signal):
                    continue
                conflict = False
                if self._targets_register(machine, edge.signal, unsequenced):
                    # the register's capture is no longer ack-sequenced
                    # (LT4 removed the latch ack): an earlier select
                    # could re-steer the mux inside the settling window
                    conflict = True
                for tail in tails:
                    if edge.signal in tail.output_burst.signals():
                        conflict = True
                    if edge.signal in tail.input_burst.signals():
                        conflict = True
                    touched = self._latched_registers(machine, chain_of_tail[tail.uid])
                    if self._targets_register(machine, edge.signal, touched):
                        # that register's latch may still be settling:
                        # re-steering its mux now would race the capture
                        conflict = True
                if conflict:
                    continue
                source.output_burst = source.output_burst.without_signal(edge.signal)
                for tail in tails:
                    tail.output_burst = tail.output_burst.adding(edge)
                    report.note(
                        f"pre-selected {edge} of fragment {source.tags.get('node')} "
                        f"at end of fragment {tail.tags.get('node')}"
                    )
                report.moved_edges.append(str(edge))
        report.folded_states = machine.fold_trivial_states()
        report.applied = bool(report.moved_edges)
        return report

    @staticmethod
    def _unsequenced_latch_registers(machine: BurstModeMachine) -> set:
        """Registers latched without a surviving latch acknowledgment.

        A latch request whose ack edge still appears in some input
        burst is *sequenced*: the machine waits out the capture before
        moving on, so any later mux selection is safe.  Once LT4 has
        removed the ack, the capture window is invisible to the
        control flow and LT3 must not move that register's mux select
        any earlier.
        """
        latch_reqs: Dict[str, str] = {}  # req signal name -> register
        for signal in machine.signals():
            if signal.kind is not SignalKind.LOCAL_REQ or signal.action is None:
                continue
            actions = (
                signal.action[1] if signal.action[0] == "multi" else [signal.action]
            )
            for action in actions:
                if action[0] == "latch":
                    latch_reqs[signal.name] = action[1]
        requested = set()
        acked = set()
        for transition in machine.transitions():
            for edge in transition.output_burst.edges:
                if edge.rising and edge.signal in latch_reqs:
                    requested.add(edge.signal)
            for edge in transition.input_burst.edges:
                if not edge.rising:
                    continue
                signal = machine.signal(edge.signal)
                if signal.partner in latch_reqs:
                    acked.add(signal.partner)
        return {latch_reqs[req] for req in requested - acked}

    @staticmethod
    def _latched_registers(machine: BurstModeMachine, chain: List[Transition]) -> set:
        registers = set()
        for transition in chain:
            for edge in transition.output_burst.edges:
                signal = machine.signal(edge.signal)
                if signal.action is None:
                    continue
                actions = (
                    signal.action[1] if signal.action[0] == "multi" else [signal.action]
                )
                for action in actions:
                    if action[0] == "latch":
                        registers.add(action[1])
        return registers

    @staticmethod
    def _targets_register(machine: BurstModeMachine, signal_name: str, registers: set) -> bool:
        signal = machine.signal(signal_name)
        if signal.action is None:
            return False
        actions = signal.action[1] if signal.action[0] == "multi" else [signal.action]
        return any(action[0] == "reg_mux" and action[1] in registers for action in actions)
