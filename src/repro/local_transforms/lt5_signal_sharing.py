"""LT5: signal sharing (Section 5.5).

"Eliminating outputs is achieved by merging distinct control wires
into a single forked wire ... applied to two wires that carry the same
signal value at all times, i.e., if their corresponding signals appear
in precisely the same set of output bursts."

Candidates are local request wires whose acknowledgments are gone
(after LT4); the merged wire keeps every datapath action — the fork
activates all of them concurrently.  Typical wins: a register's input
mux select and its latch strobe, or the two operand mux selects of a
binary operation.  Fewer outputs mean fewer logic functions in the
gate-level implementation (Figure 13).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.afsm.burst import OutputBurst
from repro.afsm.machine import BurstModeMachine
from repro.afsm.signals import Signal, SignalKind
from repro.local_transforms.base import LocalReport, LocalTransform


def _all_signatures(machine: BurstModeMachine) -> Dict[str, Tuple]:
    """Occurrence pattern of every output in one sweep over the machine.

    One pass over the transitions builds ``signal -> ((uid, rising)*)``
    for all signals at once, instead of re-scanning every transition
    per signal (the per-pair recomputation dominated LT5 on large
    machines).
    """
    occurrences: Dict[str, List[Tuple[int, bool]]] = {}
    for transition in sorted(machine.transitions(), key=lambda t: t.uid):
        for edge in transition.output_burst.edges:
            occurrences.setdefault(edge.signal, []).append(
                (transition.uid, edge.rising)
            )
    return {name: tuple(pattern) for name, pattern in occurrences.items()}


def _signature(machine: BurstModeMachine, signal_name: str) -> Tuple:
    """Occurrence pattern of an output: (transition uid, direction)*."""
    return _all_signatures(machine).get(signal_name, ())


def _actions_of(signal: Signal) -> List[tuple]:
    if signal.action is None:
        return []
    if signal.action[0] == "multi":
        return list(signal.action[1])
    return [signal.action]


class SignalSharing(LocalTransform):
    """LT5: merge always-identical output wires into forked wires."""

    name = "LT5"

    def apply(self, machine: BurstModeMachine) -> LocalReport:
        report = LocalReport(self.name, machine.name)
        changed = True
        while changed:
            changed = False
            signatures = _all_signatures(machine)
            groups: Dict[Tuple, List[str]] = {}
            for signal in machine.outputs():
                if signal.kind is not SignalKind.LOCAL_REQ:
                    continue
                if signal.partner is not None:
                    try:
                        machine.signal(signal.partner)
                        continue  # live acknowledgment: wave shapes differ
                    except Exception:
                        pass
                signature = signatures.get(signal.name, ())
                if not signature:
                    continue
                groups.setdefault(signature, []).append(signal.name)
            # groups are disjoint and a merge only touches its own
            # signals (uids and other signals' edges are unchanged), so
            # every group can be merged in one sweep; the outer loop's
            # final pass confirms nothing new became shareable
            for signature, names in sorted(groups.items()):
                if len(names) < 2:
                    continue
                merged_actions: List[tuple] = []
                for name in names:
                    merged_actions.extend(_actions_of(machine.signal(name)))
                merged_name = "&".join(sorted(names))
                merged = Signal(
                    merged_name,
                    SignalKind.LOCAL_REQ,
                    is_input=False,
                    partner=None,
                    action=("multi", tuple(merged_actions)),
                )
                first, rest = names[0], names[1:]
                # renaming every member to the merged name collapses the
                # duplicate edges in each burst
                rest_set = frozenset(rest)
                for transition in machine.transitions():
                    if rest_set & transition.output_burst.signals():
                        transition.output_burst = OutputBurst(
                            tuple(
                                edge
                                for edge in transition.output_burst.edges
                                if edge.signal not in rest_set
                            )
                        )
                for name in rest:
                    machine.rename_signal(name, merged)
                machine.rename_signal(first, merged)
                report.merged_signals.append(merged_name)
                report.note(f"shared wire {merged_name} replaces {names}")
                changed = True
        report.applied = bool(report.merged_signals)
        return report
