"""Canonical local-transformation script.

Order matters: LT4 first removes the acknowledgment waits (enabling
folding), LT2 packs reset phases into late bursts, LT1 hoists the
global dones to the latch burst, LT3 pre-selects the next fragment's
muxes, and LT5 finally merges wires that now switch identically.
Machines are folded and re-validated after every step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import perf

from repro.afsm.extract import Controller, DistributedDesign
from repro.obs.provenance import ProvenanceRecord, write_jsonl
from repro.obs.spans import span
from repro.afsm.machine import BurstModeMachine
from repro.afsm.signals import SignalKind
from repro.afsm.validate import check_machine
from repro.local_transforms.base import LocalReport, LocalTransform
from repro.local_transforms.lt1_move_up import MoveUp
from repro.local_transforms.lt2_move_down import MoveDown
from repro.local_transforms.lt3_mux_preselection import MuxPreselection
from repro.local_transforms.lt4_remove_acks import RemoveAcknowledgments
from repro.local_transforms.lt5_signal_sharing import SignalSharing

#: canonical application order
STANDARD_LOCAL_SEQUENCE = ("LT4", "LT2", "LT1", "LT3", "LT5")


@dataclass
class LocalOptimizationResult:
    """A locally-optimized design plus per-machine reports."""

    design: DistributedDesign
    reports: List[LocalReport] = field(default_factory=list)

    def reports_for(self, fu: str) -> List[LocalReport]:
        return [report for report in self.reports if report.machine == fu]

    @property
    def provenance(self) -> List[ProvenanceRecord]:
        """Every pass's provenance records, in application order."""
        return [entry for report in self.reports for entry in report.provenance]

    def export_provenance(self, target) -> int:
        """Write the provenance as JSONL to a path or stream."""
        return write_jsonl(self.provenance, target)


def build_local_sequence(enabled: Sequence[str] = STANDARD_LOCAL_SEQUENCE) -> List[LocalTransform]:
    catalog = {
        "LT1": MoveUp,
        "LT2": MoveDown,
        "LT3": MuxPreselection,
        "LT4": RemoveAcknowledgments,
        "LT5": SignalSharing,
    }
    unknown = [name for name in enabled if name not in catalog]
    if unknown:
        raise KeyError(f"unknown local transforms: {unknown}")
    return [catalog[name]() for name in STANDARD_LOCAL_SEQUENCE if name in enabled]


def optimize_machine(
    fu: str,
    machine: BurstModeMachine,
    transforms: Sequence[LocalTransform],
    checked: bool = True,
    oracle: Optional[
        Callable[[LocalReport, BurstModeMachine, BurstModeMachine], None]
    ] = None,
) -> Tuple[Controller, List[LocalReport]]:
    """Run the local-transform pipeline on a copy of one machine.

    The per-machine unit of :func:`optimize_local`, exposed so the
    incremental exploration engine (:mod:`repro.cache.incremental`) can
    memoize locally-optimized controllers by machine fingerprint while
    sharing this exact code path.  Returns the rebuilt
    :class:`~repro.afsm.extract.Controller` and the per-pass reports.
    """
    machine = machine.copy()
    reports: List[LocalReport] = []
    for transform in transforms:
        snapshot = machine.copy() if oracle is not None else None
        with span(f"local/{transform.name}", machine=fu) as section:
            report = transform.apply(machine)
        report.duration = section.duration
        section.attributes.update(
            applied=report.applied, moved_edges=len(report.moved_edges)
        )
        if not report.provenance:
            _derive_generic_provenance(report)
        report.record(
            "pass-summary",
            fu,
            applied=report.applied,
            moved_edges=len(report.moved_edges),
            removed_signals=len(report.removed_signals),
            merged_signals=len(report.merged_signals),
            folded_states=report.folded_states,
        )
        reports.append(report)
        if checked:
            with perf.timed_section("local/check_machine"):
                check_machine(machine)
        if oracle is not None:
            oracle(report, snapshot, machine)
    machine.fold_trivial_states()
    machine.prune_unreachable()
    controller = Controller(
        fu=fu,
        machine=machine,
        input_wires=[
            s.name for s in machine.inputs() if s.kind is SignalKind.GLOBAL_READY
        ],
        output_wires=[
            s.name for s in machine.outputs() if s.kind is SignalKind.GLOBAL_READY
        ],
    )
    return controller, reports


def optimize_local(
    design: DistributedDesign,
    enabled: Sequence[str] = STANDARD_LOCAL_SEQUENCE,
    checked: bool = True,
    oracle: Optional[
        Callable[[LocalReport, BurstModeMachine, BurstModeMachine], None]
    ] = None,
) -> LocalOptimizationResult:
    """Apply the local-transform script to a copy of every controller.

    ``oracle`` is a per-pass invariant check called as
    ``oracle(report, before, after)`` after every ``apply()`` on every
    machine (``before`` is a snapshot of the machine the pass
    received); it should raise on violation.  The metamorphic
    per-transform oracles live in :mod:`repro.verify.oracles`.
    """
    transforms = build_local_sequence(enabled)
    optimized = DistributedDesign(
        cdfg=design.cdfg, plan=design.plan, phases=design.phases
    )
    reports: List[LocalReport] = []
    with span("optimize_local", workload=design.cdfg.name, enabled="+".join(enabled)):
        for fu, controller in design.controllers.items():
            rebuilt, machine_reports = optimize_machine(
                fu, controller.machine, transforms, checked=checked, oracle=oracle
            )
            reports.extend(machine_reports)
            optimized.controllers[fu] = rebuilt
    return LocalOptimizationResult(design=optimized, reports=reports)


def _derive_generic_provenance(report: LocalReport) -> None:
    """Fallback records for a local pass without bespoke instrumentation."""
    for edge in report.moved_edges:
        report.record("edge-moved", edge)
    for signal in report.removed_signals:
        report.record("signal-removed", signal)
    for signal in report.merged_signals:
        report.record("signals-merged", signal)
