"""Per-operation bounded delays.

Delays are intervals ``[min, max]`` in arbitrary time units, keyed by
operator class.  The defaults reflect the usual datapath hierarchy —
multiplies dominate, ALU operations are a few gate delays, register
copies and structural decisions (LOOP/IF condition examination) are
cheap.  All values can be overridden per functional unit or per
operator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.cdfg.node import Node
from repro.errors import TimingError

Interval = Tuple[float, float]

#: Default delay intervals by operator.
DEFAULT_OPERATOR_DELAYS: Dict[str, Interval] = {
    "+": (2.0, 3.0),
    "-": (2.0, 3.0),
    "*": (6.0, 9.0),
    "/": (8.0, 12.0),
    "<": (1.0, 2.0),
    "<=": (1.0, 2.0),
    ">": (1.0, 2.0),
    ">=": (1.0, 2.0),
    "==": (1.0, 2.0),
    "!=": (1.0, 2.0),
}

#: Register copy (no functional-unit use).
COPY_DELAY: Interval = (0.5, 1.0)

#: Structural nodes: LOOP/IF condition examination, ENDLOOP/ENDIF joins,
#: START/END.
STRUCTURAL_DELAY: Interval = (0.5, 1.0)


@dataclass
class DelayModel:
    """Bounded-delay model for CDFG operations.

    ``overrides`` maps ``(fu, operator)`` or ``(fu, None)`` (whole
    unit) to an interval; the most specific entry wins.
    """

    operator_delays: Dict[str, Interval] = field(
        default_factory=lambda: dict(DEFAULT_OPERATOR_DELAYS)
    )
    copy_delay: Interval = COPY_DELAY
    structural_delay: Interval = STRUCTURAL_DELAY
    overrides: Dict[Tuple[str, Optional[str]], Interval] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, interval in list(self.operator_delays.items()):
            _check_interval(name, interval)
        _check_interval("copy", self.copy_delay)
        _check_interval("structural", self.structural_delay)
        for key, interval in self.overrides.items():
            _check_interval(str(key), interval)
        #: node -> interval memo; sound because nodes are immutable and
        #: the delay tables are treated as frozen after construction
        #: (:meth:`with_override` builds a new model with a new cache)
        self._interval_cache: Dict[Node, Interval] = {}

    # ------------------------------------------------------------------
    def interval_for(self, node: Node) -> Interval:
        """The ``[min, max]`` execution delay of a CDFG node.

        Merged nodes (GT4) take the max over their statements' delays:
        the copies run in parallel with the FU operation.  Results are
        memoized per node (nodes are frozen dataclasses); bypassed when
        :func:`repro.perf.caching_enabled` is off.
        """
        from repro import perf

        if perf.caching_enabled():
            cached = self._interval_cache.get(node)
            if cached is None:
                cached = self._interval_cache[node] = self._interval_for_uncached(node)
            return cached
        return self._interval_for_uncached(node)

    def _interval_for_uncached(self, node: Node) -> Interval:
        if not node.is_operation:
            if node.fu is not None:
                override = self.overrides.get((node.fu, None))
                if override is not None:
                    return override
            return self.structural_delay
        lows, highs = [], []
        for statement in node.statements:
            interval = self._statement_interval(node.fu, statement.operator)
            lows.append(interval[0])
            highs.append(interval[1])
        return (max(lows), max(highs))

    def operator_interval(self, fu: Optional[str], operator: Optional[str]) -> Interval:
        """Delay interval for one operator on one unit (``None``
        operator = register copy).  Used by the datapath model."""
        return self._statement_interval(fu, operator)

    def _statement_interval(self, fu: Optional[str], operator: Optional[str]) -> Interval:
        if fu is not None:
            specific = self.overrides.get((fu, operator))
            if specific is not None:
                return specific
            unit_wide = self.overrides.get((fu, None))
            if unit_wide is not None:
                return unit_wide
        if operator is None:
            return self.copy_delay
        try:
            return self.operator_delays[operator]
        except KeyError:
            raise TimingError(f"no delay defined for operator {operator!r}") from None

    def cache_key(self) -> Tuple:
        """A structural fingerprint of the delay tables.

        Analyses memoized against a CDFG (e.g. the anchored
        longest-path tables) include this in their cache keys so two
        different-but-equal models share entries and different models
        never collide.
        """
        return (
            tuple(sorted(self.operator_delays.items())),
            self.copy_delay,
            self.structural_delay,
            tuple(sorted(self.overrides.items(), key=repr)),
        )

    # ------------------------------------------------------------------
    def nominal(self, node: Node) -> float:
        """Midpoint delay, used for deterministic simulations."""
        low, high = self.interval_for(node)
        return (low + high) / 2.0

    def sample(self, node: Node, rng: random.Random) -> float:
        """A random delay within the node's interval."""
        low, high = self.interval_for(node)
        return rng.uniform(low, high)

    def sample_matrix(self, nodes, rng: random.Random, batch: int):
        """Sample a ``(batch, len(nodes))`` delay matrix from one stream.

        Draw order is **node-major, batch-minor** and is part of the
        reproducibility contract: for each node (left to right), all
        ``batch`` samples of that node are drawn consecutively from
        ``rng``.  Consequently, with ``batch=1`` row 0 consumes draws in
        exactly the order ``sample(nodes[0], rng), sample(nodes[1],
        rng), ...`` would — the scalar-compat shim the batched engine
        relies on to reproduce a scalar node substream bit-for-bit.

        Requires numpy; raises a pointer at the scalar path otherwise.
        """
        np = _require_numpy()
        matrix = np.empty((batch, len(nodes)), dtype=np.float64)
        uniform = rng.uniform
        for column, node in enumerate(nodes):
            low, high = self.interval_for(node)
            for row in range(batch):
                matrix[row, column] = uniform(low, high)
        return matrix

    def with_override(
        self, fu: str, operator: Optional[str], interval: Interval
    ) -> "DelayModel":
        """A copy of the model with one extra override."""
        _check_interval(f"({fu}, {operator})", interval)
        overrides = dict(self.overrides)
        overrides[(fu, operator)] = interval
        return DelayModel(
            operator_delays=dict(self.operator_delays),
            copy_delay=self.copy_delay,
            structural_delay=self.structural_delay,
            overrides=overrides,
        )


def _require_numpy():
    """Import numpy or explain how to proceed without it."""
    try:
        import numpy
    except ImportError:  # pragma: no cover - exercised only without numpy
        raise ImportError(
            "numpy is required for batched delay sampling "
            "(DelayModel.sample_matrix / repro.sim.batched); install it "
            "or stay on the scalar simulator path (--no-batched), which "
            "has no numpy dependency."
        ) from None
    return numpy


def _check_interval(name: str, interval: Interval) -> None:
    low, high = interval
    if low < 0 or high < low:
        raise TimingError(f"invalid delay interval for {name}: [{low}, {high}]")
