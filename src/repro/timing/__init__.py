"""Bounded-delay timing model and analysis.

The paper's GT3 ("relative timing") and the safety checks of GT1/LT1/
LT4 require knowledge about the relative occurrence of events.  We
model every operation with a ``[min, max]`` delay interval
(:mod:`repro.timing.delays`) and compute interval arrival times over
the CDFG (:mod:`repro.timing.analysis`): an arc may be removed when it
can never be the last constraint to arrive at its destination, under
every execution within the delay bounds.
"""

from repro.timing.delays import DelayModel
from repro.timing.analysis import (
    ArrivalTimes,
    arc_slack,
    compute_arrival_times,
    is_provably_not_last,
    critical_path,
)

__all__ = [
    "DelayModel",
    "ArrivalTimes",
    "arc_slack",
    "compute_arrival_times",
    "is_provably_not_last",
    "critical_path",
]
