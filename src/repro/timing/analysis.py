"""Interval arrival-time analysis over a CDFG.

GT3 ("relative timing") removes a constraint arc when it is provably
never the *last* constraint to arrive at its destination — the paper:
"a detailed timing analysis must be performed ... it must be verified
that the removed constraint arc is under no execution path the last to
occur."

We verify that with bounded delays: every node has a completion-time
interval ``[earliest, latest]`` and an arc's arrival interval is its
source's completion interval.  Because loop iterations may overlap
after GT1, the loop body is *unfolded* a configurable number of times
(backward arcs and the iterate arc connect successive copies) and the
comparison is made in the last copy, which approximates steady state.
Interval analysis ignores correlations between paths, so it is
conservative: it may keep a removable arc, never the reverse.

Limitations: nested loops are not unfolded (a :class:`TimingError` is
raised) — none of the bundled workloads nests loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cdfg.arc import Arc
from repro.cdfg.graph import Cdfg
from repro.cdfg.kinds import NodeKind
from repro.errors import TimingError
from repro.timing.delays import DelayModel

#: A copy of a CDFG node in the unfolded timing DAG: (name, iteration).
#: ``iteration`` is None for nodes outside any loop.
TimedNode = Tuple[str, Optional[int]]

Interval = Tuple[float, float]


@dataclass
class ArrivalTimes:
    """Completion-time intervals of every unfolded node copy."""

    cdfg: Cdfg
    unfold: int
    completion: Dict[TimedNode, Interval]

    def completion_of(self, name: str, iteration: Optional[int] = None) -> Interval:
        """Completion interval of ``name``.

        For in-loop nodes, defaults to the last unfolded copy (the
        steady-state approximation).
        """
        if (name, None) in self.completion:
            return self.completion[(name, None)]
        if iteration is None:
            iteration = self.unfold - 1
        try:
            return self.completion[(name, iteration)]
        except KeyError:
            raise TimingError(f"no timing for node {name!r} iteration {iteration}") from None


def _loop_of(cdfg: Cdfg, name: str) -> Optional[str]:
    current = cdfg.block_of(name)
    while current is not None:
        if cdfg.node(current).kind is NodeKind.LOOP:
            return current
        current = cdfg.block_of(current)
    return None


def _check_no_nested_loops(cdfg: Cdfg) -> None:
    for node in cdfg.nodes_of_kind(NodeKind.LOOP):
        if _loop_of(cdfg, node.name) is not None:
            raise TimingError(
                f"nested loop {node.name!r}: interval analysis does not unfold nested loops"
            )


def _copies(cdfg: Cdfg, name: str, unfold: int) -> List[TimedNode]:
    loop = _loop_of(cdfg, name)
    node = cdfg.node(name)
    if loop is None and node.kind not in (NodeKind.LOOP, NodeKind.ENDLOOP):
        return [(name, None)]
    # LOOP/ENDLOOP themselves fire once per iteration too
    if node.kind in (NodeKind.LOOP, NodeKind.ENDLOOP) or loop is not None:
        return [(name, k) for k in range(unfold)]
    return [(name, None)]


def _is_iterated(cdfg: Cdfg, name: str) -> bool:
    node = cdfg.node(name)
    return node.kind in (NodeKind.LOOP, NodeKind.ENDLOOP) or _loop_of(cdfg, name) is not None


def compute_arrival_times(
    cdfg: Cdfg, delays: Optional[DelayModel] = None, unfold: int = 3
) -> ArrivalTimes:
    """Interval completion times over the unfolded CDFG.

    ``unfold`` copies of each loop iteration are analyzed; backward
    arcs and the ENDLOOP->LOOP iterate arc connect copy ``k`` to copy
    ``k+1``; backward arcs are pre-enabled (arrival 0) into copy 0.

    Results are memoized in the graph's analysis cache (invalidated on
    any mutation), keyed by ``unfold`` and the delay model fingerprint.
    """
    from repro import perf

    delays = delays or DelayModel()
    if not perf.caching_enabled():
        return _compute_arrival_times(cdfg, delays, unfold)
    cache = cdfg.analysis_cache()
    key = ("arrival_times", unfold, delays.cache_key())
    times = cache.get(key)
    if times is None:
        times = cache[key] = _compute_arrival_times(cdfg, delays, unfold)
    return times


def _compute_arrival_times(cdfg: Cdfg, delays: DelayModel, unfold: int) -> ArrivalTimes:
    if unfold < 1:
        raise TimingError("unfold must be >= 1")
    _check_no_nested_loops(cdfg)

    # build unfolded dependency lists: timed node -> list of timed sources
    dependencies: Dict[TimedNode, List[TimedNode]] = {}
    for name in cdfg.node_names():
        for copy in _copies(cdfg, name, unfold):
            dependencies[copy] = []

    for arc in cdfg.arcs():
        src_iterated = _is_iterated(cdfg, arc.src)
        dst_iterated = _is_iterated(cdfg, arc.dst)
        cross = arc.backward or cdfg.is_iterate_arc(arc)
        if not src_iterated and not dst_iterated:
            dependencies[(arc.dst, None)].append((arc.src, None))
        elif not src_iterated and dst_iterated:
            # loop entry: constrains only the first copy
            dependencies[(arc.dst, 0)].append((arc.src, None))
        elif src_iterated and not dst_iterated:
            # loop exit: the last copy constrains the outside consumer
            dependencies[(arc.dst, None)].append((arc.src, unfold - 1))
        else:
            for k in range(unfold):
                if cross:
                    if k + 1 < unfold:
                        dependencies[(arc.dst, k + 1)].append((arc.src, k))
                    # backward arcs into copy 0 are pre-enabled: no dep
                else:
                    dependencies[(arc.dst, k)].append((arc.src, k))

    order = _topological(dependencies)
    completion: Dict[TimedNode, Interval] = {}
    for timed in order:
        start_min = 0.0
        start_max = 0.0
        for source in dependencies[timed]:
            source_completion = completion[source]
            start_min = max(start_min, source_completion[0])
            start_max = max(start_max, source_completion[1])
        low, high = delays.interval_for(cdfg.node(timed[0]))
        completion[timed] = (start_min + low, start_max + high)
    return ArrivalTimes(cdfg=cdfg, unfold=unfold, completion=completion)


def _topological(dependencies: Dict[TimedNode, List[TimedNode]]) -> List[TimedNode]:
    indegree: Dict[TimedNode, int] = {node: 0 for node in dependencies}
    consumers: Dict[TimedNode, List[TimedNode]] = {node: [] for node in dependencies}
    for node, sources in dependencies.items():
        for source in sources:
            indegree[node] += 1
            consumers[source].append(node)
    ready = [node for node, degree in indegree.items() if degree == 0]
    order: List[TimedNode] = []
    while ready:
        current = ready.pop()
        order.append(current)
        for consumer in consumers[current]:
            indegree[consumer] -= 1
            if indegree[consumer] == 0:
                ready.append(consumer)
    if len(order) != len(dependencies):
        raise TimingError("unfolded timing graph contains a cycle")
    return order


def _aligned_source(
    cdfg: Cdfg, arc: Arc, dst_iteration: int
) -> Optional[TimedNode]:
    """Source copy of ``arc`` when its destination fires in ``dst_iteration``."""
    src_iterated = _is_iterated(cdfg, arc.src)
    cross = arc.backward or cdfg.is_iterate_arc(arc)
    if not src_iterated:
        return (arc.src, None)
    if cross:
        if dst_iteration == 0:
            return None  # pre-enabled for the first iteration
        return (arc.src, dst_iteration - 1)
    return (arc.src, dst_iteration)


def arc_slack(
    cdfg: Cdfg,
    arc: Arc,
    times: ArrivalTimes,
) -> float:
    """Worst-case slack of ``arc`` at its destination in steady state.

    Positive slack means another incoming arc is guaranteed to arrive
    at least that much later than this arc in every execution.
    """
    iteration = times.unfold - 1 if _is_iterated(cdfg, arc.dst) else None
    own = _aligned_source(cdfg, arc, iteration if iteration is not None else 0)
    if own is None:
        return float("inf")
    own_latest = times.completion[own][1]
    best = -float("inf")
    for other in cdfg.arcs_to(arc.dst):
        if other.key == arc.key:
            continue
        other_source = _aligned_source(cdfg, other, iteration if iteration is not None else 0)
        if other_source is None:
            continue
        other_earliest = times.completion[other_source][0]
        best = max(best, other_earliest - own_latest)
    return best


def is_provably_not_last(cdfg: Cdfg, arc: Arc, times: ArrivalTimes) -> bool:
    """True when some other incoming constraint of ``arc.dst`` is
    guaranteed (under all delay assignments within bounds) to arrive no
    earlier than ``arc`` — i.e. removing ``arc`` cannot change when the
    destination fires."""
    return arc_slack(cdfg, arc, times) >= 0.0


def _anchored_longest_paths(
    cdfg: Cdfg,
    delays: DelayModel,
    loop: Optional[str],
    use_max: bool,
) -> Dict[str, Dict[str, float]]:
    """Memoizing wrapper around :func:`_compute_anchored_longest_paths`.

    GT3 and GT5.2 probe many (candidate, witness) arc pairs of the same
    iteration context between graph mutations; the tables depend only
    on the graph, the context and the delay model, so they are cached
    in the graph's analysis cache and shared across all those probes.
    """
    from repro import perf

    if not perf.caching_enabled():
        return _compute_anchored_longest_paths(cdfg, delays, loop, use_max)
    cache = cdfg.analysis_cache()
    key = ("anchored_longest_paths", loop, use_max, delays.cache_key())
    result = cache.get(key)
    if result is None:
        result = cache[key] = _compute_anchored_longest_paths(cdfg, delays, loop, use_max)
    return result


def _compute_anchored_longest_paths(
    cdfg: Cdfg,
    delays: DelayModel,
    loop: Optional[str],
    use_max: bool,
) -> Dict[str, Dict[str, float]]:
    """Longest-path completion delay from each *anchor event* to each
    node of one iteration context.

    The anchor events of a loop iteration are: the LOOP node's done,
    the done of every backward-arc source (previous iteration), and the
    done of every entry-arc source (outside the loop).  Within the
    iteration, completion is ``max(preds) + delay``; the returned value
    ``D[anchor][n]`` is the largest path delay from the anchor to n's
    completion, using max (``use_max``) or min node delays.  With
    unknown anchor times ``T_a``, ``comp(n) <= max_a(T_a + Dmax[a][n])``
    and ``comp(n) >= T_a + Dmin[a][n]`` for every anchor a reaching n.
    """
    if loop is not None:
        members = [
            name
            for name in cdfg.node_names()
            if loop in _ancestry(cdfg, name)
        ]
    else:
        members = [
            name
            for name in cdfg.node_names()
            if _loop_of(cdfg, name) is None
            and cdfg.node(name).kind not in (NodeKind.LOOP, NodeKind.ENDLOOP)
        ]
    if not use_max:
        # a lower bound on completion may only follow paths that execute
        # unconditionally: drop nodes inside IF branches
        members = [name for name in members if not _inside_branch(cdfg, name, loop)]
    member_set = set(members)

    # anchor name -> list of (member, is_direct_feed)
    anchor_feeds: Dict[str, List[str]] = {}
    internal: Dict[str, List[str]] = {name: [] for name in members}
    for arc in cdfg.arcs():
        if arc.dst not in member_set:
            continue
        if arc.src in member_set and not arc.backward:
            internal[arc.dst].append(arc.src)
        else:
            # LOOP root, backward-arc source, or entry-arc source
            anchor_feeds.setdefault(arc.src, []).append(arc.dst)

    index = 1 if use_max else 0
    order = [name for name in _context_topological(cdfg, members)]
    result: Dict[str, Dict[str, float]] = {}
    for anchor, feeds in anchor_feeds.items():
        distances: Dict[str, float] = {}
        for name in order:
            best = None
            if name in feeds:
                best = 0.0
            for pred in internal[name]:
                if pred in distances:
                    candidate = distances[pred]
                    best = candidate if best is None else max(best, candidate)
            if best is not None:
                distances[name] = best + delays.interval_for(cdfg.node(name))[index]
        result[anchor] = distances
    return result


def _inside_branch(cdfg: Cdfg, name: str, context_loop: Optional[str]) -> bool:
    """True when ``name`` executes conditionally within its context
    (some enclosing block below the context loop is an IF branch)."""
    current = name
    while True:
        if cdfg.branch_of(current) is not None:
            return True
        enclosing = cdfg.block_of(current)
        if enclosing is None or enclosing == context_loop:
            return False
        current = enclosing


def _ancestry(cdfg: Cdfg, name: str) -> List[str]:
    chain = []
    current = cdfg.block_of(name)
    while current is not None:
        chain.append(current)
        current = cdfg.block_of(current)
    return chain


def _context_topological(cdfg: Cdfg, members: List[str]) -> List[str]:
    member_set = set(members)
    indegree = {name: 0 for name in members}
    for arc in cdfg.arcs():
        if arc.src in member_set and arc.dst in member_set and not arc.backward:
            indegree[arc.dst] += 1
    ready = [name for name, degree in indegree.items() if degree == 0]
    order = []
    while ready:
        current = ready.pop()
        order.append(current)
        for arc in cdfg.arcs_from(current):
            if arc.backward or arc.dst not in member_set:
                continue
            indegree[arc.dst] -= 1
            if indegree[arc.dst] == 0:
                ready.append(arc.dst)
    if len(order) != len(members):
        raise TimingError("iteration context contains a cycle")
    return order


def relative_arc_dominates(
    cdfg: Cdfg,
    candidate: Arc,
    witness: Arc,
    delays: Optional[DelayModel] = None,
) -> bool:
    """True when ``witness`` provably always arrives no earlier than
    ``candidate`` at their shared destination — the GT3 proof.

    Both sources must live in the same iteration context (the
    destination's innermost loop, or the loop-free top level).  The
    proof compares, for every anchor event that can drive the
    candidate's completion, the candidate's longest max-delay path
    against the witness's longest min-delay path: if every anchor that
    reaches the candidate also reaches the witness with at least as
    much accumulated delay, the witness completes later under *any*
    assignment of anchor times and in-bound delays.
    """
    delays = delays or DelayModel()
    if candidate.dst != witness.dst:
        raise TimingError("candidate and witness must share a destination")
    if candidate.backward or witness.backward:
        return False
    loop = _loop_of(cdfg, candidate.dst)
    if _loop_of(cdfg, candidate.src) != loop or _loop_of(cdfg, witness.src) != loop:
        return False
    dmax = _anchored_longest_paths(cdfg, delays, loop, use_max=True)
    dmin = _anchored_longest_paths(cdfg, delays, loop, use_max=False)
    candidate_anchors = [a for a, dist in dmax.items() if candidate.src in dist]
    if not candidate_anchors:
        return False
    for anchor in candidate_anchors:
        if witness.src not in dmin[anchor]:
            return False
        if dmax[anchor][candidate.src] > dmin[anchor][witness.src]:
            return False
    return True


def critical_path(cdfg: Cdfg, times: ArrivalTimes) -> List[str]:
    """A latest-arrival chain ending at END (node names, in order)."""
    dependencies: Dict[str, Tuple[float, Optional[str]]] = {}
    target = ("END", None) if ("END", None) in times.completion else None
    if target is None:
        raise TimingError("graph has no END timing")
    # walk back greedily over max completion times
    path: List[str] = []
    current: Optional[TimedNode] = target
    visited: Set[TimedNode] = set()
    while current is not None and current not in visited:
        visited.add(current)
        path.append(current[0])
        name, iteration = current
        best: Optional[TimedNode] = None
        best_time = -1.0
        for arc in cdfg.arcs_to(name):
            source = _aligned_source(cdfg, arc, iteration if iteration is not None else 0)
            if source is None or source not in times.completion:
                continue
            latest = times.completion[source][1]
            if latest > best_time:
                best_time = latest
                best = source
        current = best
    path.reverse()
    return path
