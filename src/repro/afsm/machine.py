"""The burst-mode machine container and its rewrite helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.afsm.burst import Cond, Edge, InputBurst, OutputBurst
from repro.afsm.signals import Signal, SignalKind
from repro.errors import BurstModeError


@dataclass
class State:
    name: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass
class Transition:
    """A state transition: ``src --input_burst / output_burst--> dst``.

    ``tags`` records provenance for the local transforms: which CDFG
    node's fragment the transition belongs to (``node``) and which
    micro-operation it implements (``micro``: wait/mux/op/dstmux/
    write/reset/done/branch/join).
    """

    uid: int
    src: str
    dst: str
    input_burst: InputBurst
    output_burst: OutputBurst
    tags: Dict[str, str] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"{self.src} --{self.input_burst} / {self.output_burst}--> {self.dst}"


class BurstModeMachine:
    """A mutable XBM machine.

    States and transitions are addressed by name / uid; rewrite
    helpers keep indices consistent so the local transforms can edit
    the machine safely.
    """

    def __init__(self, name: str, initial_state: str = "s0"):
        self.name = name
        self.initial_state = initial_state
        self._states: Dict[str, State] = {initial_state: State(initial_state)}
        self._transitions: Dict[int, Transition] = {}
        self._signals: Dict[str, Signal] = {}
        self._next_uid = 0
        self._next_state = 0
        # per-state uid indices; uids ascend, so sorted(uids) is
        # insertion order and the accessors stay deterministic
        self._from_index: Dict[str, Set[int]] = {}
        self._to_index: Dict[str, Set[int]] = {}

    # ------------------------------------------------------------------
    # signals
    # ------------------------------------------------------------------
    def declare_signal(self, signal: Signal) -> Signal:
        existing = self._signals.get(signal.name)
        if existing is not None:
            if existing != signal:
                raise BurstModeError(
                    f"signal {signal.name!r} re-declared inconsistently in {self.name}"
                )
            return existing
        self._signals[signal.name] = signal
        return signal

    def signal(self, name: str) -> Signal:
        try:
            return self._signals[name]
        except KeyError:
            raise BurstModeError(f"unknown signal {name!r} in machine {self.name}") from None

    def signals(self) -> List[Signal]:
        return list(self._signals.values())

    def inputs(self) -> List[Signal]:
        return [s for s in self._signals.values() if s.is_input]

    def outputs(self) -> List[Signal]:
        return [s for s in self._signals.values() if not s.is_input]

    def drop_signal(self, name: str) -> None:
        """Remove a signal from the registry (it must be unused)."""
        for transition in self._transitions.values():
            if name in transition.input_burst.signals() or name in transition.output_burst.signals():
                raise BurstModeError(f"signal {name!r} still used; cannot drop")
        self._signals.pop(name, None)

    def rename_signal(self, old: str, new_signal: Signal) -> None:
        """Replace every occurrence of ``old`` with ``new_signal.name``
        (used by LT5 signal sharing)."""
        self.declare_signal(new_signal)
        for transition in self._transitions.values():
            if old in transition.input_burst.signals():
                transition.input_burst = InputBurst(
                    tuple(
                        Edge(new_signal.name, e.rising, e.ddc) if e.signal == old else e
                        for e in transition.input_burst.edges
                    ),
                    transition.input_burst.conditions,
                )
            if old in transition.output_burst.signals():
                transition.output_burst = OutputBurst(
                    tuple(
                        Edge(new_signal.name, e.rising, e.ddc) if e.signal == old else e
                        for e in transition.output_burst.edges
                    )
                )
        self._signals.pop(old, None)

    # ------------------------------------------------------------------
    # states / transitions
    # ------------------------------------------------------------------
    def fresh_state(self, hint: str = "s") -> str:
        while True:
            self._next_state += 1
            name = f"{hint}{self._next_state}"
            if name not in self._states:
                break
        self._states[name] = State(name)
        return name

    def add_state(self, name: str) -> str:
        if name in self._states:
            raise BurstModeError(f"duplicate state {name!r}")
        self._states[name] = State(name)
        return name

    def add_transition(
        self,
        src: str,
        dst: str,
        input_burst: InputBurst,
        output_burst: OutputBurst,
        tags: Optional[Dict[str, str]] = None,
    ) -> Transition:
        for state in (src, dst):
            if state not in self._states:
                raise BurstModeError(f"unknown state {state!r}")
        transition = Transition(
            self._next_uid, src, dst, input_burst, output_burst, dict(tags or {})
        )
        self._next_uid += 1
        self._transitions[transition.uid] = transition
        self._from_index.setdefault(src, set()).add(transition.uid)
        self._to_index.setdefault(dst, set()).add(transition.uid)
        return transition

    def remove_transition(self, uid: int) -> Transition:
        try:
            transition = self._transitions.pop(uid)
        except KeyError:
            raise BurstModeError(f"no transition #{uid}") from None
        self._from_index[transition.src].discard(uid)
        self._to_index[transition.dst].discard(uid)
        return transition

    def retarget_transition(self, uid: int, dst: str) -> None:
        """Point transition ``uid`` at a new destination state.

        The destination index tracks ``dst``, so it must never be
        assigned directly on the :class:`Transition`."""
        transition = self.transition(uid)
        if dst not in self._states:
            raise BurstModeError(f"unknown state {dst!r}")
        self._to_index[transition.dst].discard(uid)
        transition.dst = dst
        self._to_index.setdefault(dst, set()).add(uid)

    def remove_state(self, name: str) -> None:
        if name == self.initial_state:
            raise BurstModeError("cannot remove the initial state")
        if self._from_index.get(name) or self._to_index.get(name):
            raise BurstModeError(f"state {name!r} still has transitions")
        del self._states[name]
        self._from_index.pop(name, None)
        self._to_index.pop(name, None)

    def transition(self, uid: int) -> Transition:
        try:
            return self._transitions[uid]
        except KeyError:
            raise BurstModeError(f"no transition #{uid}") from None

    def transitions(self) -> List[Transition]:
        return list(self._transitions.values())

    def transitions_from(self, state: str) -> List[Transition]:
        uids = self._from_index.get(state)
        if not uids:
            return []
        return [self._transitions[uid] for uid in sorted(uids)]

    def transitions_to(self, state: str) -> List[Transition]:
        uids = self._to_index.get(state)
        if not uids:
            return []
        return [self._transitions[uid] for uid in sorted(uids)]

    def states(self) -> List[str]:
        return list(self._states.keys())

    @property
    def state_count(self) -> int:
        return len(self._states)

    @property
    def transition_count(self) -> int:
        return len(self._transitions)

    # ------------------------------------------------------------------
    # rewrite helpers
    # ------------------------------------------------------------------
    def fold_trivial_states(self) -> int:
        """Merge away states entered and left unconditionally.

        A state whose single outgoing transition has an *empty* input
        burst fires immediately; its outputs are appended to every
        incoming transition and the state disappears.  Returns the
        number of states removed.  This is how local transforms shrink
        the machine: they empty bursts, folding does the bookkeeping.
        """
        removed = 0
        changed = True
        while changed:
            changed = False
            for state in list(self._states):
                if state == self.initial_state:
                    continue
                outgoing = self.transitions_from(state)
                incoming = self.transitions_to(state)
                if len(outgoing) != 1 or not incoming:
                    continue
                follow = outgoing[0]
                if not follow.input_burst.is_empty or follow.dst == state:
                    continue
                # never merge bursts that touch the same output wire
                # (e.g. a request's rise and fall must stay ordered)
                if any(
                    follow.output_burst.signals() & entry.output_burst.signals()
                    for entry in incoming
                ):
                    continue
                if follow.input_burst.edges:
                    # only ddc edges left: they ride along, unless the
                    # receiving burst already touches the same wire
                    ddc_edges = follow.input_burst.edges
                    ddc_signals = {edge.signal for edge in ddc_edges}
                    if any(
                        ddc_signals
                        & (entry.input_burst.signals() | entry.output_burst.signals())
                        for entry in incoming
                    ):
                        continue
                else:
                    ddc_edges = ()
                for entry in incoming:
                    entry.output_burst = OutputBurst(
                        entry.output_burst.edges + follow.output_burst.edges
                    )
                    if ddc_edges:
                        entry.input_burst = InputBurst(
                            entry.input_burst.edges + ddc_edges,
                            entry.input_burst.conditions,
                        )
                    self.retarget_transition(entry.uid, follow.dst)
                    entry.tags.setdefault("folded", "")
                    entry.tags["folded"] += f"+{follow.tags.get('micro', '?')}"
                self.remove_transition(follow.uid)
                self.remove_state(state)
                removed += 1
                changed = True
        return removed

    def reachable_states(self) -> Set[str]:
        seen = {self.initial_state}
        frontier = [self.initial_state]
        while frontier:
            current = frontier.pop()
            for transition in self.transitions_from(current):
                if transition.dst not in seen:
                    seen.add(transition.dst)
                    frontier.append(transition.dst)
        return seen

    def prune_unreachable(self) -> int:
        reachable = self.reachable_states()
        removed = 0
        for transition in list(self._transitions.values()):
            if transition.src not in reachable:
                self.remove_transition(transition.uid)
        for state in list(self._states):
            if state not in reachable:
                del self._states[state]
                removed += 1
        return removed

    def copy(self) -> "BurstModeMachine":
        """Deep copy (states/transitions are duplicated; signals and
        bursts are immutable and shared)."""
        clone = BurstModeMachine(self.name, self.initial_state)
        clone._states = {name: State(name) for name in self._states}
        clone._signals = dict(self._signals)
        clone._next_uid = self._next_uid
        clone._next_state = self._next_state
        for transition in self._transitions.values():
            clone._transitions[transition.uid] = Transition(
                transition.uid,
                transition.src,
                transition.dst,
                transition.input_burst,
                transition.output_burst,
                dict(transition.tags),
            )
            clone._from_index.setdefault(transition.src, set()).add(transition.uid)
            clone._to_index.setdefault(transition.dst, set()).add(transition.uid)
        return clone

    # ------------------------------------------------------------------
    def describe(self) -> str:
        lines = [
            f"machine {self.name}: {self.state_count} states, "
            f"{self.transition_count} transitions, "
            f"{len(self.inputs())} inputs, {len(self.outputs())} outputs"
        ]
        for transition in sorted(self._transitions.values(), key=lambda t: t.uid):
            lines.append(f"  {transition}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<BurstModeMachine {self.name!r} states={self.state_count} "
            f"transitions={self.transition_count}>"
        )
