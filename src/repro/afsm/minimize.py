"""Post-extraction state minimization by simulation equivalence.

The local transforms shrink machines by emptying and folding bursts;
what they cannot remove are *behaviorally duplicate* states — distinct
states whose outgoing behavior is identical because the extraction
walked the same CDFG fragment from two control contexts.  Following
the alternating-simulation minimization line of work (Gleizer et al.,
PAPERS.md), this pass quotients a :class:`BurstModeMachine` by mutual
similarity:

1. compute the greatest simulation preorder over states, where state
   ``b`` simulates ``a`` when every transition of ``a`` (matched by
   its full input burst — compulsory and ddc edges plus sampled
   conditions — and output burst) has a transition of ``b`` with the
   same label whose destination again simulates;
2. merge each class of mutually similar states onto one
   representative (burst-mode machines are deterministic per input
   burst, so mutual similarity coincides with bisimilarity and the
   quotient preserves the stream language);
3. retarget incoming transitions, drop the duplicate states'
   outgoing transitions, and prune.

The pass is **gated** by the flow-equivalence checker
(:func:`repro.verify.flow.machine_flow_obligations`): the quotient is
kept only when every observable stream language of the minimized
machine provably equals the original's and the machine still validates
(:func:`repro.afsm.validate.check_machine`).  A gate failure returns
the machine unchanged — minimization is an optimization, never a
correctness risk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.afsm.extract import Controller, DistributedDesign
from repro.afsm.machine import BurstModeMachine, Transition
from repro.afsm.signals import SignalKind
from repro.afsm.validate import collect_problems

#: transition label: (input edges + conditions, output edges)
_Label = Tuple[FrozenSet, FrozenSet]


@dataclass
class MinimizeReport:
    """What minimization did to one machine."""

    machine: str
    applied: bool = False
    before_states: int = 0
    after_states: int = 0
    before_transitions: int = 0
    after_transitions: int = 0
    #: merged state classes, rendered as "kept <- dropped, dropped"
    merged: List[str] = field(default_factory=list)
    #: why the quotient was rejected ("" when kept)
    gate_failure: str = ""

    def summary(self) -> str:
        if not self.applied and self.gate_failure:
            return f"{self.machine}: rejected ({self.gate_failure})"
        if not self.applied:
            return f"{self.machine}: already minimal ({self.before_states} states)"
        return (
            f"{self.machine}: {self.before_states} -> {self.after_states} states "
            f"({len(self.merged)} classes merged)"
        )


def _transition_label(transition: Transition) -> _Label:
    burst = transition.input_burst
    inputs = frozenset(
        {("edge", edge.signal, edge.rising, edge.ddc) for edge in burst.edges}
        | {("cond", cond.signal, cond.high) for cond in burst.conditions}
    )
    outputs = frozenset(
        (edge.signal, edge.rising) for edge in transition.output_burst.edges
    )
    return inputs, outputs


def simulation_preorder(machine: BurstModeMachine) -> Set[Tuple[str, str]]:
    """The greatest simulation relation: ``(a, b)`` when ``b`` can
    match every labeled step of ``a``, forever (greatest fixpoint by
    iterated refinement)."""
    states = machine.states()
    labeled: Dict[str, List[Tuple[_Label, str]]] = {
        state: [
            (_transition_label(t), t.dst) for t in machine.transitions_from(state)
        ]
        for state in states
    }
    relation: Set[Tuple[str, str]] = {(a, b) for a in states for b in states}
    changed = True
    while changed:
        changed = False
        for a, b in sorted(relation):
            ok = True
            for label, a_dst in labeled[a]:
                if not any(
                    b_label == label and (a_dst, b_dst) in relation
                    for b_label, b_dst in labeled[b]
                ):
                    ok = False
                    break
            if not ok:
                relation.discard((a, b))
                changed = True
    return relation


def _equivalence_classes(machine: BurstModeMachine) -> Dict[str, str]:
    """State -> representative under mutual similarity.  The initial
    state always represents its own class; other classes elect their
    lexicographically smallest member for determinism."""
    relation = simulation_preorder(machine)
    representative: Dict[str, str] = {}
    for state in sorted(machine.states()):
        if state in representative:
            continue
        cls = sorted(
            other
            for other in machine.states()
            if (state, other) in relation and (other, state) in relation
        )
        rep = machine.initial_state if machine.initial_state in cls else cls[0]
        for member in cls:
            representative.setdefault(member, rep)
    return representative


def minimize_machine(
    machine: BurstModeMachine,
) -> Tuple[BurstModeMachine, MinimizeReport]:
    """Quotient ``machine`` by simulation equivalence, gated by the
    flow checker.  Returns ``(minimized-or-original, report)``; the
    input machine is never mutated."""
    from repro.verify.flow import machine_flow_obligations

    report = MinimizeReport(
        machine=machine.name,
        before_states=machine.state_count,
        before_transitions=machine.transition_count,
        after_states=machine.state_count,
        after_transitions=machine.transition_count,
    )
    representative = _equivalence_classes(machine)
    dropped = sorted(s for s, rep in representative.items() if s != rep)
    if not dropped:
        return machine, report

    work = machine.copy()
    for transition in list(work.transitions()):
        rep = representative[transition.dst]
        if rep != transition.dst:
            work.retarget_transition(transition.uid, rep)
    for state in dropped:
        for transition in list(work.transitions_from(state)):
            work.remove_transition(transition.uid)
        for transition in list(work.transitions_to(state)):  # self-loops already gone
            work.remove_transition(transition.uid)
        work.remove_state(state)
    # merging can leave byte-identical parallel transitions; keep one
    seen: Set[Tuple[str, str, _Label]] = set()
    for transition in sorted(work.transitions(), key=lambda t: t.uid):
        key = (transition.src, transition.dst, _transition_label(transition))
        if key in seen:
            work.remove_transition(transition.uid)
        else:
            seen.add(key)
    work.prune_unreachable()

    # the gate: the quotient must be observationally flow-equivalent
    # and still a valid burst-mode machine
    obligations, __ = machine_flow_obligations(machine, work)
    refuted = [o for o in obligations if not o.proved]
    if refuted:
        report.gate_failure = f"{refuted[0].name}: {refuted[0].detail}"
        return machine, report
    problems = collect_problems(work)
    if problems:
        report.gate_failure = f"validation: {problems[0]}"
        return machine, report

    by_rep: Dict[str, List[str]] = {}
    for state, rep in representative.items():
        if state != rep:
            by_rep.setdefault(rep, []).append(state)
    report.merged = [
        f"{rep} <- {', '.join(sorted(members))}" for rep, members in sorted(by_rep.items())
    ]
    report.applied = True
    report.after_states = work.state_count
    report.after_transitions = work.transition_count
    return work, report


def minimize_design(
    design: DistributedDesign,
) -> Tuple[DistributedDesign, List[MinimizeReport], List]:
    """Minimize every controller of a design.

    Returns ``(new design, reports, flow proofs)`` — one ``minimize``
    stage :class:`~repro.verify.flow.FlowProof` per machine, refuted
    (and the original machine kept) when the gate rejects a quotient.
    """
    from repro.verify.flow import (
        FlowObligation,
        FlowProof,
        machine_flow_obligations,
        _machine_signature,
    )

    minimized = DistributedDesign(
        cdfg=design.cdfg, plan=design.plan, phases=design.phases
    )
    reports: List[MinimizeReport] = []
    proofs: List[FlowProof] = []
    for index, (fu, controller) in enumerate(design.controllers.items()):
        machine, report = minimize_machine(controller.machine)
        reports.append(report)
        if report.applied:
            obligations, counterexample = machine_flow_obligations(
                controller.machine, machine
            )
            proofs.append(
                FlowProof(
                    "minimize",
                    fu,
                    index,
                    "proved",
                    obligations,
                    _machine_signature(machine),
                    counterexample,
                )
            )
        elif report.gate_failure:
            proofs.append(
                FlowProof(
                    "minimize",
                    fu,
                    index,
                    "refuted",
                    [FlowObligation("gate", "refuted", report.gate_failure)],
                    _machine_signature(controller.machine),
                )
            )
        else:
            proofs.append(FlowProof("minimize", fu, index, "no-op"))
        minimized.controllers[fu] = Controller(
            fu=fu,
            machine=machine,
            input_wires=[
                s.name for s in machine.inputs() if s.kind is SignalKind.GLOBAL_READY
            ],
            output_wires=[
                s.name for s in machine.outputs() if s.kind is SignalKind.GLOBAL_READY
            ],
        )
    return minimized, reports, proofs
