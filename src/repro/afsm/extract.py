"""Controller extraction: CDFG + channel plan -> one XBM per unit.

Paper Section 4: "The extraction algorithm is a direct deterministic
translation from the CDFG into asynchronous Burst-Mode Controllers."
The four steps are implemented as:

1. each CDFG node is translated into a burst-mode fragment
   (:mod:`repro.afsm.fragments`);
2. fragments are stitched along the controller's schedule, with loop
   cycles, IF choice states, and first-iteration prologues where a
   node's wait set differs between the first and steady iterations
   (entry arcs wait only once; backward arcs are pre-enabled);
3. global signal phases are assigned per channel: events alternate
   polarity in execution order; a channel whose per-iteration event
   count is odd gets a synthetic *reset* transition emitted by a later
   sender fragment and absorbed by receivers as a directed don't-care,
   keeping every iteration polarity-identical (the XBM equivalent of
   return-to-zero on sparse wires);
4. early arrivals are tolerated by construction: the system simulator
   queues channel events, and ddc edges mark the spec positions where
   early transitions may land.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.afsm.burst import Cond, Edge, InputBurst, OutputBurst
from repro.afsm.fragments import FragmentPlan, GlobalEdge, expand_operation
from repro.afsm.machine import BurstModeMachine
from repro.afsm.signals import Signal, SignalKind
from repro.cdfg.graph import ENV, Cdfg
from repro.cdfg.kinds import NodeKind
from repro.cdfg.node import Node
from repro.channels.model import Channel, ChannelPlan
from repro.errors import ExtractionError
from repro.obs.spans import set_attribute, span


# ----------------------------------------------------------------------
# phase assignment
# ----------------------------------------------------------------------
@dataclass
class ChannelEvent:
    """One logical event on a channel: the 'done' of one source node."""

    channel: str
    wire: str
    src: str
    rising: bool
    one_shot: bool


@dataclass
class ResetDirective:
    """A synthetic transition restoring a channel's idle level."""

    wire: str
    rising: bool
    sender_fu: str
    #: sender node whose fragment emits the reset
    attach_node: str
    #: True when the attachment wrapped to the next iteration's first
    #: fragment (prologue copies must then skip the emission)
    wraps: bool
    #: (receiver fu, node) pairs that absorb the reset as a ddc edge
    receivers: List[Tuple[str, str]] = field(default_factory=list)
    #: True when the channel starts with a pre-enabling init transition
    init_channel: bool = False
    #: True when the reset precedes its event within each iteration and
    #: is emitted in every iteration including the first
    every_iteration: bool = False


@dataclass
class PhaseAssignment:
    events: Dict[Tuple[str, str], ChannelEvent] = field(default_factory=dict)
    resets: List[ResetDirective] = field(default_factory=list)
    #: channels carrying GT1 backward arcs are initialized with one
    #: pending transition at reset ("pre-enabled constraints"): the
    #: environment emits these events at startup, so receivers wait
    #: the same burst in every iteration (no first-iteration variant)
    init_events: List[Tuple[str, bool]] = field(default_factory=list)
    #: (wire, rising, receiver fu): receivers whose arcs on an init
    #: channel are all *forward* must absorb the startup transition
    #: once (a ddc on their first transition), or the init event would
    #: satisfy their first per-iteration wait prematurely
    init_absorbs: List[Tuple[str, bool, str]] = field(default_factory=list)
    #: timing assumptions recorded when a reset's placement could not
    #: be proven consumption-safe structurally (paper-style relative
    #: timing assumptions to be discharged by analysis or simulation)
    assumptions: List[str] = field(default_factory=list)

    def event_for(self, channel: str, src: str) -> ChannelEvent:
        try:
            return self.events[(channel, src)]
        except KeyError:
            raise ExtractionError(f"no event for node {src!r} on channel {channel!r}") from None


def _innermost_loop(cdfg: Cdfg, name: str) -> Optional[str]:
    current = cdfg.block_of(name)
    while current is not None:
        if cdfg.node(current).kind is NodeKind.LOOP:
            return current
        current = cdfg.block_of(current)
    return None


def _loop_context(cdfg: Cdfg, name: str) -> Optional[str]:
    """The loop a node's firing repeats with (the node's innermost
    loop; a LOOP/ENDLOOP node repeats with its own loop)."""
    node = cdfg.node(name)
    if node.kind in (NodeKind.LOOP, NodeKind.ENDLOOP):
        if node.kind is NodeKind.LOOP:
            return name
        for arc in cdfg.arcs_from(name):
            if cdfg.node(arc.dst).kind is NodeKind.LOOP:
                return arc.dst
    return _innermost_loop(cdfg, name)


def _fu_nodes_in_loop(cdfg: Cdfg, fu: str, loop: str) -> List[str]:
    """The fu's schedule restricted to one loop's repeating context."""
    return [
        name
        for name in cdfg.fu_schedule(fu)
        if _loop_context(cdfg, name) == loop
    ]


def assign_phases(cdfg: Cdfg, plan: ChannelPlan) -> PhaseAssignment:
    """Assign concrete +/- phases to every channel event."""
    assignment = PhaseAssignment()
    topo_position = {name: i for i, name in enumerate(cdfg.topological_order())}

    for channel in plan.channels:
        events: Dict[str, Dict] = {}
        for src, dst in channel.arcs:
            loop = _loop_context(cdfg, src)
            one_shot = loop is None
            if loop is not None:
                # exit events (a LOOP's arcs leaving its block) fire once
                dst_loop = _innermost_loop(cdfg, dst)
                if cdfg.node(src).kind is NodeKind.LOOP and dst_loop != src:
                    one_shot = dst != src and not _is_inside(cdfg, dst, src)
            entry = events.setdefault(src, {"one_shot": one_shot, "loop": loop})
            entry["one_shot"] = entry["one_shot"] and one_shot

        one_shots = sorted(
            (src for src, meta in events.items() if meta["one_shot"]),
            key=lambda name: topo_position[name],
        )
        cycle = sorted(
            (src for src, meta in events.items() if not meta["one_shot"]),
            key=lambda name: topo_position[name],
        )

        level = 0
        carries_backward = any(
            cdfg.arc(src, dst).backward for src, dst in channel.arcs
        )
        if carries_backward:
            # pre-enabled constraint: the wire starts with one pending
            # transition, emitted by the environment at startup
            init_rising = level == 0
            assignment.init_events.append((channel.wire_name(), init_rising))
            level ^= 1
            # receivers that only hold forward arcs on this wire must
            # swallow the startup transition exactly once
            for fu in sorted(channel.dst_fus):
                fu_arcs = [
                    cdfg.arc(src, dst)
                    for src, dst in channel.arcs
                    if cdfg.fu_of(dst) == fu
                ]
                if not fu_arcs:
                    continue
                if all(not arc.backward for arc in fu_arcs):
                    assignment.init_absorbs.append(
                        (channel.wire_name(), init_rising, fu)
                    )
                elif any(not arc.backward for arc in fu_arcs):
                    raise ExtractionError(
                        f"channel {channel.name}: receiver {fu} mixes backward "
                        "and forward arcs on a pre-enabled wire (unsupported)"
                    )
        for src in one_shots:
            rising = level == 0
            assignment.events[(channel.name, src)] = ChannelEvent(
                channel.name, channel.wire_name(), src, rising, True
            )
            level ^= 1
        cycle_start_level = level
        if carries_backward and len(cycle) == 1:
            # pre-enabled channel with one event per iteration: every
            # iteration looks like the init event (same polarity), with
            # a reset emitted *before* the event, first iteration
            # included (the init transition is consumed first)
            src = cycle[0]
            init_rising = cycle_start_level == 1  # init drove it there
            assignment.events[(channel.name, src)] = ChannelEvent(
                channel.name, channel.wire_name(), src, init_rising, False
            )
            directive = _plan_reset(
                cdfg,
                plan,
                channel,
                src,
                rising=not init_rising,
                assumptions=assignment.assumptions,
                before_event=True,
            )
            directive.init_channel = True
            directive.every_iteration = True
            assignment.resets.append(directive)
            continue
        for src in cycle:
            rising = level == 0
            assignment.events[(channel.name, src)] = ChannelEvent(
                channel.name, channel.wire_name(), src, rising, False
            )
            level ^= 1
        if carries_backward and cycle:
            last_event = assignment.events[(channel.name, cycle[-1])]
            backward_srcs = {
                src for src, dst in channel.arcs if cdfg.arc(src, dst).backward
            }
            for src in backward_srcs:
                event = assignment.events[(channel.name, src)]
                if event.rising != (cycle_start_level == 1):
                    raise ExtractionError(
                        f"channel {channel.name}: backward event of {src!r} does not "
                        f"match the pre-enabling polarity; unsupported event mix"
                    )
        if cycle and level != cycle_start_level:
            # reset drives the wire back to the cycle-start level
            directive = _plan_reset(
                cdfg,
                plan,
                channel,
                cycle[-1],
                rising=(cycle_start_level == 1),
                assumptions=assignment.assumptions,
            )
            directive.init_channel = carries_backward
            assignment.resets.append(directive)
    return assignment


def _is_inside(cdfg: Cdfg, name: str, root: str) -> bool:
    current = cdfg.block_of(name)
    while current is not None:
        if current == root:
            return True
        current = cdfg.block_of(current)
    return False


def _plan_reset(
    cdfg: Cdfg,
    plan: ChannelPlan,
    channel: Channel,
    last_src: str,
    rising: bool,
    assumptions: Optional[List[str]] = None,
    before_event: bool = False,
) -> ResetDirective:
    loop = _loop_context(cdfg, last_src)
    assert loop is not None
    sender_cycle = _fu_nodes_in_loop(cdfg, channel.src_fu, loop)
    index = sender_cycle.index(last_src)

    # consumers of the final event: the reset must provably follow
    # their consumption of the transition, or a timing assumption is
    # recorded (the paper's relative-timing style of reasoning)
    forward_consumers: List[str] = []
    backward_consumers: List[str] = []
    for src, dst in channel.arcs:
        if src != last_src:
            continue
        arc = cdfg.arc(src, dst)
        (backward_consumers if arc.backward else forward_consumers).append(dst)

    from repro.transforms.unfold import cached_unfolded_reach

    reach = cached_unfolded_reach(cdfg, unfold=2)

    def eligible(candidate: str) -> bool:
        # the reset must fire unconditionally (not inside an IF branch).
        # An operation fragment may reset its *own* channel: the reset
        # rides the fragment's first output transition while the event
        # rides the last, so self-attachment is legal there (it wraps:
        # the reset precedes the next iteration's event).  Structural
        # nodes emit on a single transition, so they cannot self-reset.
        if candidate == last_src and not cdfg.node(candidate).is_operation:
            return False
        current: Optional[str] = candidate
        while current is not None and current != loop:
            if cdfg.branch_of(current) is not None:
                return False
            current = cdfg.block_of(current)
        return True

    attach: Optional[str] = None
    wraps = False
    # same-iteration positions after the event
    if not backward_consumers and not before_event:
        for candidate in sender_cycle[index + 1 :]:
            if not eligible(candidate):
                continue
            if all(reach.implies_same_iteration(c, candidate) for c in forward_consumers):
                attach = candidate
                break
    if attach is None:
        # wrap to the next iteration: only positions at or before the
        # event source keep the reset ahead of the next event.  Forward
        # consumers consumed last iteration; backward consumers consume
        # early this iteration.
        for candidate in sender_cycle[: index + 1]:
            if not eligible(candidate):
                continue
            forward_ok = all(
                reach.implies_next_iteration(c, candidate) for c in forward_consumers
            )
            backward_ok = all(
                reach.implies_same_iteration(c, candidate) for c in backward_consumers
            )
            if forward_ok and backward_ok:
                attach = candidate
                wraps = not before_event
                break
    if attach is None:
        # no provably-safe position: fall back to the first eligible
        # polarity-correct position and record the timing assumption.
        # A before-event reset (pre-enabled channel) must stay at or
        # before the event's fragment, or the wire phases invert.
        later = (
            [] if before_event
            else [name for name in sender_cycle[index + 1 :] if eligible(name)]
        )
        earlier = [name for name in sender_cycle[: index + 1] if eligible(name)]
        if later:
            attach = later[0]
            wraps = False
        elif earlier:
            attach = earlier[-1] if before_event else earlier[0]
            wraps = not before_event
        else:
            raise ExtractionError(
                f"channel {channel.name}: no unconditional fragment can carry "
                f"the reset of {last_src!r}'s event"
            )
        if assumptions is not None:
            assumptions.append(
                f"channel {channel.name}: reset emitted at {attach!r} may race "
                f"consumption of {last_src!r}'s event (verify with timing analysis)"
            )

    receivers: List[Tuple[str, str]] = []
    for fu in sorted(channel.dst_fus):
        consumers = [
            dst
            for src, dst in channel.arcs
            if cdfg.fu_of(dst) == fu and _loop_context(cdfg, src) == loop
        ]
        if not consumers:
            continue
        fu_cycle = _fu_nodes_in_loop(cdfg, fu, loop)
        in_cycle = [name for name in fu_cycle if name in consumers]
        if in_cycle:
            receivers.append((fu, in_cycle[0]))
    return ResetDirective(
        wire=channel.wire_name(),
        rising=rising,
        sender_fu=channel.src_fu,
        attach_node=attach,
        wraps=wraps,
        receivers=receivers,
    )


# ----------------------------------------------------------------------
# per-controller event tables
# ----------------------------------------------------------------------
@dataclass
class NodeEvents:
    """Wait/done wiring of one CDFG node within its controller."""

    waits_steady: List[GlobalEdge] = field(default_factory=list)
    waits_first: List[GlobalEdge] = field(default_factory=list)
    dones: List[GlobalEdge] = field(default_factory=list)
    absorbs_steady: List[GlobalEdge] = field(default_factory=list)
    emit_resets_steady: List[GlobalEdge] = field(default_factory=list)
    emit_resets_first: List[GlobalEdge] = field(default_factory=list)

    @property
    def differs(self) -> bool:
        """True when the first iteration needs its own fragment copy
        (different waits or reset emissions; ddc absorptions ride in
        every copy and cause no split)."""
        steady = [(e.wire, e.rising) for e in self.waits_steady]
        first = [(e.wire, e.rising) for e in self.waits_first]
        return steady != first or (
            [(e.wire, e.rising) for e in self.emit_resets_steady]
            != [(e.wire, e.rising) for e in self.emit_resets_first]
        )


def _node_events(
    cdfg: Cdfg,
    plan: ChannelPlan,
    phases: PhaseAssignment,
    name: str,
    event_owner: Optional[Dict[Tuple[str, str], str]] = None,
) -> NodeEvents:
    events = NodeEvents()
    fu = cdfg.fu_of(name)
    loop = _loop_context(cdfg, name)

    seen: Set[Tuple[str, str]] = set()
    for arc in sorted(cdfg.arcs_to(name), key=lambda a: a.key):
        if cdfg.fu_of(arc.src) == fu:
            continue  # intra-controller ordering is implicit in states
        if cdfg.is_iterate_arc(arc):
            continue
        channel = plan.channel_of(arc.key)
        event = phases.event_for(channel.name, arc.src)
        key = (channel.name, arc.src)
        if key in seen:
            continue
        if event_owner is not None and event_owner.get(key, name) != name:
            # the physical transition is consumed by an earlier fragment
            # of this controller; sequential state flow already orders
            # this node after it
            continue
        seen.add(key)
        edge = GlobalEdge(event.wire, event.rising)
        is_entry = (
            loop is not None
            and _loop_context(cdfg, arc.src) != loop
            and cdfg.node(arc.src).kind is not NodeKind.LOOP
        )
        if arc.backward:
            # pre-enabled by the channel's environment init event: the
            # first iteration waits it like every other iteration
            events.waits_steady.append(edge)
            events.waits_first.append(edge)
        elif is_entry and loop is not None:
            events.waits_first.append(edge)
        else:
            events.waits_steady.append(edge)
            events.waits_first.append(edge)

    done_seen: Set[str] = set()
    for arc in sorted(cdfg.arcs_from(name), key=lambda a: a.key):
        if cdfg.fu_of(arc.dst) == fu:
            continue
        if cdfg.is_iterate_arc(arc):
            continue
        channel = plan.channel_of(arc.key)
        if channel.name in done_seen:
            continue
        done_seen.add(channel.name)
        event = phases.event_for(channel.name, name)
        events.dones.append(GlobalEdge(event.wire, event.rising))

    for directive in phases.resets:
        if directive.sender_fu == fu and directive.attach_node == name:
            edge = GlobalEdge(directive.wire, directive.rising)
            events.emit_resets_steady.append(edge)
            # a wrapping reset is not emitted in the first iteration
            # (there is no previous event to reset) — except the
            # before-event resets of pre-enabled channels, which clear
            # the init transition each iteration
            if directive.every_iteration or not directive.wraps:
                events.emit_resets_first.append(edge)
        for receiver_fu, receiver_node in directive.receivers:
            if receiver_fu == fu and receiver_node == name:
                events.absorbs_steady.append(
                    GlobalEdge(directive.wire, directive.rising, ddc=True)
                )
    # deterministic ordering
    for edges in (events.waits_steady, events.waits_first, events.dones):
        edges.sort(key=lambda e: (e.wire, e.rising))
    return events


# ----------------------------------------------------------------------
# controller structure
# ----------------------------------------------------------------------
@dataclass
class _OpRef:
    node: str


@dataclass
class _LoopRef:
    root: str
    items: List["_Item"]


@dataclass
class _IfRef:
    root: str
    then_items: List["_Item"]
    else_items: List["_Item"]


_Item = Union[_OpRef, _LoopRef, _IfRef]


def _structure_for(cdfg: Cdfg, fu: str) -> List[_Item]:
    """This controller's nested work items, in schedule order.

    Items at each level are ordered by the controller's own FU
    schedule (transforms such as GT4 preserve schedule positions even
    when they re-create nodes), with nested blocks positioned by the
    earliest scheduled node they contain.
    """
    position = {name: index for index, name in enumerate(cdfg.fu_schedule(fu))}

    def item_position(item: _Item) -> float:
        if isinstance(item, _OpRef):
            return position[item.node]
        candidates: List[float] = []
        if isinstance(item, _LoopRef):
            if item.root in position:
                candidates.append(position[item.root])
            children = item.items
        else:
            if item.root in position:
                candidates.append(position[item.root])
            children = list(item.then_items) + list(item.else_items)
        for child in children:
            candidates.append(item_position(child))
        return min(candidates)

    def items_of(block: Optional[str], branch: Optional[str]) -> List[_Item]:
        items: List[_Item] = []
        for name in cdfg.node_names():
            node = cdfg.node(name)
            if cdfg.block_of(name) != block:
                continue
            if block is not None and cdfg.node(block).kind is NodeKind.IF:
                if cdfg.branch_of(name) != branch:
                    continue
            if node.kind is NodeKind.OPERATION:
                if node.fu == fu:
                    items.append(_OpRef(name))
            elif node.kind is NodeKind.LOOP:
                inner = items_of(name, None)
                if inner or node.fu == fu:
                    items.append(_LoopRef(name, inner))
            elif node.kind is NodeKind.IF:
                then_items = items_of(name, "then")
                else_items = items_of(name, "else")
                if then_items or else_items or node.fu == fu:
                    items.append(_IfRef(name, then_items, else_items))
        items.sort(key=item_position)
        return items

    return items_of(None, None)


# ----------------------------------------------------------------------
# controller and design containers
# ----------------------------------------------------------------------
@dataclass
class Controller:
    """One functional unit's extracted machine plus its wiring."""

    fu: str
    machine: BurstModeMachine
    #: channel wires this controller listens on / drives
    input_wires: List[str] = field(default_factory=list)
    output_wires: List[str] = field(default_factory=list)

    @property
    def state_count(self) -> int:
        return self.machine.state_count

    @property
    def transition_count(self) -> int:
        return self.machine.transition_count


@dataclass
class DistributedDesign:
    """The complete synthesized control: one controller per unit."""

    cdfg: Cdfg
    plan: ChannelPlan
    phases: PhaseAssignment
    controllers: Dict[str, Controller] = field(default_factory=dict)

    def controller(self, fu: str) -> Controller:
        try:
            return self.controllers[fu]
        except KeyError:
            raise ExtractionError(f"no controller for unit {fu!r}") from None

    def summary(self) -> str:
        lines = [f"design {self.cdfg.name!r}: {len(self.controllers)} controllers, "
                 f"{self.plan.count()} channels"]
        for fu, controller in self.controllers.items():
            lines.append(
                f"  {fu}: {controller.state_count} states, "
                f"{controller.transition_count} transitions"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# extraction
# ----------------------------------------------------------------------
class _ControllerBuilder:
    def __init__(
        self,
        cdfg: Cdfg,
        plan: ChannelPlan,
        phases: PhaseAssignment,
        fu: str,
    ):
        self.cdfg = cdfg
        self.plan = plan
        self.phases = phases
        self.fu = fu
        self.machine = BurstModeMachine(fu)
        self.events: Dict[str, NodeEvents] = {}
        self._event_owner = self._compute_event_owners()
        self._declare_channel_signals()

    def _compute_event_owners(self) -> Dict[Tuple[str, str], str]:
        """First consumer of each channel event within this controller.

        A multi-way or multiplexed channel may carry several arcs of
        one event into the same controller; the physical transition is
        consumed exactly once, by the earliest scheduled unconditional
        consumer — the controller's sequential states then order every
        later fragment after it.
        """
        owners: Dict[Tuple[str, str], str] = {}
        for name in self.cdfg.fu_schedule(self.fu):
            if self._inside_branch(name):
                continue  # conditional fragments cannot own an event
            for arc in sorted(self.cdfg.arcs_to(name), key=lambda a: a.key):
                if self.cdfg.fu_of(arc.src) == self.fu:
                    continue
                if self.cdfg.is_iterate_arc(arc):
                    continue
                channel = self.plan.channel_of(arc.key)
                owners.setdefault((channel.name, arc.src), name)
        return owners

    def _inside_branch(self, name: str) -> bool:
        current: Optional[str] = name
        while current is not None:
            if self.cdfg.branch_of(current) is not None:
                return True
            current = self.cdfg.block_of(current)
        return False

    # -- signals ---------------------------------------------------------
    def _declare_channel_signals(self) -> None:
        init_levels = {
            wire: (1 if rising else 0) for wire, rising in self.phases.init_events
        }
        for channel in self.plan.channels:
            wire = channel.wire_name()
            if channel.src_fu == self.fu:
                # the sender's output flop powers up at the post-init
                # level; the receivers observe the init transition as
                # an ordinary first edge (their view starts at 0)
                self.machine.declare_signal(
                    Signal(
                        wire,
                        SignalKind.GLOBAL_READY,
                        is_input=False,
                        initial_level=init_levels.get(wire, 0),
                        guards_condition=self._channel_guards_condition(channel),
                    )
                )
            elif self.fu in channel.dst_fus:
                self.machine.declare_signal(
                    Signal(wire, SignalKind.GLOBAL_READY, is_input=True)
                )

    def _channel_guards_condition(self, channel: Channel) -> bool:
        """Does the channel synchronize a remote *condition* sample?

        True when any arc of the channel ends at a decision node
        (IF/LOOP) and names that node's condition register.  The
        receiving controller samples ``cond_<register>`` immediately
        after the done with no datapath delay, so the done must keep
        trailing the register write (see :class:`Signal`).
        """
        for key in channel.arcs:
            node = self.cdfg.node(key[1])
            if node.condition is None:
                continue
            for arc in self.cdfg.arcs_to(key[1]):
                if arc.key == key and node.condition in arc.registers:
                    return True
        return False

    def _cond_signal(self, register: str) -> str:
        name = f"cond_{register}"
        self.machine.declare_signal(
            Signal(name, SignalKind.CONDITIONAL, is_input=True, action=("cond", register))
        )
        return name

    def _events_of(self, name: str) -> NodeEvents:
        if name not in self.events:
            self.events[name] = _node_events(
                self.cdfg, self.plan, self.phases, name, self._event_owner
            )
        return self.events[name]

    # -- machine construction ---------------------------------------------
    def build(self) -> BurstModeMachine:
        cursor = self.machine.initial_state
        # absorb startup transitions of pre-enabled wires this
        # controller only observes through forward arcs
        init_absorbs = tuple(
            Edge(wire, rising, ddc=True)
            for wire, rising, fu in self.phases.init_absorbs
            if fu == self.fu
        )
        if init_absorbs:
            entry = self.machine.fresh_state(hint="boot")
            self.machine.add_transition(
                cursor,
                entry,
                InputBurst(init_absorbs),
                OutputBurst(()),
                tags={"micro": "boot"},
            )
            cursor = entry
        for item in _structure_for(self.cdfg, self.fu):
            cursor = self._emit_item(item, cursor, first_iteration=True)
        self.machine.fold_trivial_states()
        self.machine.prune_unreachable()
        return self.machine

    def _emit_item(self, item: _Item, cursor: str, first_iteration: bool) -> str:
        if isinstance(item, _OpRef):
            return self._emit_operation(item.node, cursor, first_iteration)
        if isinstance(item, _LoopRef):
            return self._emit_loop(item, cursor)
        return self._emit_if(item, cursor, first_iteration)

    def _emit_operation(self, name: str, cursor: str, first_iteration: bool) -> str:
        node = self.cdfg.node(name)
        events = self._events_of(name)
        if first_iteration:
            waits = events.waits_first
            resets = events.emit_resets_first
        else:
            waits = events.waits_steady
            resets = events.emit_resets_steady
        # a reset absorption belongs only to copies that consume the
        # wire's event: the reset follows that event, so a copy that
        # never saw the event must not account (or debt) a reset
        wait_wires = {edge.wire for edge in waits}
        absorbs = [edge for edge in events.absorbs_steady if edge.wire in wait_wires]
        plan = FragmentPlan(
            node=node,
            waits=list(waits),
            dones=list(events.dones),
            absorbs=list(absorbs),
            emit_resets=list(resets),
        )
        return expand_operation(self.machine, cursor, plan)

    # -- loops -------------------------------------------------------------
    def _emit_loop(self, item: _LoopRef, cursor: str) -> str:
        root_node = self.cdfg.node(item.root)
        owns = root_node.fu == self.fu
        needs_prologue = self._loop_needs_prologue(item)

        if owns:
            return self._emit_owned_loop(item, cursor, needs_prologue)
        return self._emit_follower_loop(item, cursor, needs_prologue)

    def _loop_needs_prologue(self, item: _LoopRef) -> bool:
        return any(self._item_differs(child) for child in item.items)

    def _item_differs(self, item: _Item) -> bool:
        if isinstance(item, _OpRef):
            return self._events_of(item.node).differs
        if isinstance(item, _LoopRef):
            return any(self._item_differs(child) for child in item.items)
        # an IF block differs when its own node does (wrapped resets,
        # absorbs) or any branch item does; the matching ENDIF too
        if self._owned(item.root) and self._events_of(item.root).differs:
            return True
        endif = self._endif_of(item.root)
        if endif is not None and self._owned(endif) and self._events_of(endif).differs:
            return True
        return any(
            self._item_differs(child)
            for child in list(item.then_items) + list(item.else_items)
        )

    def _owned(self, name: str) -> bool:
        return self.cdfg.node(name).fu == self.fu

    def _endif_of(self, root: str) -> Optional[str]:
        for arc in self.cdfg.arcs_from(root):
            if self.cdfg.node(arc.dst).kind is NodeKind.ENDIF:
                return arc.dst
        return None

    def _emit_owned_loop(self, item: _LoopRef, cursor: str, needs_prologue: bool) -> str:
        root = item.root
        node = self.cdfg.node(root)
        assert node.condition is not None
        cond = self._cond_signal(node.condition)
        events = self._events_of(root)

        steady_only = [
            (e.wire, e.rising)
            for e in events.waits_steady
            if (e.wire, e.rising) not in {(w.wire, w.rising) for w in events.waits_first}
        ]
        if steady_only:
            raise ExtractionError(
                f"LOOP {root!r} has per-iteration cross-controller waits "
                f"{steady_only}; this extraction supports loop-entry waits only"
            )

        # entry transition consumes the loop's entry events
        head = self.machine.fresh_state(hint="head")
        entry_head = self.machine.fresh_state(hint="head") if needs_prologue else head
        self.machine.add_transition(
            cursor,
            entry_head,
            InputBurst(tuple(edge.as_edge() for edge in events.waits_first)),
            OutputBurst(()),
            tags={"node": root, "micro": "entry"},
        )

        body_dones, exit_dones = self._loop_dones(root)
        exit_state = self.machine.fresh_state(hint="exit")

        # steady cycle, recording item-boundary states for prologue joins
        body_start = self.machine.fresh_state()
        self.machine.add_transition(
            head,
            body_start,
            InputBurst((), (Cond(cond, True),)),
            OutputBurst(
                tuple(e.as_edge() for e in body_dones)
                + tuple(e.as_edge() for e in events.emit_resets_steady)
            ),
            tags={"node": root, "micro": "branch"},
        )
        boundaries = [body_start]
        state = body_start
        for child in item.items:
            state = self._emit_item(child, state, first_iteration=False)
            boundaries.append(state)
        state = self._emit_endloop(root, state, first_iteration=False)
        self.machine.add_transition(
            state, head, InputBurst(()), OutputBurst(()),
            tags={"node": root, "micro": "iterate"},
        )
        self.machine.add_transition(
            head,
            exit_state,
            InputBurst((), (Cond(cond, False),)),
            OutputBurst(tuple(e.as_edge() for e in exit_dones)),
            tags={"node": root, "micro": "branch"},
        )

        if needs_prologue:
            # first iteration: duplicate fragments only up to the last
            # one whose waits differ, then join the steady cycle
            diff_flags = [self._item_differs(child) for child in item.items]
            last = max(i for i, flag in enumerate(diff_flags) if flag)
            prologue_start = self.machine.fresh_state()
            self.machine.add_transition(
                entry_head,
                prologue_start,
                InputBurst((), (Cond(cond, True),)),
                OutputBurst(
                    tuple(e.as_edge() for e in body_dones)
                    + tuple(e.as_edge() for e in events.emit_resets_first)
                ),
                tags={"node": root, "micro": "branch"},
            )
            state = prologue_start
            for child in item.items[: last + 1]:
                state = self._emit_item(child, state, first_iteration=True)
            self.machine.add_transition(
                state, boundaries[last + 1], InputBurst(()), OutputBurst(()),
                tags={"node": root, "micro": "join"},
            )
            self.machine.add_transition(
                entry_head,
                exit_state,
                InputBurst((), (Cond(cond, False),)),
                OutputBurst(tuple(e.as_edge() for e in exit_dones)),
                tags={"node": root, "micro": "branch"},
            )
        return exit_state

    def _loop_dones(self, root: str) -> Tuple[List[GlobalEdge], List[GlobalEdge]]:
        """(per-iteration body-entry events, one-shot exit events)."""
        body: List[GlobalEdge] = []
        exits: List[GlobalEdge] = []
        seen: Set[Tuple[str, bool]] = set()
        for arc in sorted(self.cdfg.arcs_from(root), key=lambda a: a.key):
            if self.cdfg.fu_of(arc.dst) == self.fu:
                continue
            channel = self.plan.channel_of(arc.key)
            event = self.phases.event_for(channel.name, root)
            inside = _is_inside(self.cdfg, arc.dst, root)
            key = (channel.name, inside)
            if key in seen:
                continue
            seen.add(key)
            edge = GlobalEdge(event.wire, event.rising)
            (body if inside else exits).append(edge)
        return body, exits

    def _emit_endloop(self, root: str, cursor: str, first_iteration: bool) -> str:
        endloop = None
        for arc in self.cdfg.arcs_to(root):
            if self.cdfg.node(arc.src).kind is NodeKind.ENDLOOP:
                endloop = arc.src
        assert endloop is not None
        if self.cdfg.node(endloop).fu != self.fu:
            return cursor
        events = self._events_of(endloop)
        waits = events.waits_first if first_iteration else events.waits_steady
        state = cursor
        for wait in waits:
            nxt = self.machine.fresh_state()
            self.machine.add_transition(
                state,
                nxt,
                InputBurst((wait.as_edge(),)),
                OutputBurst(()),
                tags={"node": endloop, "micro": "join"},
            )
            state = nxt
        resets = events.emit_resets_first if first_iteration else events.emit_resets_steady
        wait_wires = {edge.wire for edge in waits}
        absorb_edges = tuple(
            e.as_edge() for e in events.absorbs_steady if e.wire in wait_wires
        )
        if events.dones or resets or absorb_edges:
            nxt = self.machine.fresh_state()
            self.machine.add_transition(
                state,
                nxt,
                InputBurst(absorb_edges),
                OutputBurst(
                    tuple(e.as_edge() for e in events.dones)
                    + tuple(e.as_edge() for e in resets)
                ),
                tags={"node": endloop, "micro": "done"},
            )
            state = nxt
        return state

    def _emit_follower_loop(self, item: _LoopRef, cursor: str, needs_prologue: bool) -> str:
        """A controller that participates in a loop it does not own:
        its fragments cycle; the loop 'exit' is simply never seeing the
        next iteration's requests."""
        head = self.machine.fresh_state(hint="head")
        boundaries = [head]
        state = head
        for child in item.items:
            state = self._emit_item(child, state, first_iteration=False)
            boundaries.append(state)
        if state != head:
            self.machine.add_transition(
                state, head, InputBurst(()), OutputBurst(()),
                tags={"node": item.root, "micro": "iterate"},
            )
        if needs_prologue:
            diff_flags = [self._item_differs(child) for child in item.items]
            last = max(i for i, flag in enumerate(diff_flags) if flag)
            state = cursor
            for child in item.items[: last + 1]:
                state = self._emit_item(child, state, first_iteration=True)
            self.machine.add_transition(
                state, boundaries[last + 1], InputBurst(()), OutputBurst(()),
                tags={"node": item.root, "micro": "join"},
            )
        else:
            self.machine.add_transition(
                cursor, head, InputBurst(()), OutputBurst(()),
                tags={"node": item.root, "micro": "entry"},
            )
        return head

    # -- conditionals --------------------------------------------------------
    def _emit_if(self, item: _IfRef, cursor: str, first_iteration: bool) -> str:
        root_node = self.cdfg.node(item.root)
        owns = root_node.fu == self.fu
        join = self.machine.fresh_state(hint="join")

        if owns:
            assert root_node.condition is not None
            cond = self._cond_signal(root_node.condition)
            events = self._events_of(item.root)
            waits = events.waits_first if first_iteration else events.waits_steady
            branch_dones = self._if_branch_dones(item.root)
            # shared wait chain, then a conditional choice state
            state = cursor
            for wait in waits:
                nxt = self.machine.fresh_state()
                self.machine.add_transition(
                    state, nxt, InputBurst((wait.as_edge(),)), OutputBurst(()),
                    tags={"node": item.root, "micro": "wait"},
                )
                state = nxt
            choice = state
            wait_wires = {edge.wire for edge in waits}
            absorb_edges = tuple(
                e.as_edge() for e in events.absorbs_steady if e.wire in wait_wires
            )
            resets = (
                events.emit_resets_first if first_iteration else events.emit_resets_steady
            )
            for branch, items in (("then", item.then_items), ("else", item.else_items)):
                nxt = self.machine.fresh_state()
                self.machine.add_transition(
                    choice,
                    nxt,
                    InputBurst(absorb_edges, (Cond(cond, branch == "then"),)),
                    OutputBurst(
                        tuple(e.as_edge() for e in resets)
                        + tuple(e.as_edge() for e in branch_dones[branch])
                    ),
                    tags={"node": item.root, "micro": "branch"},
                )
                state = nxt
                for child in items:
                    state = self._emit_item(child, state, first_iteration)
                state = self._emit_endif(item.root, branch, state, first_iteration)
                self.machine.add_transition(
                    state, join, InputBurst(()), OutputBurst(()),
                    tags={"node": item.root, "micro": "join"},
                )
        else:
            for items in (item.then_items, item.else_items):
                state = cursor
                advanced = False
                for child in items:
                    state = self._emit_item(child, state, first_iteration)
                    advanced = True
                if advanced:
                    self.machine.add_transition(
                        state, join, InputBurst(()), OutputBurst(()),
                        tags={"node": item.root, "micro": "join"},
                    )
                else:
                    # controller inactive in this branch: it skips ahead
                    self.machine.add_transition(
                        cursor, join, InputBurst(()), OutputBurst(()),
                        tags={"node": item.root, "micro": "skip"},
                    )
        return join

    def _if_branch_dones(self, root: str) -> Dict[str, List[GlobalEdge]]:
        dones: Dict[str, List[GlobalEdge]] = {"then": [], "else": []}
        shared: List[GlobalEdge] = []
        seen: Set[Tuple[str, Optional[str]]] = set()
        for arc in sorted(self.cdfg.arcs_from(root), key=lambda a: a.key):
            if self.cdfg.fu_of(arc.dst) == self.fu:
                continue
            channel = self.plan.channel_of(arc.key)
            event = self.phases.event_for(channel.name, root)
            inside = _is_inside(self.cdfg, arc.dst, root)
            branch = self.cdfg.branch_of(arc.dst) if inside else None
            key = (channel.name, branch)
            if key in seen:
                continue
            seen.add(key)
            edge = GlobalEdge(event.wire, event.rising)
            if branch is None:
                shared.append(edge)
            else:
                dones[branch].append(edge)
        dones["then"].extend(shared)
        dones["else"].extend(shared)
        return dones

    def _emit_endif(
        self, root: str, branch: str, cursor: str, first_iteration: bool = False
    ) -> str:
        endif = None
        for arc in self.cdfg.arcs_from(root):
            if self.cdfg.node(arc.dst).kind is NodeKind.ENDIF:
                endif = arc.dst
        assert endif is not None
        if self.cdfg.node(endif).fu != self.fu:
            return cursor
        state = cursor
        waits: List[GlobalEdge] = []
        seen: Set[Tuple[str, str]] = set()
        for arc in sorted(self.cdfg.arcs_to(endif), key=lambda a: a.key):
            if self.cdfg.fu_of(arc.src) == self.fu:
                continue
            src_branch = self.cdfg.branch_of(arc.src)
            if src_branch is not None and src_branch != branch:
                continue
            channel = self.plan.channel_of(arc.key)
            key = (channel.name, arc.src)
            if key in seen:
                continue
            if self._event_owner.get(key, endif) != endif:
                continue  # consumed by an earlier fragment of this controller
            seen.add(key)
            event = self.phases.event_for(channel.name, arc.src)
            waits.append(GlobalEdge(event.wire, event.rising))
        for wait in waits:
            nxt = self.machine.fresh_state()
            self.machine.add_transition(
                state, nxt, InputBurst((wait.as_edge(),)), OutputBurst(()),
                tags={"node": endif, "micro": "join"},
            )
            state = nxt
        events = self._events_of(endif)
        wait_wires = {edge.wire for edge in waits}
        absorb_edges = tuple(
            e.as_edge() for e in events.absorbs_steady if e.wire in wait_wires
        )
        resets = events.emit_resets_first if first_iteration else events.emit_resets_steady
        if events.dones or absorb_edges or resets:
            nxt = self.machine.fresh_state()
            self.machine.add_transition(
                state, nxt, InputBurst(absorb_edges),
                OutputBurst(
                    tuple(e.as_edge() for e in events.dones)
                    + tuple(e.as_edge() for e in resets)
                ),
                tags={"node": endif, "micro": "done"},
            )
            state = nxt
        return state


def extract_controllers(cdfg: Cdfg, plan: ChannelPlan) -> DistributedDesign:
    """Extract one burst-mode controller per functional unit."""
    with span("extract_controllers", workload=cdfg.name):
        phases = assign_phases(cdfg, plan)
        design = DistributedDesign(cdfg=cdfg, plan=plan, phases=phases)
        for fu in cdfg.functional_units():
            with span(f"extract/{fu}"):
                builder = _ControllerBuilder(cdfg, plan, phases, fu)
                machine = builder.build()
                set_attribute("states", len(machine.states()))
                set_attribute("transitions", len(machine.transitions()))
            controller = Controller(
                fu=fu,
                machine=machine,
                input_wires=[s.name for s in machine.inputs() if s.kind is SignalKind.GLOBAL_READY],
                output_wires=[s.name for s in machine.outputs() if s.kind is SignalKind.GLOBAL_READY],
            )
            design.controllers[fu] = controller
        set_attribute("controllers", len(design.controllers))
    return design
