"""Input and output bursts."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Tuple


@dataclass(frozen=True)
class Edge:
    """A signal transition: ``x+`` (rise) or ``x-`` (fall).

    ``ddc`` marks a *directed don't-care* input edge (XBM): the edge
    may arrive on this transition or may already have arrived earlier.
    """

    signal: str
    rising: bool
    ddc: bool = False

    @property
    def direction(self) -> str:
        return "+" if self.rising else "-"

    def inverted(self) -> "Edge":
        return Edge(self.signal, not self.rising, self.ddc)

    def compulsory(self) -> "Edge":
        return Edge(self.signal, self.rising, ddc=False)

    def as_ddc(self) -> "Edge":
        return Edge(self.signal, self.rising, ddc=True)

    def __str__(self) -> str:
        marker = "*" if self.ddc else ""
        return f"{self.signal}{self.direction}{marker}"


@dataclass(frozen=True)
class Cond:
    """An XBM conditional: a level sampled when the burst fires,
    written ``<C+>`` (must be high) or ``<C->`` (must be low)."""

    signal: str
    high: bool

    def __str__(self) -> str:
        return f"<{self.signal}{'+' if self.high else '-'}>"


@dataclass(frozen=True)
class InputBurst:
    """The trigger of a transition: compulsory/ddc edges + conditions.

    An empty input burst is legal only transiently (during local
    transformations); :func:`repro.afsm.machine.fold_trivial_states`
    eliminates it by merging transitions.
    """

    edges: Tuple[Edge, ...] = ()
    conditions: Tuple[Cond, ...] = ()

    @property
    def compulsory_edges(self) -> Tuple[Edge, ...]:
        # memoized like signals(): the simulator re-reads this once per
        # poke while matching pending transitions
        cached = self.__dict__.get("_compulsory")
        if cached is None:
            cached = tuple(edge for edge in self.edges if not edge.ddc)
            object.__setattr__(self, "_compulsory", cached)
        return cached

    @property
    def is_empty(self) -> bool:
        return not self.compulsory_edges and not self.conditions

    def signals(self) -> FrozenSet[str]:
        # memoized: bursts are immutable and signals() sits on the
        # machine-rewrite hot path (object.__setattr__ because frozen)
        cached = self.__dict__.get("_signals")
        if cached is None:
            cached = frozenset(edge.signal for edge in self.edges) | frozenset(
                cond.signal for cond in self.conditions
            )
            object.__setattr__(self, "_signals", cached)
        return cached

    def with_edges(self, edges: Iterable[Edge]) -> "InputBurst":
        return InputBurst(tuple(edges), self.conditions)

    def without_signal(self, signal: str) -> "InputBurst":
        return InputBurst(
            tuple(edge for edge in self.edges if edge.signal != signal),
            self.conditions,
        )

    def adding(self, edge: Edge) -> "InputBurst":
        return InputBurst(self.edges + (edge,), self.conditions)

    def __str__(self) -> str:
        parts = [str(cond) for cond in self.conditions] + [str(edge) for edge in self.edges]
        return "{" + ", ".join(parts) + "}"


@dataclass(frozen=True)
class OutputBurst:
    """The effect of a transition: a set of output edges."""

    edges: Tuple[Edge, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not self.edges

    def signals(self) -> FrozenSet[str]:
        cached = self.__dict__.get("_signals")
        if cached is None:
            cached = frozenset(edge.signal for edge in self.edges)
            object.__setattr__(self, "_signals", cached)
        return cached

    def with_edges(self, edges: Iterable[Edge]) -> "OutputBurst":
        return OutputBurst(tuple(edges))

    def without_signal(self, signal: str) -> "OutputBurst":
        return OutputBurst(tuple(edge for edge in self.edges if edge.signal != signal))

    def adding(self, edge: Edge) -> "OutputBurst":
        return OutputBurst(self.edges + (edge,))

    def __str__(self) -> str:
        return "{" + ", ".join(str(edge) for edge in self.edges) + "}"
