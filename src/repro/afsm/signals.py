"""Signals of a burst-mode controller."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class SignalKind(enum.Enum):
    """What a controller wire is connected to."""

    #: Global inter-controller ready wire (single-transition channel).
    GLOBAL_READY = "global"
    #: Local request to a datapath element (mux select, FU go, write).
    LOCAL_REQ = "req"
    #: Local acknowledgment from a datapath element.
    LOCAL_ACK = "ack"
    #: Sampled level (XBM conditional), e.g. a condition register bit.
    CONDITIONAL = "cond"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Signal:
    """A named controller wire.

    ``is_input`` is from the controller's perspective; ``partner``
    names the matching req wire for an ack (used by LT4 to find the
    pair).  ``action`` carries the datapath binding for local requests
    (interpreted by :mod:`repro.sim.datapath`).
    """

    name: str
    kind: SignalKind
    is_input: bool
    partner: Optional[str] = None
    action: Optional[tuple] = None
    #: wire level at reset (pre-enabled backward channels start at 1:
    #: the sender's output flop is initialized high, which the
    #: receivers consume as their first pending transition)
    initial_level: int = 0
    #: True for a global done whose channel delivers a register some
    #: remote decision node (IF/LOOP) samples as its *condition*.  The
    #: consumer reads the condition level right after the done, with no
    #: datapath delay in between, so such a done must stay behind its
    #: fragment's register write — LT1 must not hoist it to the latch
    #: burst (bundled-data timing covers operand reads, not condition
    #: samples).
    guards_condition: bool = False

    @property
    def is_local(self) -> bool:
        return self.kind in (SignalKind.LOCAL_REQ, SignalKind.LOCAL_ACK)

    def __str__(self) -> str:
        return self.name
