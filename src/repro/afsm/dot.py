"""Graphviz export of burst-mode machines (Figure 11 style).

States are circles; each transition edge is labelled
``input burst / output burst`` with XBM markers: ``*`` for directed
don't-cares and ``<C+>`` for conditionals.  Micro-operation tags are
shown as edge tooltips (and optionally inline).
"""

from __future__ import annotations

from typing import List

from repro.afsm.machine import BurstModeMachine


def _quote(text: str) -> str:
    return '"' + text.replace('"', '\\"') + '"'


def machine_to_dot(
    machine: BurstModeMachine,
    title: str = "",
    show_micro_tags: bool = False,
) -> str:
    """Render ``machine`` as DOT text."""
    lines: List[str] = [f"digraph {_quote(machine.name)} {{"]
    lines.append("  rankdir=TB;")
    lines.append("  node [shape=circle fontsize=10 width=0.4];")
    if title:
        lines.append(f"  label={_quote(title)};")
    lines.append(f"  {_quote(machine.initial_state)} [shape=doublecircle];")
    for state in machine.states():
        if state != machine.initial_state:
            lines.append(f"  {_quote(state)};")
    for transition in sorted(machine.transitions(), key=lambda t: t.uid):
        label = f"{transition.input_burst} / {transition.output_burst}"
        if show_micro_tags and "micro" in transition.tags:
            label = f"[{transition.tags['micro']}] {label}"
        tooltip = transition.tags.get("node", "")
        lines.append(
            f"  {_quote(transition.src)} -> {_quote(transition.dst)} "
            f"[label={_quote(label)} fontsize=8 tooltip={_quote(tooltip)}];"
        )
    lines.append("}")
    return "\n".join(lines)


def write_machine_dot(machine: BurstModeMachine, path: str, title: str = "") -> None:
    """Write the DOT rendering of ``machine`` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(machine_to_dot(machine, title))
        handle.write("\n")
