"""Burst-mode fragment templates for CDFG nodes (paper Section 4.2).

Each operation node expands into the six-micro-operation fragment of
Figure 11:

(i) wait for requests and set input muxes, (ii) select and initiate
the operation, (iii) set the destination register mux, (iv) write the
register, (v) reset all local request/acknowledge pairs in parallel,
(vi) send done signals.

Global request waits and done emissions are one transition per wire
(the naive translation): the global transformations shrink exactly
this part by eliminating channels, which is how Figure 12's
unoptimized -> optimized-GT reduction arises.  Local signal pairs are
``*_req``/``*_ack`` wires whose datapath meaning is carried in the
signal's ``action`` tuple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.afsm.burst import Cond, Edge, InputBurst, OutputBurst
from repro.afsm.machine import BurstModeMachine
from repro.afsm.signals import Signal, SignalKind
from repro.cdfg.node import Node
from repro.rtl.ast import BinaryExpr, Operand, RtlStatement

#: operator -> wire-name fragment
OPERATOR_NAMES: Dict[str, str] = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "<": "lt",
    "<=": "le",
    ">": "gt",
    ">=": "ge",
    "==": "eq",
    "!=": "ne",
}


def _sanitize(value: object) -> str:
    return str(value).replace(".", "p").replace("-", "m")


@dataclass
class GlobalEdge:
    """A global event the fragment must wait for or emit."""

    wire: str
    rising: bool
    ddc: bool = False

    def as_edge(self) -> Edge:
        return Edge(self.wire, self.rising, self.ddc)


@dataclass
class FragmentPlan:
    """Everything needed to expand one CDFG node in one controller."""

    node: Node
    #: global request events, in wait order (one transition each)
    waits: List[GlobalEdge] = field(default_factory=list)
    #: global done events, in emission order (one transition each)
    dones: List[GlobalEdge] = field(default_factory=list)
    #: ddc edges to absorb (synthetic channel resets), attached to the
    #: first transition after the waits
    absorbs: List[GlobalEdge] = field(default_factory=list)
    #: synthetic reset events this fragment must emit at its very end
    emit_resets: List[GlobalEdge] = field(default_factory=list)


def _req_ack(machine: BurstModeMachine, base: str, action: tuple) -> Tuple[str, str]:
    req = f"{base}_req"
    ack = f"{base}_ack"
    machine.declare_signal(Signal(req, SignalKind.LOCAL_REQ, is_input=False, partner=ack, action=action))
    machine.declare_signal(Signal(ack, SignalKind.LOCAL_ACK, is_input=True, partner=req))
    return req, ack


def _source_mux_wires(
    machine: BurstModeMachine, fu: str, statement: RtlStatement
) -> List[Tuple[str, str]]:
    """Input-mux req/ack pairs for the FU operation's source operands."""
    if not isinstance(statement.expr, BinaryExpr):
        return []
    wires = []
    for port, operand in enumerate((statement.expr.left, statement.expr.right)):
        if operand.is_register:
            base = f"mux{port}_{operand.register}"
            action = ("src_mux", fu, port, ("reg", operand.register))
        else:
            base = f"mux{port}_const_{_sanitize(operand.literal)}"
            action = ("src_mux", fu, port, ("const", operand.literal))
        wires.append(_req_ack(machine, base, action))
    return wires


def _go_wires(machine: BurstModeMachine, fu: str, statement: RtlStatement) -> Tuple[str, str]:
    operator = statement.operator
    assert operator is not None
    name = OPERATOR_NAMES[operator]
    return _req_ack(machine, f"go_{name}", ("fu_go", fu, operator))


def _dest_wires(
    machine: BurstModeMachine, fu: str, statement: RtlStatement
) -> Tuple[Tuple[str, str], Tuple[str, str]]:
    """(register-mux pair, latch pair) for a statement's destination.

    An operation result is routed from the FU; a copy routes another
    register (or a constant) through the register's input mux.
    """
    dest = statement.dest
    if statement.is_copy:
        operand = statement.expr
        assert isinstance(operand, Operand)
        if operand.is_register:
            source = ("reg", operand.register)
            tag = operand.register
        else:
            source = ("const", operand.literal)
            tag = f"const_{_sanitize(operand.literal)}"
    else:
        source = ("fu", fu)
        tag = fu
    mux = _req_ack(machine, f"reg_{dest}_sel_{tag}", ("reg_mux", dest, source))
    latch = _req_ack(machine, f"reg_{dest}_latch", ("latch", dest))
    return mux, latch


def expand_operation(
    machine: BurstModeMachine,
    cursor: str,
    plan: FragmentPlan,
    pending_outputs: Optional[List[Edge]] = None,
) -> str:
    """Expand an operation node fragment starting at state ``cursor``.

    ``pending_outputs`` are edges a previous fragment asked to ride on
    this fragment's first transition (LT3-style preselection uses the
    same mechanism during extraction for mux-less fragments).  Returns
    the state the machine is in after the fragment.
    """
    node = plan.node
    fu = node.fu or "FU"
    tags = {"node": node.name}
    pending = list(pending_outputs or [])

    operation = next((s for s in node.statements if not s.is_copy), None)
    src_wires = _source_mux_wires(machine, fu, operation) if operation else []
    go_pair = _go_wires(machine, fu, operation) if operation else None
    dest_pairs = [_dest_wires(machine, fu, statement) for statement in node.statements]

    # ddc absorptions (synthetic channel resets that may arrive at any
    # point of the iteration) ride on the first transition after the
    # waits so they never collide with a compulsory edge on their wire
    absorb_edges = tuple(edge.as_edge() for edge in plan.absorbs)

    # -- (i) waits: one transition per global request wire -------------
    # synthetic channel resets are emitted on the fragment's first
    # output transition, before any of this fragment's own events
    reset_out = tuple(edge.as_edge() for edge in plan.emit_resets)

    state = cursor
    wait_edges = list(plan.waits)
    for index, wait in enumerate(wait_edges):
        nxt = machine.fresh_state()
        outputs: Tuple[Edge, ...] = ()
        if index == len(wait_edges) - 1:
            outputs = (
                reset_out
                + tuple(pending)
                + tuple(Edge(req, True) for req, __ in src_wires)
            )
            reset_out = ()
            pending = []
        machine.add_transition(
            state,
            nxt,
            InputBurst((wait.as_edge(),)),
            OutputBurst(outputs),
            tags={**tags, "micro": "wait" if not outputs else "mux"},
        )
        state = nxt

    if not wait_edges:
        # no global requests: mux setting rides on entry (empty burst
        # folds into the predecessor transition later)
        nxt = machine.fresh_state()
        machine.add_transition(
            state,
            nxt,
            InputBurst(()),
            OutputBurst(
                reset_out
                + tuple(pending)
                + tuple(Edge(req, True) for req, __ in src_wires)
            ),
            tags={**tags, "micro": "mux"},
        )
        reset_out = ()
        pending = []
        state = nxt

    # -- (ii) operation -------------------------------------------------
    if go_pair is not None:
        nxt = machine.fresh_state()
        machine.add_transition(
            state,
            nxt,
            InputBurst(tuple(Edge(ack, True) for __, ack in src_wires) + absorb_edges),
            OutputBurst((Edge(go_pair[0], True),)),
            tags={**tags, "micro": "op"},
        )
        absorb_edges = ()
        state = nxt

    # -- (iii) destination register mux ---------------------------------
    nxt = machine.fresh_state()
    trigger = (Edge(go_pair[1], True),) if go_pair is not None else ()
    machine.add_transition(
        state,
        nxt,
        InputBurst(trigger + absorb_edges),
        OutputBurst(tuple(Edge(mux_req, True) for (mux_req, __), ___ in dest_pairs)),
        tags={**tags, "micro": "dstmux"},
    )
    absorb_edges = ()
    state = nxt

    # -- (iv) write ------------------------------------------------------
    nxt = machine.fresh_state()
    machine.add_transition(
        state,
        nxt,
        InputBurst(tuple(Edge(mux_ack, True) for (__, mux_ack), ___ in dest_pairs)),
        OutputBurst(tuple(Edge(latch_req, True) for ___, (latch_req, __) in dest_pairs)),
        tags={**tags, "micro": "write"},
    )
    state = nxt

    # -- (v) parallel reset ----------------------------------------------
    all_reqs = [req for req, __ in src_wires]
    if go_pair is not None:
        all_reqs.append(go_pair[0])
    for (mux_req, __), (latch_req, ___) in dest_pairs:
        all_reqs.extend((mux_req, latch_req))
    nxt = machine.fresh_state()
    machine.add_transition(
        state,
        nxt,
        InputBurst(tuple(Edge(latch_ack, True) for ___, (__, latch_ack) in dest_pairs)),
        OutputBurst(tuple(Edge(req, False) for req in all_reqs)),
        tags={**tags, "micro": "reset"},
    )
    state = nxt

    # -- (vi) dones: one transition per global wire -----------------------
    all_acks = [ack for __, ack in src_wires]
    if go_pair is not None:
        all_acks.append(go_pair[1])
    for (__, mux_ack), (___, latch_ack) in dest_pairs:
        all_acks.extend((mux_ack, latch_ack))

    done_edges = tuple(done.as_edge() for done in plan.dones)
    nxt = machine.fresh_state()
    machine.add_transition(
        state,
        nxt,
        InputBurst(tuple(Edge(ack, False) for ack in all_acks)),
        OutputBurst(done_edges),
        tags={**tags, "micro": "done"},
    )
    return nxt
