"""Well-formedness checks for burst-mode machines.

``check_machine`` verifies the properties a synthesizable (X)BM spec
needs:

1. every state is reachable and (except possibly terminal states) left
   by at least one transition;
2. *polarity consistency*: each signal has a well-defined level in
   every state, and every compulsory edge toggles from that level
   (directed don't-cares weaken the tracked level to "unknown");
3. *distinguishability* (maximal-set property): two transitions
   leaving the same state must differ in conditions or neither's
   compulsory input burst may contain the other's;
4. signals used in bursts are declared with the right direction
   (inputs trigger, outputs are driven).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.afsm.machine import BurstModeMachine, Transition
from repro.errors import BurstModeError

Level = Optional[int]  # 0, 1 or None (unknown)


def signal_levels(machine: BurstModeMachine) -> Dict[str, Dict[str, Level]]:
    """Level of every signal in every reachable state (None = unknown).

    All wires start low in the initial state.  Raises on polarity
    conflicts for compulsory edges.
    """
    problems: List[str] = []
    levels = _propagate_levels(machine, problems)
    if problems:
        raise BurstModeError("; ".join(problems))
    return levels


def _propagate_levels(
    machine: BurstModeMachine, problems: List[str]
) -> Dict[str, Dict[str, Level]]:
    signals = machine.signals()
    levels: Dict[str, Dict[str, Level]] = {
        machine.initial_state: {s.name: s.initial_level for s in signals}
    }
    names = [s.name for s in signals]
    frontier = [machine.initial_state]
    seen_transitions: Set[Tuple[int, str]] = set()
    while frontier:
        state = frontier.pop()
        for transition in machine.transitions_from(state):
            key = (transition.uid, state)
            if key in seen_transitions:
                continue
            seen_transitions.add(key)
            current = dict(levels[state])
            for edge in transition.input_burst.edges:
                before = current.get(edge.signal)
                expected = 0 if edge.rising else 1
                if edge.ddc:
                    current[edge.signal] = None
                    continue
                if before is not None and before != expected:
                    problems.append(
                        f"{machine.name}: edge {edge} in {transition} fires from level {before}"
                    )
                current[edge.signal] = 1 if edge.rising else 0
            for edge in transition.output_burst.edges:
                before = current.get(edge.signal)
                expected = 0 if edge.rising else 1
                if before is not None and before != expected:
                    problems.append(
                        f"{machine.name}: output {edge} in {transition} driven from level {before}"
                    )
                current[edge.signal] = 1 if edge.rising else 0
            destination = levels.get(transition.dst)
            if destination is None:
                levels[transition.dst] = current
                frontier.append(transition.dst)
            else:
                # paths reaching a state with different levels weaken
                # the tracked level to "unknown"; an actual polarity
                # error is then caught where a compulsory edge fires
                # from a known-wrong level
                merged_changed = False
                for name in names:
                    if destination.get(name) != current.get(name):
                        if destination.get(name) is not None:
                            destination[name] = None
                            merged_changed = True
                if merged_changed:
                    frontier.append(transition.dst)
    return levels


def collect_problems(machine: BurstModeMachine, allow_polarity_conflicts: bool = False) -> List[str]:
    problems: List[str] = []

    reachable = machine.reachable_states()
    unreachable = sorted(set(machine.states()) - reachable)
    if unreachable:
        problems.append(f"unreachable states: {unreachable}")

    # direction discipline
    for transition in machine.transitions():
        for edge in transition.input_burst.edges:
            signal = machine.signal(edge.signal)
            if not signal.is_input:
                problems.append(f"output {edge.signal!r} used in input burst of {transition}")
        for cond in transition.input_burst.conditions:
            signal = machine.signal(cond.signal)
            if not signal.is_input:
                problems.append(f"output {cond.signal!r} sampled as conditional")
        for edge in transition.output_burst.edges:
            signal = machine.signal(edge.signal)
            if signal.is_input:
                problems.append(f"input {edge.signal!r} driven in output burst of {transition}")

    # distinguishability
    for state in machine.states():
        outgoing = machine.transitions_from(state)
        for i, left in enumerate(outgoing):
            for right in outgoing[i + 1 :]:
                if _conditions_disjoint(left, right):
                    continue
                left_set = {(e.signal, e.rising) for e in left.input_burst.compulsory_edges}
                right_set = {(e.signal, e.rising) for e in right.input_burst.compulsory_edges}
                if left_set <= right_set or right_set <= left_set:
                    problems.append(
                        f"transitions from {state} are not distinguishable: "
                        f"{left.input_burst} vs {right.input_burst}"
                    )

    polarity_problems: List[str] = []
    _propagate_levels(machine, polarity_problems)
    if not allow_polarity_conflicts:
        problems.extend(polarity_problems)
    return problems


def _conditions_disjoint(left: Transition, right: Transition) -> bool:
    left_conditions = {c.signal: c.high for c in left.input_burst.conditions}
    right_conditions = {c.signal: c.high for c in right.input_burst.conditions}
    for signal, level in left_conditions.items():
        if signal in right_conditions and right_conditions[signal] != level:
            return True
    return False


def check_machine(machine: BurstModeMachine, allow_polarity_conflicts: bool = False) -> None:
    """Raise :class:`BurstModeError` listing every violated property."""
    problems = collect_problems(machine, allow_polarity_conflicts=allow_polarity_conflicts)
    if problems:
        raise BurstModeError(f"{machine.name}: " + "; ".join(problems))
