"""Extended burst-mode (XBM) asynchronous finite state machines.

Controllers are Mealy-like machines whose state transitions fire when
an *input burst* (a set of signal edges, plus optional sampled
conditions) has completely arrived, producing an *output burst*
(paper Section 4.1).  The two XBM extensions are supported: directed
don't-cares (edges that may arrive early) and conditionals (levels
sampled on a transition).

:mod:`repro.afsm.extract` translates a CDFG plus a channel plan into
one machine per functional unit, via the six-micro-operation fragment
templates of :mod:`repro.afsm.fragments`.
"""

from repro.afsm.burst import Cond, Edge, InputBurst, OutputBurst
from repro.afsm.extract import Controller, DistributedDesign, extract_controllers
from repro.afsm.machine import BurstModeMachine, State, Transition
from repro.afsm.signals import Signal, SignalKind
from repro.afsm.validate import check_machine

__all__ = [
    "Cond",
    "Edge",
    "InputBurst",
    "OutputBurst",
    "Controller",
    "DistributedDesign",
    "extract_controllers",
    "BurstModeMachine",
    "State",
    "Transition",
    "Signal",
    "SignalKind",
    "check_machine",
]
