"""Burst-mode machine -> two-level hazard-free logic.

The construction follows classical burst-mode synthesis: the machine
becomes an incompletely-specified flow table over the variables
``inputs ++ state bits``, with one Boolean function per output signal
and per next-state bit.

For a transition ``s --{burst}/--> s'`` with start point A (the input
levels in s) and end point B (levels after the burst; directed
don't-cares dashed; sampled conditionals fixed):

- during the burst (``[A,B] - B``) every function holds its old value
  and the state code stays ``K(s)``;
- at B the outputs take their new values and the state bits ``K(s')``;
- a function that is 1 across the whole transition contributes a
  *required cube* (static-1 hazard freedom), one that falls 1->0 makes
  the transition cube *privileged* with start point A.

Unspecified total states are don't-cares.  Functions are minimized by
:mod:`repro.logic.espresso` and the resulting covers are verified
hazard-free.  Counting supports the paper's two back-ends: ``SINGLE``
("3D mode", per-output covers summed) and ``SHARED`` ("Minimalist
mode", identical product terms across outputs counted once).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.afsm.extract import DistributedDesign
from repro.afsm.machine import BurstModeMachine
from repro.afsm.validate import _propagate_levels
from repro.errors import LogicError
from repro.logic.cover import Cover
from repro.logic.cube import Cube, DASH
from repro.logic.encode import encode_states
from repro.logic.espresso import minimize
from repro.logic.hazards import (
    PrivilegedCube,
    RequiredCube,
    check_hazard_free,
)


class SynthesisMode(enum.Enum):
    #: per-output minimization and counting (the 3D tool's style)
    SINGLE = "single-output"
    #: identical products shared between outputs (Minimalist's style)
    SHARED = "shared-products"


@dataclass
class FunctionSpec:
    """ON/OFF/required/privileged sets of one Boolean function."""

    name: str
    on_cubes: List[Cube] = field(default_factory=list)
    off_cubes: List[Cube] = field(default_factory=list)
    required: List[RequiredCube] = field(default_factory=list)
    privileged: List[PrivilegedCube] = field(default_factory=list)


@dataclass
class LogicSummary:
    """Gate-level results for one controller (Figure 13 row)."""

    machine: str
    mode: SynthesisMode
    products: int
    literals: int
    functions: int
    covers: Dict[str, Cover] = field(default_factory=dict)
    variables: List[str] = field(default_factory=list)
    #: unsatisfiable hazard constraints (ddc-widened start points):
    #: residual dynamic-hazard risks to be discharged by timing
    hazard_warnings: List[str] = field(default_factory=list)


def _machine_variables(machine: BurstModeMachine) -> Tuple[List[str], List[str]]:
    inputs = sorted(signal.name for signal in machine.inputs())
    outputs = sorted(signal.name for signal in machine.outputs())
    return inputs, outputs


def build_function_specs(
    machine: BurstModeMachine,
    back_annotate: bool = False,
) -> Tuple[Dict[str, FunctionSpec], List[str]]:
    """Flow-table construction: per-function ON/OFF/hazard sets.

    ``back_annotate`` implements the extraction's fourth step ("modify
    the BM specification to back-annotate the early arrival of
    requests"): a global request wire whose next event may arrive
    while the controller is working through earlier bursts is treated
    as a don't-care in every state where no outgoing transition
    samples it.  The covers then cannot depend on those wires in those
    states — which is exactly what makes early arrivals safe.  The
    robustness is not free: forcing independence is a constraint on the
    cover rather than a don't-care, typically costing a few products,
    so it is off by default and measured as an ablation
    (`tests/logic/test_synthesis.py`).
    """
    problems: List[str] = []
    levels = _propagate_levels(machine, problems)
    if problems:
        raise LogicError(f"{machine.name}: {problems[0]}")
    inputs, outputs = _machine_variables(machine)
    codes, state_bits = encode_states(machine)
    width = len(inputs) + state_bits
    input_index = {name: i for i, name in enumerate(inputs)}

    from repro.afsm.signals import SignalKind as _SignalKind

    global_inputs = {
        signal.name
        for signal in machine.inputs()
        if signal.kind is _SignalKind.GLOBAL_READY
    }

    function_names = outputs + [f"__state{bit}" for bit in range(state_bits)]
    specs = {name: FunctionSpec(name) for name in function_names}

    from repro.afsm.signals import SignalKind

    conditional_inputs = {
        signal.name
        for signal in machine.inputs()
        if signal.kind is SignalKind.CONDITIONAL
    }

    def base_cube(state: str) -> List[int]:
        sampled_here: set = set()
        if back_annotate:
            for transition in machine.transitions_from(state):
                sampled_here |= {
                    edge.signal for edge in transition.input_burst.edges
                }
        values = []
        for name in inputs:
            if name in conditional_inputs:
                # sampled levels are external data, unknown at rest
                values.append(DASH)
                continue
            if back_annotate and name in global_inputs and name not in sampled_here:
                # back-annotation: the wire may toggle early while this
                # state does not sample it; the logic must not depend
                # on it here
                values.append(DASH)
                continue
            level = levels.get(state, {}).get(name)
            values.append(DASH if level is None else level)
        values.extend(codes[state])
        return values

    def output_level(state: str, name: str) -> Optional[int]:
        return levels.get(state, {}).get(name)

    for state in machine.states():
        if state not in levels:
            continue  # unreachable
        transitions = machine.transitions_from(state)
        state_code = codes[state]

        # end points of this state's transitions (to carve out of rest
        # and pre-burst regions)
        end_cubes: List[Cube] = []
        per_transition = []
        for transition in transitions:
            start_values = base_cube(state)
            # a conditional transition exists only where its sampled
            # level holds: the condition literal restricts the whole
            # transition cube, start point included
            for cond in transition.input_burst.conditions:
                position = input_index[cond.signal]
                start_values[position] = 1 if cond.high else 0
            end_values = list(start_values)
            for edge in transition.input_burst.edges:
                position = input_index[edge.signal]
                end_values[position] = DASH if edge.ddc else (1 if edge.rising else 0)
            start = Cube(start_values)
            end = Cube(end_values)
            per_transition.append((transition, start, end))
            end_cubes.append(end)

        # rest region: the state is stable at its entry levels, minus
        # the departure points
        rest_pieces = [Cube(base_cube(state))]
        for end in end_cubes:
            rest_pieces = [piece for cube in rest_pieces for piece in cube.sharp(end)]
        for name in function_names:
            if name.startswith("__state"):
                value: Optional[int] = state_code[int(name[len("__state"):])]
            else:
                value = output_level(state, name)
            if value is None:
                continue
            target = specs[name].on_cubes if value == 1 else specs[name].off_cubes
            target.extend(rest_pieces)

        for transition, start, end in per_transition:
            trans_cube = start.supercube(end)
            # the pre-burst region excludes every sibling's end point:
            # reaching any complete burst fires that sibling instead
            pre_pieces = [trans_cube]
            for sibling_end in end_cubes:
                pre_pieces = [
                    piece for cube in pre_pieces for piece in cube.sharp(sibling_end)
                ]
            next_code = codes[transition.dst]
            edge_changes = {
                edge.signal: (1 if edge.rising else 0)
                for edge in transition.output_burst.edges
            }
            for name in function_names:
                if name.startswith("__state"):
                    bit = int(name[len("__state"):])
                    old: Optional[int] = state_code[bit]
                    new: Optional[int] = next_code[bit]
                else:
                    old = output_level(state, name)
                    new = edge_changes.get(name, old)
                spec = specs[name]
                if new is not None:
                    (spec.on_cubes if new == 1 else spec.off_cubes).append(end)
                if old is None:
                    continue
                if old == 1 and new == 1:
                    spec.on_cubes.append(trans_cube)
                    spec.required.append(RequiredCube(trans_cube))
                elif old == 1 and new == 0:
                    spec.on_cubes.extend(pre_pieces)
                    spec.privileged.append(PrivilegedCube(trans_cube, start))
                elif old == 0:
                    spec.off_cubes.extend(pre_pieces)

    # consistency check: ON and OFF must not overlap
    for name, spec in specs.items():
        off_cover = Cover(spec.off_cubes).drop_contained()
        for on_cube in spec.on_cubes:
            for off_cube in off_cover:
                if on_cube.intersects(off_cube):
                    raise LogicError(
                        f"{machine.name}.{name}: specification conflict between "
                        f"ON {on_cube} and OFF {off_cube}"
                    )

    variables = inputs + [f"y{bit}" for bit in range(state_bits)]
    return specs, variables


def synthesize_controller(
    machine: BurstModeMachine,
    mode: SynthesisMode = SynthesisMode.SINGLE,
    verify: bool = True,
    back_annotate: bool = False,
) -> LogicSummary:
    """Minimize every function of one controller and count the result."""
    specs, variables = build_function_specs(machine, back_annotate=back_annotate)
    covers: Dict[str, Cover] = {}
    warnings: List[str] = []
    for name, spec in specs.items():
        off_cover = Cover(spec.off_cubes).drop_contained()
        cover = minimize(
            spec.on_cubes, off_cover, required=spec.required, privileged=spec.privileged
        )
        if verify:
            problems = check_hazard_free(cover, spec.required, spec.privileged, off_cover)
            hard = [p for p in problems if "OFF-set" in p or "required" in p]
            if hard:
                raise LogicError(f"{machine.name}.{name}: " + "; ".join(hard[:3]))
            warnings.extend(f"{name}: {p}" for p in problems)
            on_check = Cover(list(cover))
            for cube in Cover(spec.on_cubes).drop_contained():
                if not on_check.contains_cube(cube):
                    raise LogicError(
                        f"{machine.name}.{name}: ON-set cube {cube} left uncovered"
                    )
        covers[name] = cover

    if mode is SynthesisMode.SHARED:
        distinct: Dict[Tuple, Cube] = {}
        for cover in covers.values():
            for cube in cover:
                distinct[cube.values] = cube
        products = len(distinct)
        literals = sum(cube.literal_count for cube in distinct.values())
    else:
        products = sum(len(cover) for cover in covers.values())
        literals = sum(cover.literal_count() for cover in covers.values())

    return LogicSummary(
        machine=machine.name,
        mode=mode,
        products=products,
        literals=literals,
        functions=len(covers),
        covers=covers,
        variables=variables,
        hazard_warnings=warnings,
    )


def synthesize_design(
    design: DistributedDesign,
    shared_for: Sequence[str] = (),
    verify: bool = True,
    back_annotate: bool = False,
) -> Dict[str, LogicSummary]:
    """Synthesize every controller of a design.

    ``shared_for`` lists units minimized with shared products (the
    paper used Minimalist for ALU1, 3D for the rest).
    """
    summaries: Dict[str, LogicSummary] = {}
    for fu, controller in design.controllers.items():
        mode = SynthesisMode.SHARED if fu in shared_for else SynthesisMode.SINGLE
        summaries[fu] = synthesize_controller(
            controller.machine, mode=mode, verify=verify, back_annotate=back_annotate
        )
    return summaries
