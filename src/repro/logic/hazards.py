"""Hazard-freedom theory for multiple-input-change transitions.

Following Nowick & Dill's exact hazard-free two-level minimization:
for each specified input transition (a *transition cube* ``[A, B]``
from start point A to end point B) and each output function f,

- **static 1 -> 1**: the whole transition cube is a *required cube* —
  it must be contained in a single product of f's cover, or a product
  could momentarily drop during the burst (static-1 hazard);
- **dynamic 1 -> 0**: the transition cube is *privileged* with start
  point A: a product that intersects ``[A, B]`` without containing A
  could turn on and off again mid-burst (dynamic hazard), so such
  intersections are illegal;
- **0 -> 1 and static 0**: no constraint beyond the OFF-set (products
  simply must not cover OFF points).

``check_hazard_free`` verifies a cover against these constraints; the
minimizer (:mod:`repro.logic.espresso`) uses the same predicates while
expanding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import HazardError
from repro.logic.cover import Cover
from repro.logic.cube import Cube


@dataclass(frozen=True)
class RequiredCube:
    """A cube that must lie inside one single product."""

    cube: Cube

    def satisfied_by(self, cover: Cover) -> bool:
        return any(product.contains(self.cube) for product in cover)


@dataclass(frozen=True)
class PrivilegedCube:
    """A dynamic 1->0 transition cube with its start point."""

    cube: Cube
    start: Cube  # the start *sub-cube* (A with don't-care inputs dashed)

    def illegally_intersected_by(self, product: Cube) -> bool:
        if not product.intersects(self.cube):
            return False
        return not product.contains(self.start)


def check_hazard_free(
    cover: Cover,
    required: Sequence[RequiredCube],
    privileged: Sequence[PrivilegedCube],
    off_set: Cover,
) -> List[str]:
    """All hazard/correctness violations of ``cover`` (empty = clean)."""
    problems: List[str] = []
    for requirement in required:
        if not requirement.satisfied_by(cover):
            problems.append(f"required cube {requirement.cube} split across products")
    for product in cover:
        for priv in privileged:
            if priv.illegally_intersected_by(product):
                problems.append(
                    f"product {product} illegally intersects privileged cube "
                    f"{priv.cube} (start {priv.start})"
                )
        for off in off_set:
            if product.intersects(off):
                problems.append(f"product {product} covers OFF-set cube {off}")
    return problems


def assert_hazard_free(
    cover: Cover,
    required: Sequence[RequiredCube],
    privileged: Sequence[PrivilegedCube],
    off_set: Cover,
) -> None:
    problems = check_hazard_free(cover, required, privileged, off_set)
    if problems:
        raise HazardError("; ".join(problems[:5]))
