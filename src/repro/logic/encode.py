"""State encoding for burst-mode machines.

A minimal-length binary encoding assigned along a depth-first walk of
the machine's transition structure, so consecutive states tend to get
adjacent codes (fewer state bits switching per transition).  A true
critical-race-free assignment (as Minimalist/3D compute) is out of
scope; the encoding choice mainly perturbs product/literal counts,
which EXPERIMENTS.md reports against the paper's.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.afsm.machine import BurstModeMachine


def _gray(index: int) -> int:
    return index ^ (index >> 1)


def encode_states(machine: BurstModeMachine) -> Tuple[Dict[str, Tuple[int, ...]], int]:
    """(state -> bit tuple, number of state bits)."""
    order: List[str] = []
    seen = set()

    def visit(state: str) -> None:
        if state in seen:
            return
        seen.add(state)
        order.append(state)
        for transition in sorted(
            machine.transitions_from(state), key=lambda t: t.uid
        ):
            visit(transition.dst)

    visit(machine.initial_state)
    for state in machine.states():
        visit(state)

    bits = max(1, (len(order) - 1).bit_length())
    codes: Dict[str, Tuple[int, ...]] = {}
    for index, state in enumerate(order):
        gray = _gray(index)
        codes[state] = tuple((gray >> bit) & 1 for bit in reversed(range(bits)))
    return codes, bits
