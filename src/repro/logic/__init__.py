"""Two-level hazard-free logic synthesis substrate.

Implements the back-end the paper delegates to Minimalist [10] and 3D
[25]: burst-mode controllers are encoded into incompletely-specified
Boolean functions and minimized into two-level covers that satisfy the
hazard-freedom requirements of multiple-input-change transitions
(required cubes covered by single products; no illegal intersection of
privileged cubes — Nowick/Dill theory).

- :mod:`repro.logic.cube`/:mod:`repro.logic.cover`: positional cube
  algebra (0/1/dash), sharp, containment;
- :mod:`repro.logic.hazards`: transition cubes, required/privileged
  cubes, hazard-freedom checking;
- :mod:`repro.logic.espresso`: expand/irredundant heuristic minimizer
  honouring the hazard constraints;
- :mod:`repro.logic.encode`: state encoding;
- :mod:`repro.logic.synthesis`: machine -> logic, with single-output
  ("3D mode") and shared-product ("Minimalist mode") counting.
"""

from repro.logic.cube import Cube, DASH
from repro.logic.cover import Cover
from repro.logic.synthesis import (
    LogicSummary,
    SynthesisMode,
    synthesize_controller,
    synthesize_design,
)

__all__ = [
    "Cube",
    "DASH",
    "Cover",
    "LogicSummary",
    "SynthesisMode",
    "synthesize_controller",
    "synthesize_design",
]
