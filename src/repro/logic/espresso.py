"""Heuristic two-level minimization with hazard-freedom constraints.

An espresso-style EXPAND / IRREDUNDANT loop specialized for the
burst-mode synthesis problem:

- the initial cover is the list of ON cubes produced by the flow-table
  construction (each required cube appears as an initial cube, so the
  single-product requirement holds from the start and is preserved —
  expansion only grows cubes);
- EXPAND raises literals greedily; an expansion is accepted iff the
  grown cube stays off the OFF-set and does not illegally intersect a
  privileged cube;
- IRREDUNDANT removes products not needed for ON-set coverage, while
  keeping at least one single-product container for every required
  cube.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.logic.cover import Cover
from repro.logic.cube import Cube, DASH
from repro.logic.hazards import PrivilegedCube, RequiredCube


def _expansion_legal(
    candidate: Cube,
    off_set: Cover,
    privileged: Sequence[PrivilegedCube],
) -> bool:
    if off_set.intersects_cube(candidate):
        return False
    for priv in privileged:
        if priv.illegally_intersected_by(candidate):
            return False
    return True


def expand_cube(
    cube: Cube,
    off_set: Cover,
    privileged: Sequence[PrivilegedCube],
) -> Cube:
    """Greedily raise literals of ``cube`` (dash them) while legal.

    Variables are tried in order of descending OFF-set freedom: a
    position where the OFF-set rarely differs is raised first, a cheap
    approximation of the espresso expansion heuristic.  A privileged
    cube the seed already intersects illegally (unrepairable) does not
    block expansion further — only *new* illegal intersections do.
    """
    baseline_illegal = {
        id(priv) for priv in privileged if priv.illegally_intersected_by(cube)
    }
    live_privileged = [p for p in privileged if id(p) not in baseline_illegal]
    order = sorted(
        (index for index, value in enumerate(cube.values) if value != DASH),
        key=lambda index: sum(
            1 for off in off_set if off[index] != DASH and off[index] != cube[index]
        ),
    )
    current = cube
    for index in order:
        candidate = current.with_value(index, DASH)
        if _expansion_legal(candidate, off_set, live_privileged):
            current = candidate
    return current


def irredundant(
    cover: Cover,
    on_cubes: Sequence[Cube],
    required: Sequence[RequiredCube],
) -> Cover:
    """Drop products while keeping coverage and required containment."""
    products = list(cover)
    # try to drop the largest covers last (prefer dropping small cubes)
    for product in sorted(list(products), key=lambda c: c.literal_count, reverse=True):
        trial = [p for p in products if p is not product]
        trial_cover = Cover(trial)
        if not all(trial_cover.contains_cube(cube) for cube in on_cubes):
            continue
        if not all(req.satisfied_by(trial_cover) for req in required):
            continue
        products = trial
    return Cover(products)


def repair_privileged(
    cube: Cube,
    off_set: Cover,
    privileged: Sequence[PrivilegedCube],
) -> Cube:
    """Try to legalize a cube's privileged intersections by growing it
    to contain the offending start sub-cubes (the standard dhf fix: a
    product that reaches into a dynamic 1->0 transition must cover its
    start).  Growth is abandoned if it would touch the OFF-set."""
    current = cube
    for priv in privileged:
        if not priv.illegally_intersected_by(current):
            continue
        candidate = current.supercube(priv.start)
        if not off_set.intersects_cube(candidate):
            current = candidate
    return current


def minimize(
    on_cubes: Sequence[Cube],
    off_set: Cover,
    required: Sequence[RequiredCube] = (),
    privileged: Sequence[PrivilegedCube] = (),
) -> Cover:
    """Minimize the ON cubes against the OFF-set under the hazard
    constraints; returns an irredundant cover that satisfies every
    satisfiable hazard constraint (residual privileged intersections —
    possible when directed don't-cares widen start points — are
    reported by the caller as relative-timing warnings)."""
    seed = Cover(on_cubes).drop_contained()
    expanded: List[Cube] = []
    for cube in seed:
        grown = repair_privileged(cube, off_set, privileged)
        grown = expand_cube(grown, off_set, privileged)
        if not any(existing.contains(grown) for existing in expanded):
            expanded = [e for e in expanded if not grown.contains(e)]
            expanded.append(grown)
    return irredundant(Cover(expanded), list(seed), required)
