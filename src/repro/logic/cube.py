"""Positional cube algebra.

A cube over n Boolean variables is a tuple of n values from
``{0, 1, DASH}``; DASH means "either".  Cubes denote conjunctions of
literals; a cover (list of cubes) denotes their disjunction.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import LogicError

#: the "don't care this variable" position value
DASH = 2

Value = int  # 0 | 1 | DASH


class Cube:
    """An immutable cube."""

    __slots__ = ("values",)

    def __init__(self, values: Sequence[Value]):
        for value in values:
            if value not in (0, 1, DASH):
                raise LogicError(f"invalid cube value {value!r}")
        object.__setattr__(self, "values", tuple(values))

    def __setattr__(self, name, value):  # pragma: no cover - immutability
        raise AttributeError("Cube is immutable")

    # ------------------------------------------------------------------
    @classmethod
    def full(cls, width: int) -> "Cube":
        """The universal cube (all dashes)."""
        return cls((DASH,) * width)

    @classmethod
    def from_string(cls, text: str) -> "Cube":
        """Parse '10-1' style notation ('-' or '2' = dash)."""
        mapping = {"0": 0, "1": 1, "-": DASH, "2": DASH}
        try:
            return cls(tuple(mapping[ch] for ch in text))
        except KeyError as exc:
            raise LogicError(f"bad cube literal in {text!r}") from exc

    def __str__(self) -> str:
        return "".join("-" if v == DASH else str(v) for v in self.values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Cube('{self}')"

    def __eq__(self, other) -> bool:
        return isinstance(other, Cube) and self.values == other.values

    def __hash__(self) -> int:
        return hash(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index: int) -> Value:
        return self.values[index]

    # ------------------------------------------------------------------
    @property
    def literal_count(self) -> int:
        """Number of non-dash positions (SOP literal count)."""
        return sum(1 for v in self.values if v != DASH)

    def with_value(self, index: int, value: Value) -> "Cube":
        values = list(self.values)
        values[index] = value
        return Cube(values)

    def intersects(self, other: "Cube") -> bool:
        """True when the cubes share at least one minterm."""
        self._check_width(other)
        for left, right in zip(self.values, other.values):
            if left != DASH and right != DASH and left != right:
                return False
        return True

    def intersection(self, other: "Cube") -> Optional["Cube"]:
        """The shared sub-cube, or None when disjoint."""
        if not self.intersects(other):
            return None
        merged = []
        for left, right in zip(self.values, other.values):
            merged.append(left if left != DASH else right)
        return Cube(merged)

    def contains(self, other: "Cube") -> bool:
        """True when every minterm of ``other`` lies in this cube."""
        self._check_width(other)
        for left, right in zip(self.values, other.values):
            if left != DASH and left != right:
                return False
        return True

    def contains_point(self, point: Sequence[int]) -> bool:
        return all(v == DASH or v == p for v, p in zip(self.values, point))

    def supercube(self, other: "Cube") -> "Cube":
        """Smallest cube containing both."""
        self._check_width(other)
        merged = []
        for left, right in zip(self.values, other.values):
            merged.append(left if left == right else DASH)
        return Cube(merged)

    def sharp(self, other: "Cube") -> List["Cube"]:
        """``self`` minus ``other`` as a disjoint cube list."""
        self._check_width(other)
        if not self.intersects(other):
            return [self]
        if other.contains(self):
            return []
        remainder: List[Cube] = []
        current = list(self.values)
        for index, (left, right) in enumerate(zip(self.values, other.values)):
            if right == DASH or left != DASH:
                continue
            # self has DASH where other is fixed: split off the half
            # outside other
            piece = list(current)
            piece[index] = 1 - right
            remainder.append(Cube(piece))
            current[index] = right
        return remainder

    def distance(self, other: "Cube") -> int:
        """Number of variables with directly conflicting values."""
        self._check_width(other)
        return sum(
            1
            for left, right in zip(self.values, other.values)
            if left != DASH and right != DASH and left != right
        )

    def minterm_count(self) -> int:
        return 2 ** sum(1 for v in self.values if v == DASH)

    def minterms(self) -> Iterable[Tuple[int, ...]]:
        """Enumerate the cube's minterms (use only for small cubes)."""
        dashes = [i for i, v in enumerate(self.values) if v == DASH]
        base = [0 if v == DASH else v for v in self.values]
        for mask in range(2 ** len(dashes)):
            point = list(base)
            for bit, index in enumerate(dashes):
                point[index] = (mask >> bit) & 1
            yield tuple(point)

    def _check_width(self, other: "Cube") -> None:
        if len(self.values) != len(other.values):
            raise LogicError(
                f"cube width mismatch: {len(self.values)} vs {len(other.values)}"
            )
