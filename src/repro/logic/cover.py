"""Covers: lists of cubes with set-style operations."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.logic.cube import Cube, DASH


class Cover:
    """A sum-of-products: the union of its cubes' minterms."""

    def __init__(self, cubes: Iterable[Cube] = ()):
        self.cubes: List[Cube] = list(cubes)

    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self):
        return iter(self.cubes)

    def __contains__(self, cube: Cube) -> bool:
        return cube in self.cubes

    def add(self, cube: Cube) -> None:
        self.cubes.append(cube)

    # ------------------------------------------------------------------
    def intersects_cube(self, cube: Cube) -> bool:
        return any(own.intersects(cube) for own in self.cubes)

    def contains_cube(self, cube: Cube) -> bool:
        """True when every minterm of ``cube`` is covered.

        Computed by sharping the cube against each member: empty
        remainder means containment (no tautology check needed at the
        problem sizes of controller synthesis).
        """
        remainders = [cube]
        for own in self.cubes:
            next_remainders: List[Cube] = []
            for piece in remainders:
                next_remainders.extend(piece.sharp(own))
            remainders = next_remainders
            if not remainders:
                return True
        return not remainders

    def contains_point(self, point: Sequence[int]) -> bool:
        return any(cube.contains_point(point) for cube in self.cubes)

    # ------------------------------------------------------------------
    def drop_contained(self) -> "Cover":
        """Remove cubes single-cube-contained in another (dedup too)."""
        kept: List[Cube] = []
        for index, cube in enumerate(self.cubes):
            redundant = False
            for other_index, other in enumerate(self.cubes):
                if index == other_index:
                    continue
                if other.contains(cube) and not (
                    cube.contains(other) and other_index > index
                ):
                    redundant = True
                    break
            if not redundant:
                kept.append(cube)
        return Cover(kept)

    def literal_count(self) -> int:
        return sum(cube.literal_count for cube in self.cubes)

    def __str__(self) -> str:
        return " + ".join(str(cube) for cube in self.cubes) or "0"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Cover {len(self.cubes)} cubes>"
