"""Design-space exploration over transform subsets.

The paper positions its transforms as a toolbox for *systematic design
space exploration* and announces scripts as future work.  This module
provides that layer: enumerate (or sample) subsets of the global and
local transforms, push each through the complete flow, score the
resulting design points, and extract the Pareto frontier.

>>> from repro.explore import explore_design_space
>>> result = explore_design_space(build_diffeq_cdfg())   # doctest: +SKIP
>>> result.pareto_points()                               # doctest: +SKIP
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from repro.afsm.extract import extract_controllers
from repro.cdfg.graph import Cdfg
from repro.errors import VerificationError
from repro.local_transforms import optimize_local
from repro.local_transforms.scripts import STANDARD_LOCAL_SEQUENCE
from repro.obs.causal import EventTrace, bottleneck_label, critical_path
from repro.sim.seeding import NOMINAL
from repro.sim.system import simulate_system
from repro.sim.token_sim import simulate_tokens
from repro.timing.delays import DelayModel
from repro.transforms import optimize_global
from repro.transforms.scripts import STANDARD_SEQUENCE


@dataclass(frozen=True)
class DesignPoint:
    """One explored configuration and its scores (all minimized)."""

    global_transforms: Tuple[str, ...]
    local_transforms: Tuple[str, ...]
    channels: int
    total_states: int
    total_transitions: int
    makespan: float
    #: conformance stamp: did this point reproduce the golden register
    #: file with zero violations/hazards and clean per-pass oracles?
    conformant: bool = True
    #: "conformant", "failed: <reason>", or "unchecked"
    conformance: str = "unchecked"
    #: proof stamp: did every GT/LT application of this point discharge
    #: its flow-equivalence obligations (:mod:`repro.verify.flow`)?
    proved: bool = False
    #: "proved (<n> pass certificates)", "refuted: <reason>",
    #: "not proved: <reason>", or "unchecked"
    proof: str = "unchecked"
    #: how many provenance records the GT/LT scripts emitted
    provenance_records: int = 0
    #: dominant label group on the simulation's critical path
    bottleneck: str = ""
    #: "ok", or "failed" when the point's evaluation raised instead of
    #: producing a design (crash, timeout, injected fault) — failed
    #: points carry zeroed metrics and are excluded from the frontier
    status: str = "ok"
    #: the exception that failed the point (empty when status == "ok")
    error: str = ""

    @property
    def label(self) -> str:
        gt = "+".join(self.global_transforms) or "(no GT)"
        lt = "+".join(self.local_transforms) or "(no LT)"
        return f"{gt} / {lt}"

    def objectives(self) -> Tuple[float, float, float]:
        return (self.channels, self.total_states, self.makespan)

    def to_dict(self) -> Dict[str, object]:
        """Snake-case JSON document (the ``repro explore --json`` shape)."""
        return {
            "global_transforms": list(self.global_transforms),
            "local_transforms": list(self.local_transforms),
            "channels": self.channels,
            "total_states": self.total_states,
            "total_transitions": self.total_transitions,
            "makespan": self.makespan,
            "conformant": self.conformant,
            "conformance": self.conformance,
            "proved": self.proved,
            "proof": self.proof,
            "provenance_records": self.provenance_records,
            "bottleneck": self.bottleneck,
            "status": self.status,
            "error": self.error,
        }

    def dominates(self, other: "DesignPoint") -> bool:
        mine, theirs = self.objectives(), other.objectives()
        return all(m <= t for m, t in zip(mine, theirs)) and mine != theirs


@dataclass
class ExplorationResult:
    points: List[DesignPoint] = field(default_factory=list)
    #: run diagnostics (cache hits, evaluations computed, ...);
    #: excluded from equality so cold and warm results compare equal
    stats: Dict[str, object] = field(default_factory=dict, compare=False)

    def pareto_points(self) -> List[DesignPoint]:
        """The non-dominated points, in their original order.

        Sort-based skyline filter: points are visited in lexicographic
        objective order, so any dominator of a point is visited before
        it and (by transitivity of dominance) the skyline collected so
        far suffices to reject it — O(n log n + n·k) for k skyline
        points instead of the naive all-pairs O(n²) scan.
        """
        candidates = [i for i in range(len(self.points)) if self.points[i].status == "ok"]
        order = sorted(candidates, key=lambda i: self.points[i].objectives())
        skyline: List[DesignPoint] = []
        keep = set()
        for index in order:
            point = self.points[index]
            if not any(other.dominates(point) for other in skyline):
                skyline.append(point)
                keep.add(index)
        return [point for index, point in enumerate(self.points) if index in keep]

    def failed_points(self) -> List[DesignPoint]:
        """Points whose evaluation crashed or timed out."""
        return [point for point in self.points if point.status != "ok"]

    def best(self, objective: str) -> DesignPoint:
        """The single best point for one objective
        ('channels' | 'states' | 'makespan').

        Ties on the chosen objective are broken by the full objective
        vector, which guarantees the winner is itself on the Pareto
        frontier: any dominator would sort strictly earlier under
        ``(objective, objectives())``, contradicting minimality.  (A
        bare ``min`` over one objective can return a dominated point —
        same channel count, strictly worse states/makespan — making
        ``best`` disagree with ``pareto_points``.)
        """
        keys = {
            "channels": lambda p: p.channels,
            "states": lambda p: p.total_states,
            "makespan": lambda p: p.makespan,
        }
        try:
            key = keys[objective]
        except KeyError:
            raise ValueError(f"unknown objective {objective!r}") from None
        candidates = [point for point in self.points if point.status == "ok"]
        if not candidates:
            raise ValueError("no successfully evaluated points")
        return min(candidates, key=lambda p: (key(p),) + p.objectives())


def proof_stamp(conformance: str, certificates: int) -> Tuple[bool, str]:
    """Derive the ``(proved, proof)`` stamp of a design point.

    The flow oracles run inside the same scripts as the metamorphic
    ones, so the conformance verdict already carries the proof outcome:
    a conformant point was fully certified (``certificates`` counts the
    per-pass :class:`~repro.verify.flow.FlowProof` certificates), a
    ``flow[...]`` failure is a refutation with a counterexample, and
    any other failure leaves the point merely unproved.
    """
    if conformance == "unchecked":
        return False, "unchecked"
    if conformance == "conformant":
        return True, f"proved ({certificates} pass certificates)"
    message = conformance
    if message.startswith("failed: "):
        message = message[len("failed: ") :]
    if message.startswith("flow["):
        return False, f"refuted: {message}"
    return False, f"not proved: {message}"


def evaluate_point(
    cdfg: Cdfg,
    global_transforms: Sequence[str],
    local_transforms: Sequence[str],
    delays: Optional[DelayModel] = None,
    seed: int = 9,
    reference: Optional[Dict[str, float]] = None,
    golden: Optional[Dict[str, float]] = None,
) -> DesignPoint:
    """Synthesize and execute one configuration; optionally verify
    against a golden register file.

    ``reference`` keeps its historical contract (raise on mismatch);
    ``golden`` instead *stamps* the returned point: the per-pass
    oracles of :mod:`repro.verify` run inside both scripts and the run
    must reproduce ``golden`` with zero violations and hazards, or the
    point comes back ``conformant=False`` with the reason recorded.
    """
    conformance = "unchecked"
    oracle = local_oracle = None
    flow_proofs: List = []
    if golden is not None:
        from repro.verify.flow import (
            compose_global_oracles,
            compose_local_oracles,
            make_flow_global_oracle,
            make_flow_local_oracle,
        )
        from repro.verify.oracles import make_global_oracle, make_local_oracle

        oracle = compose_global_oracles(
            make_global_oracle(delays=delays, deep=False),
            make_flow_global_oracle(delays=delays, collect=flow_proofs),
        )
        local_oracle = compose_local_oracles(
            make_local_oracle(), make_flow_local_oracle(collect=flow_proofs)
        )
    try:
        optimized = optimize_global(
            cdfg, enabled=tuple(global_transforms), delays=delays, oracle=oracle
        )
        design = extract_controllers(optimized.cdfg, optimized.plan)
        provenance_records = len(optimized.provenance)
        if local_transforms:
            local = optimize_local(
                design, enabled=tuple(local_transforms), oracle=local_oracle
            )
            design = local.design
            provenance_records += len(local.provenance)
    except VerificationError as exc:
        if golden is None:
            raise
        # synthesize again without the failing oracle so the point's
        # metrics are still reported, stamped non-conformant
        optimized = optimize_global(cdfg, enabled=tuple(global_transforms), delays=delays)
        design = extract_controllers(optimized.cdfg, optimized.plan)
        provenance_records = len(optimized.provenance)
        if local_transforms:
            local = optimize_local(design, enabled=tuple(local_transforms))
            design = local.design
            provenance_records += len(local.provenance)
        conformance = f"failed: {exc}"
    result = simulate_system(
        design, delays=delays, seed=seed, strict=(golden is None), trace=EventTrace()
    )
    segments = critical_path(result.trace)
    bottleneck = bottleneck_label(segments) if segments else ""
    if reference is not None:
        for register, value in reference.items():
            if result.registers.get(register) != value:
                raise AssertionError(
                    f"configuration {global_transforms}/{local_transforms} "
                    f"computed {register}={result.registers.get(register)!r}, "
                    f"expected {value!r}"
                )
    if golden is not None and conformance == "unchecked":
        conformance = "conformant"
        if result.violations:
            conformance = f"failed: {result.violations[0]}"
        elif result.hazards:
            conformance = f"failed: hazard {result.hazards[0]}"
        else:
            for register, value in golden.items():
                got = result.registers.get(register)
                if got != value:
                    conformance = (
                        f"failed: register {register} = {got!r}, golden says {value!r}"
                    )
                    break
    proved, proof = proof_stamp(conformance, len(flow_proofs))
    return DesignPoint(
        global_transforms=tuple(global_transforms),
        local_transforms=tuple(local_transforms),
        channels=design.plan.count(include_env=False),
        total_states=sum(c.state_count for c in design.controllers.values()),
        total_transitions=sum(c.transition_count for c in design.controllers.values()),
        makespan=result.end_time,
        conformant=conformance in ("conformant", "unchecked"),
        conformance=conformance,
        proved=proved,
        proof=proof,
        provenance_records=provenance_records,
        bottleneck=bottleneck,
    )


def failed_point(
    global_transforms: Sequence[str],
    local_transforms: Sequence[str],
    error: str,
) -> DesignPoint:
    """The zeroed ``status="failed"`` stand-in for a crashed evaluation."""
    return DesignPoint(
        global_transforms=tuple(global_transforms),
        local_transforms=tuple(local_transforms),
        channels=0,
        total_states=0,
        total_transitions=0,
        makespan=0.0,
        conformant=False,
        conformance=f"failed: {error}",
        proved=False,
        proof=f"not proved: {error}",
        status="failed",
        error=error,
    )


#: per-point worker context:
#: (cdfg, delays, seed, reference, golden, injector, timeout).
#: Shipped once per process via the pool initializer so the payloads
#: are tiny (gt, lt) tuples instead of 64 pickled copies of the CDFG.
_POINT_CONTEXT: Optional[Tuple] = None


def _init_point_context(
    cdfg, delays, seed, reference, golden, injector=None, timeout=None
) -> None:
    global _POINT_CONTEXT
    _POINT_CONTEXT = (cdfg, delays, seed, reference, golden, injector, timeout)


def _evaluate_config(payload: Tuple[Tuple[str, ...], Tuple[str, ...]]) -> DesignPoint:
    """Worker-side shim: evaluate one ``(gt, lt)`` configuration.

    Module-level so :class:`~concurrent.futures.ProcessPoolExecutor`
    can pickle it; also used by the serial path so both paths share
    one code path per point.

    One bad grid point must not kill the sweep: any exception out of
    the evaluation (a transform bug, a timeout, an injected fault)
    becomes a ``status="failed"`` design point.  ``reference``
    mismatches keep their historical raise-on-mismatch contract, and
    ``KeyboardInterrupt`` always propagates to the resilient map.
    """
    from repro.resilience.injection import point_deadline

    global_transforms, local_transforms = payload
    cdfg, delays, seed, reference, golden, injector, timeout = _POINT_CONTEXT
    try:
        if injector is not None:
            injector(global_transforms, local_transforms)
        with point_deadline(timeout):
            return evaluate_point(
                cdfg,
                global_transforms,
                local_transforms,
                delays=delays,
                seed=seed,
                reference=reference,
                golden=golden,
            )
    except (KeyboardInterrupt, AssertionError):
        raise
    except Exception as exc:
        return failed_point(
            global_transforms, local_transforms, f"{type(exc).__name__}: {exc}"
        )


def explore_design_space(
    cdfg: Cdfg,
    global_subsets: Optional[Sequence[Sequence[str]]] = None,
    local_subsets: Optional[Sequence[Sequence[str]]] = None,
    delays: Optional[DelayModel] = None,
    seed: int = 9,
    reference: Optional[Dict[str, float]] = None,
    workers: Optional[int] = None,
    verify: bool = True,
    incremental: bool = True,
    cache: Optional["ArtifactCache"] = None,
    cache_dir: Optional[str] = None,
    fault_injector=None,
    point_timeout: Optional[float] = None,
    retries: int = 2,
) -> ExplorationResult:
    """Evaluate a grid of transform configurations.

    Defaults explore every prefix-closed subset of GT1..GT5 crossed
    with {no LTs, all LTs} — 64 points is already informative; pass
    explicit subset lists for a wider or narrower sweep.

    ``incremental`` (the default) routes the sweep through the
    shared-prefix engine (:mod:`repro.cache.incremental`): the GT grid
    is evaluated as a trie so each transform applies once per trie edge,
    extraction is shared across the ``()``/LT pair of every GT subset,
    and evaluations are content-addressed.  Pass an
    :class:`~repro.cache.ArtifactCache` via ``cache`` (or just a
    ``cache_dir`` path) to persist the memo across runs — warm sweeps
    are then near-instant and bit-identical to cold ones.
    ``incremental=False`` keeps the historical fully-independent
    per-point path (``cache``/``cache_dir`` are ignored there).

    Every point is independent, so the sweep parallelizes trivially:
    ``workers`` > 1 fans the grid out over a process pool (``workers=0``
    means one process per CPU); the CDFG ships once per worker via the
    pool initializer.  The default (``None`` or 1) evaluates serially;
    all paths produce identical points in identical order.

    With ``verify`` (the default) every point is conformance-stamped:
    a nominal token simulation of the untransformed CDFG supplies the
    golden register file once, and each configuration must reproduce it
    under the per-pass oracles with zero violations or hazards —
    non-conformant points survive in the result, flagged via
    :attr:`DesignPoint.conformant` / :attr:`DesignPoint.conformance`.

    The sweep is fault-tolerant: a grid point whose evaluation raises
    (or exceeds ``point_timeout`` seconds of wall clock) becomes a
    ``status="failed"`` point instead of aborting the sweep; a worker
    process dying rebuilds the pool and retries the unfinished points
    up to ``retries`` times with exponential backoff before degrading
    to serial evaluation; ``KeyboardInterrupt`` returns the completed
    points with ``stats["interrupted"]`` set.  ``fault_injector`` (see
    :mod:`repro.resilience.injection`) deterministically fails chosen
    points — the hook CI uses to prove all of the above.  When
    ``point_timeout`` is set, ``stats["watchdog_active"]`` records
    whether the SIGALRM deadline can actually be armed where the points
    run (it cannot off the main thread or without ``SIGALRM``; the
    deadline is then skipped with a one-time warning).
    """
    watchdog = None
    if point_timeout:
        from repro.resilience.injection import watchdog_active

        pooled = workers is not None and workers != 1
        watchdog = watchdog_active(pooled=pooled)

    golden = simulate_tokens(cdfg, seed=NOMINAL).registers if verify else None
    if global_subsets is None:
        global_subsets = [
            subset
            for size in range(len(STANDARD_SEQUENCE) + 1)
            for subset in combinations(STANDARD_SEQUENCE, size)
        ]
    if local_subsets is None:
        local_subsets = [(), tuple(STANDARD_LOCAL_SEQUENCE)]

    if incremental:
        from repro.cache.incremental import IncrementalExplorer
        from repro.cache.store import ArtifactCache

        store = cache
        if store is None and cache_dir is not None:
            store = ArtifactCache(cache_dir)
        engine = IncrementalExplorer(
            cdfg,
            delays=delays,
            seed=seed,
            reference=reference,
            golden=golden,
            cache=store,
            workers=workers,
            fault_injector=fault_injector,
            point_timeout=point_timeout,
            retries=retries,
        )
        result = ExplorationResult(points=engine.run(global_subsets, local_subsets))
        if store is not None:
            if store.directory is not None:
                store.save()
            result.stats["cache"] = store.stats()
        result.stats.update(
            evaluations=engine.evaluations_computed,
            edges=engine.edges_applied,
        )
        if watchdog is not None:
            result.stats["watchdog_active"] = watchdog
        if engine.interrupted:
            result.stats["interrupted"] = True
        if engine.pool_diagnostics is not None:
            result.stats["pool"] = engine.pool_diagnostics
        failed = len(result.failed_points())
        if failed:
            result.stats["failed"] = failed
        return result

    payloads = [
        (tuple(global_transforms), tuple(local_transforms))
        for global_transforms in global_subsets
        for local_transforms in local_subsets
    ]

    from repro.resilience.pool import resilient_map, serial_map

    result = ExplorationResult()
    initargs = (cdfg, delays, seed, reference, golden, fault_injector, point_timeout)
    if workers == 0:
        workers = os.cpu_count() or 1
    if workers is not None and workers > 1 and len(payloads) > 1:
        points, diagnostics = resilient_map(
            _evaluate_config,
            payloads,
            max_workers=min(workers, len(payloads)),
            initializer=_init_point_context,
            initargs=initargs,
            retries=retries,
        )
    else:
        points, diagnostics = serial_map(
            _evaluate_config, payloads, initializer=_init_point_context, initargs=initargs
        )
    result.points.extend(point for point in points if point is not None)
    result.stats["evaluations"] = len(result.points)
    if watchdog is not None:
        result.stats["watchdog_active"] = watchdog
    if diagnostics.interrupted:
        result.stats["interrupted"] = True
    if diagnostics.broken_pools or diagnostics.degraded_serial:
        result.stats["pool"] = diagnostics.to_dict()
    failed = len(result.failed_points())
    if failed:
        result.stats["failed"] = failed
    return result
