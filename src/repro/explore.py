"""Design-space exploration over transform subsets.

The paper positions its transforms as a toolbox for *systematic design
space exploration* and announces scripts as future work.  This module
provides that layer: enumerate (or sample) subsets of the global and
local transforms, push each through the complete flow, score the
resulting design points, and extract the Pareto frontier.

>>> from repro.explore import explore_design_space
>>> result = explore_design_space(build_diffeq_cdfg())   # doctest: +SKIP
>>> result.pareto_points()                               # doctest: +SKIP
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from repro.afsm.extract import extract_controllers
from repro.cdfg.graph import Cdfg
from repro.errors import VerificationError
from repro.local_transforms import optimize_local
from repro.local_transforms.scripts import STANDARD_LOCAL_SEQUENCE
from repro.obs.causal import EventTrace, bottleneck_label, critical_path
from repro.sim.seeding import NOMINAL
from repro.sim.system import simulate_system
from repro.sim.token_sim import simulate_tokens
from repro.timing.delays import DelayModel
from repro.transforms import optimize_global
from repro.transforms.scripts import STANDARD_SEQUENCE


@dataclass(frozen=True)
class DesignPoint:
    """One explored configuration and its scores (all minimized)."""

    global_transforms: Tuple[str, ...]
    local_transforms: Tuple[str, ...]
    channels: int
    total_states: int
    total_transitions: int
    makespan: float
    #: conformance stamp: did this point reproduce the golden register
    #: file with zero violations/hazards and clean per-pass oracles?
    conformant: bool = True
    #: "conformant", "failed: <reason>", or "unchecked"
    conformance: str = "unchecked"
    #: how many provenance records the GT/LT scripts emitted
    provenance_records: int = 0
    #: dominant label group on the simulation's critical path
    bottleneck: str = ""

    @property
    def label(self) -> str:
        gt = "+".join(self.global_transforms) or "(no GT)"
        lt = "+".join(self.local_transforms) or "(no LT)"
        return f"{gt} / {lt}"

    def objectives(self) -> Tuple[float, float, float]:
        return (self.channels, self.total_states, self.makespan)

    def dominates(self, other: "DesignPoint") -> bool:
        mine, theirs = self.objectives(), other.objectives()
        return all(m <= t for m, t in zip(mine, theirs)) and mine != theirs


@dataclass
class ExplorationResult:
    points: List[DesignPoint] = field(default_factory=list)
    #: run diagnostics (cache hits, evaluations computed, ...);
    #: excluded from equality so cold and warm results compare equal
    stats: Dict[str, object] = field(default_factory=dict, compare=False)

    def pareto_points(self) -> List[DesignPoint]:
        """The non-dominated points, in their original order.

        Sort-based skyline filter: points are visited in lexicographic
        objective order, so any dominator of a point is visited before
        it and (by transitivity of dominance) the skyline collected so
        far suffices to reject it — O(n log n + n·k) for k skyline
        points instead of the naive all-pairs O(n²) scan.
        """
        order = sorted(range(len(self.points)), key=lambda i: self.points[i].objectives())
        skyline: List[DesignPoint] = []
        keep = set()
        for index in order:
            point = self.points[index]
            if not any(other.dominates(point) for other in skyline):
                skyline.append(point)
                keep.add(index)
        return [point for index, point in enumerate(self.points) if index in keep]

    def best(self, objective: str) -> DesignPoint:
        """The single best point for one objective
        ('channels' | 'states' | 'makespan')."""
        keys = {
            "channels": lambda p: p.channels,
            "states": lambda p: p.total_states,
            "makespan": lambda p: p.makespan,
        }
        try:
            key = keys[objective]
        except KeyError:
            raise ValueError(f"unknown objective {objective!r}") from None
        return min(self.points, key=key)


def evaluate_point(
    cdfg: Cdfg,
    global_transforms: Sequence[str],
    local_transforms: Sequence[str],
    delays: Optional[DelayModel] = None,
    seed: int = 9,
    reference: Optional[Dict[str, float]] = None,
    golden: Optional[Dict[str, float]] = None,
) -> DesignPoint:
    """Synthesize and execute one configuration; optionally verify
    against a golden register file.

    ``reference`` keeps its historical contract (raise on mismatch);
    ``golden`` instead *stamps* the returned point: the per-pass
    oracles of :mod:`repro.verify` run inside both scripts and the run
    must reproduce ``golden`` with zero violations and hazards, or the
    point comes back ``conformant=False`` with the reason recorded.
    """
    conformance = "unchecked"
    oracle = local_oracle = None
    if golden is not None:
        from repro.verify.oracles import make_global_oracle, make_local_oracle

        oracle = make_global_oracle(delays=delays, deep=False)
        local_oracle = make_local_oracle()
    try:
        optimized = optimize_global(
            cdfg, enabled=tuple(global_transforms), delays=delays, oracle=oracle
        )
        design = extract_controllers(optimized.cdfg, optimized.plan)
        provenance_records = len(optimized.provenance)
        if local_transforms:
            local = optimize_local(
                design, enabled=tuple(local_transforms), oracle=local_oracle
            )
            design = local.design
            provenance_records += len(local.provenance)
    except VerificationError as exc:
        if golden is None:
            raise
        # synthesize again without the failing oracle so the point's
        # metrics are still reported, stamped non-conformant
        optimized = optimize_global(cdfg, enabled=tuple(global_transforms), delays=delays)
        design = extract_controllers(optimized.cdfg, optimized.plan)
        provenance_records = len(optimized.provenance)
        if local_transforms:
            local = optimize_local(design, enabled=tuple(local_transforms))
            design = local.design
            provenance_records += len(local.provenance)
        conformance = f"failed: {exc}"
    result = simulate_system(
        design, delays=delays, seed=seed, strict=(golden is None), trace=EventTrace()
    )
    segments = critical_path(result.trace)
    bottleneck = bottleneck_label(segments) if segments else ""
    if reference is not None:
        for register, value in reference.items():
            if result.registers.get(register) != value:
                raise AssertionError(
                    f"configuration {global_transforms}/{local_transforms} "
                    f"computed {register}={result.registers.get(register)!r}, "
                    f"expected {value!r}"
                )
    if golden is not None and conformance == "unchecked":
        conformance = "conformant"
        if result.violations:
            conformance = f"failed: {result.violations[0]}"
        elif result.hazards:
            conformance = f"failed: hazard {result.hazards[0]}"
        else:
            for register, value in golden.items():
                got = result.registers.get(register)
                if got != value:
                    conformance = (
                        f"failed: register {register} = {got!r}, golden says {value!r}"
                    )
                    break
    return DesignPoint(
        global_transforms=tuple(global_transforms),
        local_transforms=tuple(local_transforms),
        channels=design.plan.count(include_env=False),
        total_states=sum(c.state_count for c in design.controllers.values()),
        total_transitions=sum(c.transition_count for c in design.controllers.values()),
        makespan=result.end_time,
        conformant=conformance in ("conformant", "unchecked"),
        conformance=conformance,
        provenance_records=provenance_records,
        bottleneck=bottleneck,
    )


#: per-point worker context: (cdfg, delays, seed, reference, golden).
#: Shipped once per process via the pool initializer so the payloads
#: are tiny (gt, lt) tuples instead of 64 pickled copies of the CDFG.
_POINT_CONTEXT: Optional[Tuple] = None


def _init_point_context(cdfg, delays, seed, reference, golden) -> None:
    global _POINT_CONTEXT
    _POINT_CONTEXT = (cdfg, delays, seed, reference, golden)


def _evaluate_config(payload: Tuple[Tuple[str, ...], Tuple[str, ...]]) -> DesignPoint:
    """Worker-side shim: evaluate one ``(gt, lt)`` configuration.

    Module-level so :class:`~concurrent.futures.ProcessPoolExecutor`
    can pickle it; also used by the serial path so both paths share
    one code path per point.
    """
    global_transforms, local_transforms = payload
    cdfg, delays, seed, reference, golden = _POINT_CONTEXT
    return evaluate_point(
        cdfg,
        global_transforms,
        local_transforms,
        delays=delays,
        seed=seed,
        reference=reference,
        golden=golden,
    )


def explore_design_space(
    cdfg: Cdfg,
    global_subsets: Optional[Sequence[Sequence[str]]] = None,
    local_subsets: Optional[Sequence[Sequence[str]]] = None,
    delays: Optional[DelayModel] = None,
    seed: int = 9,
    reference: Optional[Dict[str, float]] = None,
    workers: Optional[int] = None,
    verify: bool = True,
    incremental: bool = True,
    cache: Optional["ArtifactCache"] = None,
    cache_dir: Optional[str] = None,
) -> ExplorationResult:
    """Evaluate a grid of transform configurations.

    Defaults explore every prefix-closed subset of GT1..GT5 crossed
    with {no LTs, all LTs} — 64 points is already informative; pass
    explicit subset lists for a wider or narrower sweep.

    ``incremental`` (the default) routes the sweep through the
    shared-prefix engine (:mod:`repro.cache.incremental`): the GT grid
    is evaluated as a trie so each transform applies once per trie edge,
    extraction is shared across the ``()``/LT pair of every GT subset,
    and evaluations are content-addressed.  Pass an
    :class:`~repro.cache.ArtifactCache` via ``cache`` (or just a
    ``cache_dir`` path) to persist the memo across runs — warm sweeps
    are then near-instant and bit-identical to cold ones.
    ``incremental=False`` keeps the historical fully-independent
    per-point path (``cache``/``cache_dir`` are ignored there).

    Every point is independent, so the sweep parallelizes trivially:
    ``workers`` > 1 fans the grid out over a process pool (``workers=0``
    means one process per CPU); the CDFG ships once per worker via the
    pool initializer.  The default (``None`` or 1) evaluates serially;
    all paths produce identical points in identical order.

    With ``verify`` (the default) every point is conformance-stamped:
    a nominal token simulation of the untransformed CDFG supplies the
    golden register file once, and each configuration must reproduce it
    under the per-pass oracles with zero violations or hazards —
    non-conformant points survive in the result, flagged via
    :attr:`DesignPoint.conformant` / :attr:`DesignPoint.conformance`.
    """
    golden = simulate_tokens(cdfg, seed=NOMINAL).registers if verify else None
    if global_subsets is None:
        global_subsets = [
            subset
            for size in range(len(STANDARD_SEQUENCE) + 1)
            for subset in combinations(STANDARD_SEQUENCE, size)
        ]
    if local_subsets is None:
        local_subsets = [(), tuple(STANDARD_LOCAL_SEQUENCE)]

    if incremental:
        from repro.cache.incremental import IncrementalExplorer
        from repro.cache.store import ArtifactCache

        store = cache
        if store is None and cache_dir is not None:
            store = ArtifactCache(cache_dir)
        engine = IncrementalExplorer(
            cdfg,
            delays=delays,
            seed=seed,
            reference=reference,
            golden=golden,
            cache=store,
            workers=workers,
        )
        result = ExplorationResult(points=engine.run(global_subsets, local_subsets))
        if store is not None:
            if store.directory is not None:
                store.save()
            result.stats["cache"] = store.stats()
        result.stats.update(
            evaluations=engine.evaluations_computed,
            edges=engine.edges_applied,
        )
        return result

    payloads = [
        (tuple(global_transforms), tuple(local_transforms))
        for global_transforms in global_subsets
        for local_transforms in local_subsets
    ]

    result = ExplorationResult()
    if workers == 0:
        workers = os.cpu_count() or 1
    if workers is not None and workers > 1 and len(payloads) > 1:
        max_workers = min(workers, len(payloads))
        chunksize = max(1, -(-len(payloads) // (max_workers * 2)))
        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_init_point_context,
            initargs=(cdfg, delays, seed, reference, golden),
        ) as pool:
            result.points.extend(pool.map(_evaluate_config, payloads, chunksize=chunksize))
    else:
        _init_point_context(cdfg, delays, seed, reference, golden)
        result.points.extend(map(_evaluate_config, payloads))
    result.stats["evaluations"] = len(payloads)
    return result
