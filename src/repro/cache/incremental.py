"""Shared-prefix incremental exploration over the GT/LT grid.

The per-point path (:func:`repro.explore.evaluate_point`) re-runs the
whole synthesize→extract→optimize→simulate pipeline for every grid
point, so a 64-point sweep applies GT passes 80 times and extracts 64
designs.  This engine exploits three redundancies instead:

1. **Prefix sharing.**  GT subsets are evaluated in canonical order, so
   the grid forms a trie: ``(GT1, GT2, GT3)`` extends ``(GT1, GT2)`` by
   one pass.  Each transform application happens once per trie *edge*
   (31 edges for the default 32-subset grid instead of 80 point-wise
   applications), via the same :class:`~repro.transforms.base.PassManager`
   code path, so the graph produced along a path is representation-
   identical to a single :func:`~repro.transforms.optimize_global` call.
2. **Content addressing.**  Every trie node is fingerprinted
   (:mod:`repro.cache.fingerprint`); evaluations (extract + local
   optimize + simulate) are memoized by ``(content, LT subset, delay
   model, seed, golden)``.  Distinct GT subsets that happen to produce
   identical graphs (GT2 no-ops, for instance) share one evaluation,
   one ``extract_controllers`` result serves both members of the
   ``()``/all-LT pair, and locally-optimized controllers are memoized
   per machine fingerprint.  With an :class:`~repro.cache.store.ArtifactCache`
   the memo persists across runs, making repeated sweeps near-instant.
3. **Cheap fan-out.**  With ``workers`` > 1, only the *missing*
   evaluations are shipped to a process pool; the base CDFG travels
   once per worker (pool initializer), payloads are ``(prefix, lt)``
   tuples, and workers keep their own trie so prefix work is shared
   within each process too.

Bit-identical equivalence with the per-point path is a hard contract
(tested in ``tests/cache/``): conformance stamps, provenance counts,
bottleneck labels and makespans all match, whether results were
computed cold, deduplicated in-process, or served from a warm disk
cache.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.afsm.extract import DistributedDesign, extract_controllers
from repro.cache.fingerprint import (
    fingerprint_content,
    fingerprint_delays,
    fingerprint_machine,
    fingerprint_registers,
)
from repro.cache.store import ArtifactCache, make_key
from repro.cdfg.graph import Cdfg
from repro.channels.model import ChannelPlan, derive_channels
from repro.errors import VerificationError
from repro.local_transforms.scripts import (
    STANDARD_LOCAL_SEQUENCE,
    build_local_sequence,
    optimize_machine,
)
from repro.obs.causal import EventTrace, bottleneck_label, critical_path
from repro.obs.spans import span
from repro.sim.seeding import NOMINAL
from repro.sim.system import simulate_system
from repro.timing.delays import DelayModel
from repro.transforms.scripts import STANDARD_SEQUENCE, apply_transform


@dataclass
class _TrieNode:
    """One evaluated GT prefix: fingerprint + lazily materialized graph."""

    prefix: Tuple[str, ...]
    parent: Optional["_TrieNode"]
    #: content fingerprint of (transformed CDFG, effective channel plan)
    fp: str
    #: GT provenance records accumulated along the path
    provenance: int
    #: first oracle failure message along the path (None = clean)
    failure: Optional[str]
    cdfg: Optional[Cdfg] = None
    plan: Optional[ChannelPlan] = None
    #: extracted (pre-LT) design, shared across the ()/LT pair
    design: Optional[DistributedDesign] = None


class IncrementalExplorer:
    """Evaluate a transform-subset grid with shared-prefix reuse.

    Mirrors :func:`repro.explore.evaluate_point` exactly (including the
    oracle-failure re-run semantics and conformance stamping) while
    sharing every artifact the grid allows.  ``check_edges=False``
    skips the per-edge global oracle — used by worker processes, whose
    conformance verdicts are assembled parent-side from the parent's
    edge records.
    """

    def __init__(
        self,
        cdfg: Cdfg,
        delays: Optional[DelayModel] = None,
        seed=9,
        reference: Optional[Dict[str, float]] = None,
        golden: Optional[Dict[str, float]] = None,
        cache: Optional[ArtifactCache] = None,
        workers: Optional[int] = None,
        check_edges: bool = True,
        fault_injector=None,
        point_timeout: Optional[float] = None,
        retries: int = 2,
        machine_memo: Optional[Dict[str, tuple]] = None,
        design_memo: Optional[Dict[str, DistributedDesign]] = None,
        edge_memo: Optional[Dict[str, dict]] = None,
        edge_scope: Optional[str] = None,
    ):
        self.cdfg = cdfg
        self.delays = delays
        self.seed = seed
        self.reference = reference
        self.golden = golden
        self.cache = cache
        self.workers = workers
        self.fault_injector = fault_injector
        self.point_timeout = point_timeout
        self.retries = retries
        #: a KeyboardInterrupt stopped the sweep (points are partial)
        self.interrupted = False
        #: pool-recovery diagnostics from the last parallel resolve
        self.pool_diagnostics: Optional[dict] = None
        self._delay_fp = fingerprint_delays(delays)
        self._golden_fp = fingerprint_registers(golden)
        self._seed_key = "nominal" if seed is NOMINAL else repr(seed)
        self._nodes: Dict[Tuple[str, ...], _TrieNode] = {}
        #: (fu, machine fp, lt, oracle marker) -> (Controller, provenance,
        #: failure).  May be shared across explorer instances (the shard
        #: runner passes one worker-global dict so contexts that differ
        #: only in delay model or seed reuse each locally-optimized
        #: controller — the keys are content-addressed, so sharing is
        #: sound across any set of contexts)
        self._machine_memo: Dict[str, tuple] = (
            machine_memo if machine_memo is not None else {}
        )
        #: content fp -> extracted (pre-LT) design, optionally shared
        #: across explorer instances the same way
        self._design_memo: Optional[Dict[str, DistributedDesign]] = design_memo
        #: (parent fp, pass, scope, oracle tag) -> trie-edge record,
        #: optionally shared across explorer instances.  ``edge_scope``
        #: names the equivalence class of delay models the records may
        #: be shared across: transform decisions (GT3 included) compare
        #: *sums* of delays, so any uniform scaling of one delay table
        #: preserves every decision, every oracle verdict and every
        #: content fingerprint — the speed-independence argument of the
        #: source paper, pinned by tests/cache/test_shards.py.  The
        #: default scope is this context's exact delay fingerprint,
        #: which is sound unconditionally (it still shares across seeds)
        self._edge_memo: Optional[Dict[str, dict]] = edge_memo
        self._edge_scope = edge_scope if edge_scope is not None else self._delay_fp
        #: eval key -> eval record (run-local; mirrored to the cache)
        self._evals: Dict[str, dict] = {}
        self.evaluations_computed = 0
        self.edges_applied = 0
        self._oracle = None
        self._local_oracle = None
        if golden is not None:
            from repro.verify.flow import (
                compose_global_oracles,
                compose_local_oracles,
                make_flow_global_oracle,
                make_flow_local_oracle,
            )
            from repro.verify.oracles import make_global_oracle, make_local_oracle

            # same composition order as evaluate_point, so the first
            # failure message (and thus the conformance/proof stamps)
            # is bit-identical across both paths
            if check_edges:
                self._oracle = compose_global_oracles(
                    make_global_oracle(delays=delays, deep=False),
                    make_flow_global_oracle(delays=delays),
                )
            self._local_oracle = compose_local_oracles(
                make_local_oracle(), make_flow_local_oracle()
            )

    # ------------------------------------------------------------------
    # grid normalization
    # ------------------------------------------------------------------
    @staticmethod
    def _normalize_gt(enabled: Sequence[str]) -> Tuple[str, ...]:
        unknown = [name for name in enabled if name not in STANDARD_SEQUENCE]
        if unknown:
            raise KeyError(f"unknown transforms: {unknown}")
        return tuple(name for name in STANDARD_SEQUENCE if name in enabled)

    @staticmethod
    def _normalize_lt(enabled: Sequence[str]) -> Tuple[str, ...]:
        unknown = [name for name in enabled if name not in STANDARD_LOCAL_SEQUENCE]
        if unknown:
            raise KeyError(f"unknown local transforms: {unknown}")
        return tuple(name for name in STANDARD_LOCAL_SEQUENCE if name in enabled)

    # ------------------------------------------------------------------
    # the prefix trie
    # ------------------------------------------------------------------
    def _node(self, prefix: Tuple[str, ...]) -> _TrieNode:
        node = self._nodes.get(prefix)
        if node is None:
            node = self._root() if not prefix else self._extend(self._node(prefix[:-1]), prefix[-1])
            self._nodes[prefix] = node
        return node

    def _root(self) -> _TrieNode:
        cdfg = self.cdfg.copy()
        plan = derive_channels(cdfg)
        return _TrieNode(
            prefix=(),
            parent=None,
            fp=fingerprint_content(cdfg, plan),
            provenance=0,
            failure=None,
            cdfg=cdfg,
            plan=plan,
        )

    def _extend(self, parent: _TrieNode, name: str) -> _TrieNode:
        # once an ancestor pass failed its oracle, the per-point path
        # re-runs the remaining script unchecked — mirror that here
        use_oracle = self._oracle is not None and parent.failure is None
        # "f1" marks the flow-proof oracle generation: records written
        # before the flow checker existed carry different failure
        # semantics and must not be replayed
        oracle_tag = "oracle" if use_oracle else "plain"
        key = make_key("gt-edge", "f1", parent.fp, name, self._delay_fp, oracle_tag)
        memo_key = make_key("gt-edge", "f1", parent.fp, name, self._edge_scope, oracle_tag)
        record = self._edge_memo.get(memo_key) if self._edge_memo is not None else None
        if record is None and self.cache is not None:
            record = self.cache.get(key)
        child_cdfg = child_plan = None
        if record is None:
            self._materialize(parent)
            failure = None
            try:
                result = apply_transform(
                    parent.cdfg,
                    name,
                    delays=self.delays,
                    oracle=self._oracle if use_oracle else None,
                )
            except VerificationError as exc:
                # re-apply unchecked so the metrics of every point
                # through this edge are still measured (the oracle
                # never mutates, so the graph is the same)
                failure = str(exc)
                result = apply_transform(parent.cdfg, name, delays=self.delays)
            child_cdfg = result.cdfg
            child_plan = result.plan
            self.edges_applied += 1
            record = {
                "fp": fingerprint_content(child_cdfg, child_plan),
                "provenance": len(result.provenance),
                "failure": failure,
            }
            if self.cache is not None:
                self.cache.put(key, record)
        if self._edge_memo is not None:
            self._edge_memo[memo_key] = record
        return _TrieNode(
            prefix=parent.prefix + (name,),
            parent=parent,
            fp=record["fp"],
            provenance=parent.provenance + record["provenance"],
            failure=parent.failure or record["failure"],
            cdfg=child_cdfg,
            plan=child_plan,
        )

    def _materialize(self, node: _TrieNode) -> None:
        """Ensure ``node.cdfg``/``node.plan`` exist (warm nodes carry
        only fingerprints until an evaluation actually needs the graph)."""
        if node.cdfg is not None:
            return
        self._materialize(node.parent)
        result = apply_transform(node.parent.cdfg, node.prefix[-1], delays=self.delays)
        node.cdfg = result.cdfg
        node.plan = result.plan

    def _design(self, node: _TrieNode) -> DistributedDesign:
        if node.design is None:
            design = (
                self._design_memo.get(node.fp)
                if self._design_memo is not None
                else None
            )
            if design is None:
                self._materialize(node)
                design = extract_controllers(node.cdfg, node.plan)
                if self._design_memo is not None:
                    self._design_memo[node.fp] = design
            node.design = design
        return node.design

    # ------------------------------------------------------------------
    # evaluations
    # ------------------------------------------------------------------
    def _eval_key(self, node: _TrieNode, lt: Tuple[str, ...]) -> str:
        return make_key(
            "eval",
            "f1",  # flow-proof oracle generation (see _extend)
            node.fp,
            "+".join(lt) or "-",
            self._delay_fp,
            self._seed_key,
            self._golden_fp,
            "loracle" if self.golden is not None else "plain",
        )

    def _optimize_controllers(
        self, design: DistributedDesign, lt: Tuple[str, ...]
    ) -> Tuple[DistributedDesign, int, Optional[str]]:
        """Locally optimize ``design``, memoized per machine fingerprint.

        Returns ``(optimized design, provenance count, first failure)``.
        Matches :func:`repro.local_transforms.optimize_local` machine by
        machine — including the oracle-failure semantics: metrics come
        from the unchecked pipeline (the oracle never mutates), and the
        failure of the first failing machine in iteration order is the
        one the per-point path would have raised.
        """
        transforms = build_local_sequence(lt)
        controllers = {}
        provenance = 0
        first_failure: Optional[str] = None
        # the oracle marker keeps memo entries computed with and without
        # the local flow oracle apart — their failure fields differ, and
        # the memo may be shared across explorers with different oracles
        oracle_tag = "loracle" if self._local_oracle is not None else "plain"
        for fu, controller in design.controllers.items():
            mkey = make_key(
                "machine", fu, fingerprint_machine(controller.machine),
                "+".join(lt), oracle_tag,
            )
            cached = self._machine_memo.get(mkey)
            if cached is None:
                failure = None
                try:
                    rebuilt, reports = optimize_machine(
                        fu, controller.machine, transforms, oracle=self._local_oracle
                    )
                except VerificationError as exc:
                    failure = str(exc)
                    rebuilt, reports = optimize_machine(fu, controller.machine, transforms)
                cached = (
                    rebuilt,
                    sum(len(report.provenance) for report in reports),
                    failure,
                )
                self._machine_memo[mkey] = cached
            rebuilt, machine_provenance, failure = cached
            controllers[fu] = rebuilt
            provenance += machine_provenance
            if first_failure is None and failure is not None:
                first_failure = failure
        optimized = DistributedDesign(
            cdfg=design.cdfg,
            plan=design.plan,
            phases=design.phases,
            controllers=controllers,
        )
        return optimized, provenance, first_failure

    def _compute_eval(self, node: _TrieNode, lt: Tuple[str, ...]) -> dict:
        design = self._design(node)
        lt_provenance = 0
        local_failure: Optional[str] = None
        if lt:
            design, lt_provenance, local_failure = self._optimize_controllers(design, lt)
        result = simulate_system(
            design,
            delays=self.delays,
            seed=self.seed,
            strict=(self.golden is None),
            trace=EventTrace(),
        )
        segments = critical_path(result.trace)
        bottleneck = bottleneck_label(segments) if segments else ""
        sim_conformance = "unchecked"
        if self.golden is not None:
            sim_conformance = "conformant"
            if result.violations:
                sim_conformance = f"failed: {result.violations[0]}"
            elif result.hazards:
                sim_conformance = f"failed: hazard {result.hazards[0]}"
            else:
                for register, value in self.golden.items():
                    got = result.registers.get(register)
                    if got != value:
                        sim_conformance = (
                            f"failed: register {register} = {got!r}, golden says {value!r}"
                        )
                        break
        return {
            "status": "ok",
            "channels": design.plan.count(include_env=False),
            "states": sum(c.state_count for c in design.controllers.values()),
            "transitions": sum(c.transition_count for c in design.controllers.values()),
            "makespan": result.end_time,
            "bottleneck": bottleneck,
            "lt_provenance": lt_provenance,
            "local_failure": local_failure,
            "sim_conformance": sim_conformance,
            "registers": dict(result.registers),
            # controller count, so the parent can reconstruct the
            # per-point path's flow-certificate tally (one certificate
            # per GT pass plus one per LT pass per machine)
            "machines": len(design.controllers),
        }

    def _guarded_eval(self, node, lt: Tuple[str, ...]) -> dict:
        """Per-point guard: any exception becomes a ``failed`` record.

        ``node`` may be a prefix tuple (worker side), resolved inside
        the guard so transform failures along the trie path fail only
        the points that need that path.  Failed records are never
        written to the artifact cache — a warm sweep must re-attempt,
        not replay, a crash.
        """
        from repro.resilience.injection import point_deadline

        try:
            if isinstance(node, tuple):
                node = self._node(node)
            if self.fault_injector is not None:
                self.fault_injector(node.prefix, lt)
            with point_deadline(self.point_timeout):
                return self._compute_eval(node, lt)
        except (KeyboardInterrupt, AssertionError):
            raise
        except Exception as exc:
            return {"status": "failed", "error": f"{type(exc).__name__}: {exc}"}

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def _assemble(self, gt, lt, node: _TrieNode, record: dict):
        return assemble_point(
            gt,
            lt,
            record,
            gt_len=len(node.prefix),
            gt_provenance=node.provenance,
            gt_failure=node.failure,
            lt_len=len(self._normalize_lt(lt)),
            golden_checked=self.golden is not None,
            reference=self.reference,
        )

    def evaluate_prefix(self, gt: Sequence[str], lt: Sequence[str]) -> dict:
        """Evaluate one ``(gt, lt)`` point and return a self-contained record.

        The shard-runner entry point: unlike :meth:`run`, the result
        carries the trie-path facts (``gt_len``, ``gt_provenance``,
        ``gt_failure``) inline, so a *different* process can assemble
        the final :class:`~repro.explore.DesignPoint` with
        :func:`assemble_point` without ever touching a trie.  Evaluation
        is still deduplicated by content key within this explorer.
        """
        prefix = self._normalize_gt(gt)
        lt_norm = self._normalize_lt(lt)
        # raise-mode injectors target grid points by prefix; decide the
        # match before the content-keyed memo can blur it (see run())
        if (
            self.fault_injector is not None
            and getattr(self.fault_injector, "mode", None) == "raise"
            and getattr(self.fault_injector, "matches", lambda gt: False)(prefix)
        ):
            try:
                self.fault_injector(prefix, lt_norm)
                error = "injected fault"
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
            return {"status": "failed", "error": error}
        try:
            node = self._node(prefix)
        except (KeyboardInterrupt, AssertionError):
            raise
        except Exception as exc:
            return {"status": "failed", "error": f"{type(exc).__name__}: {exc}"}
        key = self._eval_key(node, lt_norm)
        record = self._evals.get(key)
        if record is None:
            record = self._guarded_eval(node, lt_norm)
            if record.get("status", "ok") == "ok":
                # failed records are never memoized — re-attempt, not
                # replay, a crash (same contract as the cache mirror)
                self._evals[key] = record
            self.evaluations_computed += 1
        return {
            **record,
            "gt_len": len(node.prefix),
            "gt_provenance": node.provenance,
            "gt_failure": node.failure,
            "lt_len": len(lt_norm),
        }

    # ------------------------------------------------------------------
    # drivers
    # ------------------------------------------------------------------
    def run(
        self,
        global_subsets: Sequence[Sequence[str]],
        local_subsets: Sequence[Sequence[str]],
    ) -> List:
        with span("explore/incremental", workload=self.cdfg.name) as section:
            tasks = []
            for gt in global_subsets:
                prefix = self._normalize_gt(gt)
                # a raise-mode injector is applied parent-side, per grid
                # point, so exactly the targeted points fail (worker-side
                # evaluations are deduplicated by content and would blur
                # that); exit-mode injectors must ride into the workers
                # they are meant to kill
                if (
                    self.fault_injector is not None
                    and getattr(self.fault_injector, "mode", None) == "raise"
                    and getattr(self.fault_injector, "matches", lambda gt: False)(prefix)
                ):
                    try:
                        self.fault_injector(prefix, ())
                        error = "injected fault"
                    except Exception as exc:
                        error = f"{type(exc).__name__}: {exc}"
                    for lt in local_subsets:
                        tasks.append((tuple(gt), tuple(lt), None, error, None))
                    continue
                try:
                    node = self._node(prefix)
                except KeyboardInterrupt:
                    raise
                except Exception as exc:
                    # a transform crash along this trie path fails every
                    # point that needs the path, nothing else
                    error = f"{type(exc).__name__}: {exc}"
                    for lt in local_subsets:
                        tasks.append((tuple(gt), tuple(lt), None, error, None))
                    continue
                for lt in local_subsets:
                    lt_norm = self._normalize_lt(lt)
                    tasks.append((tuple(gt), tuple(lt), node, lt_norm, self._eval_key(node, lt_norm)))

            missing = []
            claimed = set()
            for __, __, node, lt_norm, key in tasks:
                if node is None or key in self._evals or key in claimed:
                    continue
                record = self.cache.get(key) if self.cache is not None else None
                if record is not None:
                    with span("explore/cache-hit", fingerprint=node.fp[:12], lt="+".join(lt_norm) or "-"):
                        pass
                    self._evals[key] = record
                else:
                    claimed.add(key)
                    missing.append((node, lt_norm, key))

            self._resolve(missing)

            points = []
            for gt, lt, node, lt_norm, key in tasks:
                if node is None:
                    from repro.explore import failed_point

                    points.append(failed_point(gt, lt, lt_norm))
                    continue
                record = self._evals.get(key)
                if record is None:
                    continue  # interrupted before this evaluation ran
                points.append(self._assemble(gt, lt, node, record))
            section.attributes.update(
                points=len(points),
                evaluations=len(claimed),
                shared=len(tasks) - len(claimed),
                edges=self.edges_applied,
            )
        return points

    def _resolve(self, missing) -> None:
        """Compute the missing evaluations, serially or on a pool.

        Both paths are fault-tolerant: per-point failures come back as
        ``failed`` records (never cached), dead workers are retried and
        degraded to serial, and an interrupt keeps what finished.
        """
        from repro.resilience.pool import resilient_map, serial_map

        workers = self.workers
        if workers == 0:
            workers = os.cpu_count() or 1
        if workers is not None and workers > 1 and len(missing) > 1:
            payloads = [(node.prefix, lt) for node, lt, __ in missing]
            records, diagnostics = resilient_map(
                _evaluate_shared,
                payloads,
                max_workers=min(workers, len(missing)),
                initializer=_init_worker,
                initargs=(
                    self.cdfg,
                    self.delays,
                    self.seed,
                    self.golden,
                    self.fault_injector,
                    self.point_timeout,
                ),
                retries=self.retries,
            )
        else:
            records, diagnostics = serial_map(
                lambda item: self._guarded_eval(item[0], item[1]),
                [(node, lt) for node, lt, __ in missing],
            )
        self.interrupted = self.interrupted or diagnostics.interrupted
        if diagnostics.broken_pools or diagnostics.degraded_serial:
            self.pool_diagnostics = diagnostics.to_dict()
        for (node, lt, key), record in zip(missing, records):
            if record is None:
                continue  # interrupted before this evaluation ran
            self.evaluations_computed += 1
            self._evals[key] = record
            if self.cache is not None and record.get("status", "ok") == "ok":
                self.cache.put(key, record)


def assemble_point(
    gt,
    lt,
    record: dict,
    *,
    gt_len: int,
    gt_provenance: int,
    gt_failure: Optional[str],
    lt_len: int,
    golden_checked: bool,
    reference: Optional[Dict[str, float]] = None,
):
    """Build a :class:`~repro.explore.DesignPoint` from an eval record.

    Shared by the in-process trie (:meth:`IncrementalExplorer._assemble`)
    and the shard runner, whose records come back from other processes
    via :meth:`IncrementalExplorer.evaluate_prefix` with the trie-path
    facts inline — the stamping logic must be one function or the two
    paths could drift apart on conformance/proof semantics.
    """
    from repro.explore import DesignPoint, failed_point, proof_stamp

    if record.get("status", "ok") != "ok":
        return failed_point(gt, lt, str(record.get("error", "unknown failure")))
    if not golden_checked:
        conformance = "unchecked"
    elif gt_failure is not None:
        conformance = f"failed: {gt_failure}"
    elif record["local_failure"]:
        conformance = f"failed: {record['local_failure']}"
    else:
        conformance = record["sim_conformance"]
    certificates = gt_len + lt_len * int(record.get("machines", 0))
    proved, proof = proof_stamp(conformance, certificates)
    if reference is not None:
        registers = record["registers"]
        for register, value in reference.items():
            if registers.get(register) != value:
                raise AssertionError(
                    f"configuration {gt}/{lt} "
                    f"computed {register}={registers.get(register)!r}, "
                    f"expected {value!r}"
                )
    return DesignPoint(
        global_transforms=tuple(gt),
        local_transforms=tuple(lt),
        channels=record["channels"],
        total_states=record["states"],
        total_transitions=record["transitions"],
        makespan=record["makespan"],
        conformant=conformance in ("conformant", "unchecked"),
        conformance=conformance,
        proved=proved,
        proof=proof,
        provenance_records=gt_provenance + record["lt_provenance"],
        bottleneck=record["bottleneck"],
    )


# ----------------------------------------------------------------------
# worker-side state: the base CDFG ships once per process (initializer),
# payloads are (prefix, lt) tuples, and the worker's own trie shares
# prefix work across every payload it receives
# ----------------------------------------------------------------------
_WORKER: Optional[IncrementalExplorer] = None


def _init_worker(cdfg: Cdfg, delays, seed, golden, injector=None, timeout=None) -> None:
    global _WORKER
    _WORKER = IncrementalExplorer(
        cdfg,
        delays=delays,
        seed=seed,
        golden=golden,
        cache=None,
        workers=None,
        check_edges=False,
        fault_injector=injector,
        point_timeout=timeout,
    )


def _evaluate_shared(payload: Tuple[Tuple[str, ...], Tuple[str, ...]]) -> dict:
    prefix, lt = payload
    return _WORKER._guarded_eval(prefix, lt)
