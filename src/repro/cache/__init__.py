"""Content-addressed synthesis cache and incremental exploration.

Three cooperating layers (see DESIGN.md §12):

- :mod:`repro.cache.fingerprint` — stable, content-addressed
  fingerprints for CDFGs, channel plans, burst-mode machines, delay
  models and register files;
- :mod:`repro.cache.store` — :class:`ArtifactCache`, an in-process
  memo with an optional on-disk JSON mirror under ``.repro-cache/``,
  so repeated CLI runs, benchmarks and fuzz campaigns start warm;
- :mod:`repro.cache.incremental` — the shared-prefix exploration
  engine: the GT-subset grid is organized as a trie so every transform
  application happens once per trie *edge* instead of once per point,
  one ``extract_controllers`` result is shared across the ``()``/LT
  pair of a GT subset, and local optimization is memoized per machine.
"""

from repro.cache.fingerprint import (
    fingerprint_cdfg,
    fingerprint_content,
    fingerprint_delays,
    fingerprint_machine,
    fingerprint_plan,
    fingerprint_registers,
    stable_digest,
)
from repro.cache.store import ArtifactCache, DEFAULT_CACHE_DIR
from repro.cache.incremental import IncrementalExplorer

__all__ = [
    "ArtifactCache",
    "DEFAULT_CACHE_DIR",
    "IncrementalExplorer",
    "fingerprint_cdfg",
    "fingerprint_content",
    "fingerprint_delays",
    "fingerprint_machine",
    "fingerprint_plan",
    "fingerprint_registers",
    "stable_digest",
]
