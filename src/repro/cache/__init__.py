"""Content-addressed synthesis cache and incremental exploration.

Three cooperating layers (see DESIGN.md §12):

- :mod:`repro.cache.fingerprint` — stable, content-addressed
  fingerprints for CDFGs, channel plans, burst-mode machines, delay
  models and register files;
- :mod:`repro.cache.store` — :class:`ArtifactCache`, an in-process
  memo with an optional on-disk JSON mirror under ``.repro-cache/``,
  so repeated CLI runs, benchmarks and fuzz campaigns start warm;
- :mod:`repro.cache.incremental` — the shared-prefix exploration
  engine: the GT-subset grid is organized as a trie so every transform
  application happens once per trie *edge* instead of once per point,
  one ``extract_controllers`` result is shared across the ``()``/LT
  pair of a GT subset, and local optimization is memoized per machine.

Parameter-space scale adds four more (DESIGN.md §17):

- :mod:`repro.cache.space` — :class:`ParameterSpace`: scenarios
  (workloads, frontend kernels, seeded random CDFGs) × delay variants ×
  seeds × GT/LT subsets, content-addressed per context and point;
- :mod:`repro.cache.shards` — the work-stealing shard scheduler
  (:func:`explore_space`), streaming every completed point;
- :mod:`repro.cache.journal` — the append-only result journal that
  makes killed runs resume bit-identically;
- :mod:`repro.cache.frontier` — the incremental Pareto skyline.
"""

from repro.cache.fingerprint import (
    fingerprint_cdfg,
    fingerprint_content,
    fingerprint_delays,
    fingerprint_machine,
    fingerprint_plan,
    fingerprint_registers,
    stable_digest,
)
from repro.cache.store import ArtifactCache, DEFAULT_CACHE_DIR
from repro.cache.incremental import IncrementalExplorer
from repro.cache.frontier import StreamingFrontier
from repro.cache.journal import ResultJournal
from repro.cache.space import DelayVariant, ParameterSpace, Scenario, bench_space
from repro.cache.shards import ShardRunner, SpaceResult, explore_space

__all__ = [
    "ArtifactCache",
    "DEFAULT_CACHE_DIR",
    "DelayVariant",
    "IncrementalExplorer",
    "ParameterSpace",
    "ResultJournal",
    "Scenario",
    "ShardRunner",
    "SpaceResult",
    "StreamingFrontier",
    "bench_space",
    "explore_space",
    "fingerprint_cdfg",
    "fingerprint_content",
    "fingerprint_delays",
    "fingerprint_machine",
    "fingerprint_plan",
    "fingerprint_registers",
    "stable_digest",
]
