"""Work-stealing shard scheduler for parameter-space exploration.

One :class:`~repro.cache.incremental.IncrementalExplorer` sweeps one
context (CDFG × delay model × seed) with one process pool.  At
parameter-space scale (:mod:`repro.cache.space`: many contexts, 10k+
points) that shape leaves throughput on the table twice: contexts run
strictly one after another, and within a context the single pool
serializes behind its slowest point.  The shard runner fixes both:

- **partitioning** — each context's GT grid is split into shared-prefix
  subtrees (all subsets starting with the same first pass live in one
  trie subtree), chunked into work units of a few points; units keep
  canonical order, and the trie inside each worker still shares prefix
  work across the unit exactly like the single-pool engine;
- **shards** — ``--shards N`` independent schedulers, each owning its
  own process pool (:class:`concurrent.futures.ProcessPoolExecutor`
  with the crash-recovery semantics of
  :mod:`repro.resilience.pool`: broken pools are rebuilt with backoff,
  then degraded to in-thread evaluation).  Units are dealt to shards by
  *scenario* affinity, so every context sharing a CDFG (the delay
  variants and seeds of one scenario) keeps hitting one shard's memos.
  The effective fleet is clamped to the host's available CPUs: shards
  beyond hardware parallelism cannot overlap in time, so each extra
  worker process would only re-pay cold synthesis memos — strictly
  more total work for zero latency win.  Both counts are reported
  (``shards`` requested, ``effective_shards`` used);
- **work stealing** — a shard whose deque drains steals from the
  most-loaded shard, *memo-aware*: units of contexts the thief has
  already dispatched are preferred (its workers' memos are warm for
  them), and when only cold contexts remain the thief adopts half of
  the victim's tail-context run at once, so the one-off cold-memo
  cost amortizes over several units.  Stragglers cannot idle the
  fleet, and steals no longer shred memo locality;
- **cross-context memo sharing** — worker processes keep per-process
  explorer caches plus *worker-global* design/machine/edge memos keyed
  by content fingerprints (`IncrementalExplorer(machine_memo=...,
  design_memo=..., edge_memo=...)`).  Contexts that differ only in
  delay distribution or seed synthesize identical graphs under uniform
  scalings (transform decisions compare *sums* of delays, so scaling
  preserves GT3 choices, oracle verdicts and content fingerprints —
  the paper's speed-independence argument), so transform application,
  edge re-verification, extraction and LT optimization are each paid
  once per *content*, not once per context; only simulation, which is
  genuinely delay-dependent, runs per context.  This is the dominant
  cost of multi-distribution sweeps;
- **streaming** — every completed evaluation is appended to the run
  directory's :class:`~repro.cache.journal.ResultJournal` before the
  point is reported, and offered to a
  :class:`~repro.cache.frontier.StreamingFrontier`; a killed run
  resumes from the journal bit-identically (records are deterministic,
  and final reports are assembled in canonical space order regardless
  of completion order).

Everything the single-pool engine guarantees still holds per point:
records come from the same ``evaluate_prefix`` path, with the same
oracle composition, so conformance/proof stamps are bit-identical.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.cache.frontier import StreamingFrontier
from repro.cache.incremental import IncrementalExplorer, assemble_point
from repro.cache.journal import ResultJournal
from repro.cache.space import ParameterSpace, SpaceContext
from repro.explore import DesignPoint, ExplorationResult
from repro.obs.spans import span

#: grid points per work unit (GT subsets × LT subsets); units are the
#: stealing granularity — small enough to balance, large enough that
#: prefix sharing inside the unit still pays
UNIT_POINTS = 16

#: worker-side explorer cache bound (contexts alive per process)
WORKER_CONTEXT_CAP = 8


@dataclass
class WorkUnit:
    """A chunk of one context's grid: (gt, lt) pairs in canonical order."""

    context: SpaceContext
    items: List[Tuple[Tuple[str, ...], Tuple[str, ...]]]
    #: keys aligned with ``items`` (computed once, parent-side)
    keys: List[str]


@dataclass
class SpaceResult:
    """A (possibly partial) parameter-space sweep, canonically ordered."""

    result: ExplorationResult
    #: one JSON document per assembled point: the ``DesignPoint`` dict
    #: plus the context labels (scenario / delay_model / sim_seed)
    documents: List[dict] = field(default_factory=list)
    stats: Dict[str, object] = field(default_factory=dict)
    #: False when the run was interrupted/stopped with points missing
    complete: bool = True

    @property
    def points(self) -> List[DesignPoint]:
        return self.result.points

    def pareto_points(self) -> List[DesignPoint]:
        return self.result.pareto_points()

    def failed_points(self) -> List[DesignPoint]:
        return self.result.failed_points()

    def best(self, objective: str) -> DesignPoint:
        return self.result.best(objective)


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
# Per-process explorer cache (bounded LRU) plus unbounded content-keyed
# memos shared across every context the process ever sees.  The memos
# out-live explorer eviction on purpose: two contexts with disjoint
# lifetimes still share their synthesis work.
_CTX_EXPLORERS: "OrderedDict[str, IncrementalExplorer]" = OrderedDict()
_DESIGN_MEMO: Dict[str, object] = {}
_MACHINE_MEMO: Dict[str, tuple] = {}
_EDGE_MEMO: Dict[str, dict] = {}


def _context_explorer(payload) -> IncrementalExplorer:
    from repro.sim.seeding import NOMINAL

    ctx_key, cdfg, delays, seed_spec, golden, injector, timeout, edge_scope = payload
    explorer = _CTX_EXPLORERS.get(ctx_key)
    if explorer is None:
        explorer = IncrementalExplorer(
            cdfg,
            delays=delays,
            seed=NOMINAL if seed_spec == "nominal" else seed_spec,
            golden=golden,
            cache=None,
            workers=None,
            check_edges=True,
            fault_injector=injector,
            point_timeout=timeout,
            machine_memo=_MACHINE_MEMO,
            design_memo=_DESIGN_MEMO,
            edge_memo=_EDGE_MEMO,
            edge_scope=edge_scope,
        )
        _CTX_EXPLORERS[ctx_key] = explorer
        while len(_CTX_EXPLORERS) > WORKER_CONTEXT_CAP:
            _CTX_EXPLORERS.popitem(last=False)
    else:
        _CTX_EXPLORERS.move_to_end(ctx_key)
    return explorer


def _evaluate_unit(payload) -> List[dict]:
    """Worker entry: evaluate one unit's points, in order.

    Also used in-thread by the parent as the serial-degradation path,
    so the two paths cannot drift.
    """
    context_payload, items = payload
    explorer = _context_explorer(context_payload)
    return [explorer.evaluate_prefix(gt, lt) for gt, lt in items]


# ----------------------------------------------------------------------
# the runner
# ----------------------------------------------------------------------
class ShardRunner:
    """Drive a :class:`ParameterSpace` across work-stealing shards.

    ``run_dir`` enables the journal (and thus ``--resume``); ``live``
    is called as ``live(completed, total, frontier, point)`` after each
    streamed point.  ``stop_after`` deterministically stops the run
    after that many newly-completed points — the hook the resume tests
    use to fabricate killed runs without racing a signal.
    """

    def __init__(
        self,
        space: ParameterSpace,
        shards: int = 2,
        workers_per_shard: int = 1,
        run_dir: Optional[Union[str, Path]] = None,
        resume: bool = False,
        live: Optional[Callable] = None,
        stop_after: Optional[int] = None,
        retries: int = 2,
        fault_injector=None,
        point_timeout: Optional[float] = None,
        parallelism: Optional[int] = None,
    ):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.space = space
        self.shards = shards
        # Shards beyond the host's parallelism never help: their pools
        # just timeslice one another while each worker process pays its
        # own cold synthesis memos — strictly more total work for zero
        # latency win.  Clamp the *effective* fleet to the CPUs we can
        # actually run on (``parallelism`` overrides detection — tests
        # use it to exercise multi-shard scheduling on small hosts);
        # the requested count is still reported in the run stats.
        if parallelism is None:
            try:
                parallelism = len(os.sched_getaffinity(0))
            except AttributeError:  # non-Linux
                parallelism = os.cpu_count() or 1
        self.effective_shards = max(1, min(shards, parallelism))
        self.workers_per_shard = max(1, workers_per_shard)
        self.run_dir = Path(run_dir) if run_dir is not None else None
        self.live = live
        self.stop_after = stop_after
        self.retries = retries
        self.fault_injector = fault_injector
        self.point_timeout = point_timeout

        self.frontier = StreamingFrontier()
        self._records: Dict[str, dict] = {}
        self._resumed = 0
        if self.run_dir is not None and resume:
            self._records = ResultJournal(self.run_dir).load()
            self._resumed = len(self._records)

        self._lock = threading.Lock()  # streaming state (records/frontier)
        self._queue_lock = threading.Lock()  # deques + steal accounting
        self._stop = threading.Event()
        self._completed = 0
        self._stolen = 0
        #: per-shard scenario indices already dispatched — the steal
        #: policy prefers work these memos are warm for.  Warmth is
        #: scenario-level, not context-level: the worker memos are
        #: content-keyed, so having run *any* delay variant or seed of
        #: a scenario warms every other one
        self._seen: List[set] = [set() for _ in range(self.effective_shards)]
        self._broken_pools = 0
        self._degraded = 0
        self._interrupted = False
        self._shard_points = [0] * self.effective_shards
        self._shard_errors: List[str] = []

    # ------------------------------------------------------------------
    # partitioning
    # ------------------------------------------------------------------
    def _build_units(self, contexts: Sequence[SpaceContext]) -> List[deque]:
        """Deal shared-prefix chunks to shards by context affinity."""
        queues: List[deque] = [deque() for _ in range(self.effective_shards)]
        for context in contexts:
            subtrees: "OrderedDict[str, list]" = OrderedDict()
            for gt in self.space.gt_subsets:
                subtrees.setdefault(gt[0] if gt else "", []).append(tuple(gt))
            # affinity by *scenario*, not context: the contexts that
            # share synthesis content (same CDFG under different delay
            # variants / seeds) must land in the same shard's worker
            # processes for the worker-global memos to pay
            shard = context.scenario_index % self.effective_shards
            for subsets in subtrees.values():
                items: List[Tuple[Tuple[str, ...], Tuple[str, ...]]] = []
                keys: List[str] = []
                for gt in subsets:
                    for lt in self.space.lt_subsets:
                        key = self.space.point_key(context, gt, tuple(lt))
                        if key in self._records:
                            continue  # resumed: already durable
                        items.append((gt, tuple(lt)))
                        keys.append(key)
                for start in range(0, len(items), UNIT_POINTS):
                    queues[shard].append(
                        WorkUnit(
                            context=context,
                            items=items[start : start + UNIT_POINTS],
                            keys=keys[start : start + UNIT_POINTS],
                        )
                    )
        return queues

    def _next_unit(self, shard: int, queues: List[deque]) -> Optional[WorkUnit]:
        """Own head first, then memo-aware stealing.

        A steal is never free here: the thief's worker processes hold
        cold memos for the stolen context, so its first stolen unit
        re-pays synthesis work the victim already amortized.  The
        policy therefore (1) prefers stealing a unit of a context this
        shard has *already dispatched* — its memos are warm, the steal
        costs nothing extra — scanning victims most-loaded first, from
        the tail (the frontier of the victim's remaining span); and
        (2) when only cold contexts are left, adopts the tail context
        of the most-loaded victim *half-run at a time*: the contiguous
        tail run of units sharing that context is split and the far
        half moves to the thief's own queue, so the one-off cold cost
        amortizes over several units instead of one.
        """
        with self._queue_lock:
            if queues[shard]:
                unit = queues[shard].popleft()
                self._seen[shard].add(unit.context.scenario_index)
                return unit
            # (1) warm steal: any unit of a scenario this shard knows
            for victim in sorted(
                (s for s in range(self.effective_shards) if s != shard),
                key=lambda s: -len(queues[s]),
            ):
                queue = queues[victim]
                for index in range(len(queue) - 1, -1, -1):
                    if queue[index].context.scenario_index in self._seen[shard]:
                        unit = queue[index]
                        del queue[index]
                        self._stolen += 1
                        return unit
            # (2) cold adoption: take half of the tail context's run
            victim = max(range(self.effective_shards), key=lambda s: len(queues[s]))
            queue = queues[victim]
            if queue:
                tail_key = queue[-1].context.key
                run = 0
                for index in range(len(queue) - 1, -1, -1):
                    if queue[index].context.key != tail_key:
                        break
                    run += 1
                taken = [queue.pop() for __ in range((run + 1) // 2)]
                taken.reverse()  # keep canonical unit order
                self._stolen += len(taken)
                self._seen[shard].add(taken[0].context.scenario_index)
                queues[shard].extend(taken[1:])
                return taken[0]
        return None

    # ------------------------------------------------------------------
    # shard loop
    # ------------------------------------------------------------------
    @staticmethod
    def _context_payload(context: SpaceContext, injector, timeout):
        return (
            context.key,
            context.cdfg,
            context.delays,
            context.seed_spec,
            context.golden,
            injector,
            timeout,
            context.edge_scope,
        )

    def _run_shard(self, shard: int, queues: List[deque], journal: ResultJournal) -> None:
        pool: Optional[ProcessPoolExecutor] = None
        try:
            pool = ProcessPoolExecutor(max_workers=self.workers_per_shard)
            while not self._stop.is_set():
                unit = self._next_unit(shard, queues)
                if unit is None:
                    break
                records, pool = self._dispatch(unit, pool)
                if records is None:
                    break  # stopped mid-unit
                self._stream(shard, unit, records, journal)
        except Exception as exc:  # a dead shard must not fail silently
            with self._lock:
                self._shard_errors.append(f"shard {shard}: {type(exc).__name__}: {exc}")
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)

    def _dispatch(self, unit: WorkUnit, pool) -> Tuple[Optional[List[dict]], object]:
        """Run one unit on the shard's pool, with crash recovery.

        Mirrors :func:`repro.resilience.pool.resilient_map`: a broken
        pool is rebuilt and the unit retried with backoff up to
        ``retries`` times, then the unit degrades to in-thread
        evaluation (which cannot lose a worker).  Returns
        ``(records | None-if-stopped, live pool)``.
        """
        payload = (
            self._context_payload(unit.context, self.fault_injector, self.point_timeout),
            unit.items,
        )
        for attempt in range(self.retries + 1):
            try:
                future = pool.submit(_evaluate_unit, payload)
                while True:
                    try:
                        return future.result(timeout=0.2), pool
                    except FutureTimeout:
                        if self._stop.is_set():
                            future.cancel()
                            return None, pool
            except BrokenProcessPool:
                with self._lock:
                    self._broken_pools += 1
                pool.shutdown(wait=False, cancel_futures=True)
                if attempt < self.retries:
                    time.sleep(0.05 * (2**attempt))
                pool = ProcessPoolExecutor(max_workers=self.workers_per_shard)
        # degraded: evaluate in-thread (single-threaded per runner lock —
        # correctness over speed once the pool has died repeatedly)
        with self._lock:
            self._degraded += 1
        return _evaluate_unit(payload), pool

    def _stream(
        self, shard: int, unit: WorkUnit, records: List[dict], journal: ResultJournal
    ) -> None:
        for (gt, lt), key, record in zip(unit.items, unit.keys, records):
            with self._lock:
                if key in self._records:
                    continue  # a steal/retry raced us; first result wins
                self._records[key] = record
                journal.append(key, record)
                point = _assemble_record(
                    gt, lt, record, golden_checked=self.space.verify
                )
                self.frontier.add(point)
                self._completed += 1
                self._shard_points[shard] += 1
                completed = self._completed + self._resumed
                if self.live is not None:
                    self.live(completed, len(self.space), self.frontier, point)
                if self.stop_after is not None and self._completed >= self.stop_after:
                    self._stop.set()
            if self._stop.is_set() and (
                self.stop_after is not None and self._completed >= self.stop_after
            ):
                return

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------
    def run(self) -> SpaceResult:
        with span(
            "explore/shards", shards=self.shards, points=len(self.space)
        ) as section:
            started = time.perf_counter()
            contexts = list(self.space.contexts())
            queues = self._build_units(contexts)
            journals = [
                ResultJournal(self.run_dir, shard=s) if self.run_dir is not None
                else _NullJournal()
                for s in range(self.effective_shards)
            ]
            threads = [
                threading.Thread(
                    target=self._run_shard,
                    args=(s, queues, journals[s]),
                    name=f"shard-{s}",
                    daemon=True,
                )
                for s in range(self.effective_shards)
            ]
            try:
                for thread in threads:
                    thread.start()
                for thread in threads:
                    while thread.is_alive():
                        thread.join(timeout=0.2)
            except KeyboardInterrupt:
                self._interrupted = True
                self._stop.set()
                for thread in threads:
                    thread.join(timeout=5.0)
            finally:
                for journal in journals:
                    journal.close()
            wall = time.perf_counter() - started
            result = self._assemble(contexts)
            stopped = self._interrupted or (
                self.stop_after is not None and self._completed >= self.stop_after
            )
            result.complete = len(result.points) == len(self.space)
            if result.complete and self.run_dir is not None and not stopped:
                ResultJournal(self.run_dir).compact()
            result.stats.update(
                shards=self.shards,
                effective_shards=self.effective_shards,
                workers_per_shard=self.workers_per_shard,
                contexts=len(contexts),
                total_points=len(self.space),
                completed_points=self._completed,
                resumed_points=self._resumed,
                stolen_units=self._stolen,
                shard_points=list(self._shard_points),
                broken_pools=self._broken_pools,
                degraded_units=self._degraded,
                frontier_size=len(self.frontier),
                wall_time=wall,
            )
            if self._shard_errors:
                result.stats["shard_errors"] = list(self._shard_errors)
            if self._interrupted:
                result.stats["interrupted"] = True
            if stopped and not self._interrupted:
                result.stats["stopped_early"] = True
            section.attributes.update(
                completed=self._completed, stolen=self._stolen
            )
        return result

    def _assemble(self, contexts: Sequence[SpaceContext]) -> SpaceResult:
        """Canonical-order assembly: completion order never leaks into
        the report, which is what makes resumed runs byte-identical."""
        points: List[DesignPoint] = []
        documents: List[dict] = []
        for context in contexts:
            labels = context.labels()
            for gt in self.space.gt_subsets:
                for lt in self.space.lt_subsets:
                    record = self._records.get(
                        self.space.point_key(context, gt, tuple(lt))
                    )
                    if record is None:
                        continue  # interrupted before this point landed
                    point = _assemble_record(
                        gt, tuple(lt), record, golden_checked=self.space.verify
                    )
                    points.append(point)
                    documents.append({**point.to_dict(), **labels})
        return SpaceResult(result=ExplorationResult(points=points), documents=documents)


class _NullJournal:
    """Journal stand-in for run_dir-less (in-memory) runs."""

    skipped_lines = 0

    def append(self, key: str, record: dict) -> None:
        pass

    def close(self) -> None:
        pass


def _assemble_record(gt, lt, record: dict, *, golden_checked: bool) -> DesignPoint:
    return assemble_point(
        gt,
        lt,
        record,
        gt_len=int(record.get("gt_len", 0)),
        gt_provenance=int(record.get("gt_provenance", 0)),
        gt_failure=record.get("gt_failure"),
        lt_len=int(record.get("lt_len", 0)),
        golden_checked=golden_checked,
    )


def explore_space(
    space: ParameterSpace,
    shards: int = 2,
    workers_per_shard: int = 1,
    run_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    live: Optional[Callable] = None,
    stop_after: Optional[int] = None,
    retries: int = 2,
    fault_injector=None,
    point_timeout: Optional[float] = None,
    parallelism: Optional[int] = None,
) -> SpaceResult:
    """One-call front door: build a :class:`ShardRunner` and run it."""
    return ShardRunner(
        space,
        shards=shards,
        workers_per_shard=workers_per_shard,
        run_dir=run_dir,
        resume=resume,
        live=live,
        stop_after=stop_after,
        retries=retries,
        fault_injector=fault_injector,
        point_timeout=point_timeout,
        parallelism=parallelism,
    ).run()
