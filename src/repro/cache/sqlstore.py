"""SQLite-backed artifact store, safe for many concurrent writers.

The JSON mirror (:class:`~repro.cache.store.ArtifactCache`) is a
whole-file snapshot: every ``save()`` rewrites the world under an
advisory lock, so N concurrent writers pay N full-file rewrites and a
lock convoy.  That is fine for one process and a handful of shards; a
job server with dozens of request handlers needs row-granular writes.
:class:`SqliteArtifactCache` keeps the exact ``ArtifactCache``
interface (in-process ``memory`` dict, ``load``/``save``/``get``/
``put``, hit/miss counters) but persists through SQLite in WAL mode:

- **Concurrent writers**: WAL allows one writer and many readers at a
  time without blocking each other; writers serialize on the internal
  SQLite lock with a generous ``busy_timeout`` instead of clobbering
  whole files.  ``save()`` upserts only this process's records, so the
  on-disk union converges exactly like merge-on-save did — keys are
  content-addressed, colliding records are identical.
- **Quarantine on corruption**: a database file that SQLite refuses to
  open (torn header, scribbled pages) is renamed to
  ``<name>.corrupt-<timestamp>`` — same semantics, same warning shape
  as the JSON mirror — and the run proceeds cold.  A *row* whose
  record no longer parses as JSON is deleted and counted
  (:attr:`quarantined_rows`) instead of poisoning every future load.
- **Format versioning**: a ``meta`` table carries the format version;
  a mismatch reads as cold, not as corruption, mirroring the JSON
  contract.

:func:`connect_wal` is the shared connection helper — the serve-layer
:class:`~repro.serve.store.JobStore` opens its databases the same way,
so crash-safety pragmas live in exactly one place.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
import warnings
from pathlib import Path
from typing import Optional, Union

from repro.cache.store import ArtifactCache

_FORMAT_VERSION = 1

#: default wait for SQLite's internal write lock before giving up
BUSY_TIMEOUT = 30.0


def connect_wal(path: Union[str, Path], timeout: float = BUSY_TIMEOUT) -> sqlite3.Connection:
    """Open ``path`` in WAL mode with crash-safe pragmas.

    ``isolation_level=None`` puts the connection in autocommit mode so
    transactions are explicit (``BEGIN IMMEDIATE`` ... ``COMMIT``) —
    the sqlite3 module's implicit transaction management commits at
    surprising times.  ``synchronous=FULL`` makes every commit durable
    against process death (the job server's whole premise);
    ``busy_timeout`` turns writer contention into bounded waiting
    instead of immediate ``database is locked`` errors.
    """
    conn = sqlite3.connect(str(path), timeout=timeout, isolation_level=None)
    conn.execute("PRAGMA journal_mode=WAL")
    conn.execute("PRAGMA synchronous=FULL")
    conn.execute(f"PRAGMA busy_timeout={int(timeout * 1000)}")
    return conn


def quarantine_database(path: Path, reason: str) -> Optional[Path]:
    """Rename a corrupt database (and WAL/SHM siblings) out of the way.

    Returns the quarantine path, or ``None`` when nothing could be
    renamed (read-only directory).  Mirrors the JSON mirror's
    quarantine naming so operators find both kinds the same way.
    """
    stamp = time.strftime("%Y%m%dT%H%M%S")
    target = path.with_name(f"{path.name}.corrupt-{stamp}")
    counter = 0
    while target.exists():
        counter += 1
        target = path.with_name(f"{path.name}.corrupt-{stamp}-{counter}")
    try:
        os.replace(path, target)
    except OSError:
        return None
    for suffix in ("-wal", "-shm"):
        sidecar = path.with_name(path.name + suffix)
        try:
            if sidecar.exists():
                os.replace(sidecar, Path(str(target) + suffix))
        except OSError:
            pass
    warnings.warn(
        f"quarantined corrupt artifact store {path} -> {target.name} ({reason})",
        RuntimeWarning,
        stacklevel=3,
    )
    return target


class SqliteArtifactCache(ArtifactCache):
    """Drop-in :class:`ArtifactCache` persisted through SQLite WAL.

    Same constructor shape (``directory`` + ``filename``), same memo
    semantics; only the disk format differs.  ``filename`` defaults to
    ``explore.sqlite3`` so a JSON mirror and a SQLite store can share
    one cache directory during migration, and the import/export
    helpers (:meth:`export_json` / :meth:`import_json`) round-trip
    records bit-identically between the two formats.
    """

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        filename: str = "explore.sqlite3",
    ):
        #: rows dropped because their record text no longer parsed
        self.quarantined_rows = 0
        super().__init__(directory, filename)

    # ------------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        conn = connect_wal(self.path)
        conn.execute(
            "CREATE TABLE IF NOT EXISTS meta (name TEXT PRIMARY KEY, value TEXT NOT NULL)"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS artifacts "
            "(key TEXT PRIMARY KEY, record TEXT NOT NULL)"
        )
        conn.execute(
            "INSERT OR IGNORE INTO meta (name, value) VALUES ('version', ?)",
            (str(_FORMAT_VERSION),),
        )
        return conn

    def _version_matches(self, conn: sqlite3.Connection) -> bool:
        row = conn.execute("SELECT value FROM meta WHERE name = 'version'").fetchone()
        return row is not None and row[0] == str(_FORMAT_VERSION)

    def load(self) -> int:
        path = self.path
        if path is None or not path.exists():
            return 0
        try:
            conn = self._connect()
        except sqlite3.Error as exc:
            quarantine_database(path, f"cannot open: {exc}")
            return 0
        try:
            if not self._version_matches(conn):
                return 0  # another format's file: cold, not corrupt
            entries = {}
            bad_keys = []
            for key, text in conn.execute("SELECT key, record FROM artifacts"):
                try:
                    record = json.loads(text)
                except ValueError:
                    bad_keys.append(key)
                    continue
                if not isinstance(record, dict):
                    bad_keys.append(key)
                    continue
                entries[key] = record
            if bad_keys:
                # torn rows: drop them (the evaluation is recomputed)
                # rather than fail every future load
                self.quarantined_rows += len(bad_keys)
                conn.execute("BEGIN IMMEDIATE")
                conn.executemany(
                    "DELETE FROM artifacts WHERE key = ?",
                    [(key,) for key in bad_keys],
                )
                conn.execute("COMMIT")
                warnings.warn(
                    f"quarantined {len(bad_keys)} corrupt record(s) in {path}",
                    RuntimeWarning,
                    stacklevel=2,
                )
        except sqlite3.DatabaseError as exc:
            conn.close()
            quarantine_database(path, f"unreadable: {exc}")
            return 0
        else:
            conn.close()
        for key, record in entries.items():
            self.memory.setdefault(key, record)
        self.loaded_entries = len(entries)
        return self.loaded_entries

    def save(self, merge: bool = True) -> Optional[Path]:
        """Upsert every in-memory record; row-granular, so concurrent
        savers converge to the union without whole-file rewrites.

        ``merge=False`` additionally deletes rows this process does not
        hold (snapshot semantics, for compaction); the default matches
        the JSON mirror's merge-on-save.
        """
        path = self.path
        if path is None:
            return None
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            conn = self._connect()
        except sqlite3.Error as exc:
            quarantine_database(path, f"cannot open: {exc}")
            conn = self._connect()
        try:
            conn.execute("BEGIN IMMEDIATE")
            if not merge:
                conn.execute("DELETE FROM artifacts")
            conn.executemany(
                "INSERT OR REPLACE INTO artifacts (key, record) VALUES (?, ?)",
                [
                    (key, json.dumps(record, sort_keys=True))
                    for key, record in self.memory.items()
                ],
            )
            conn.execute("COMMIT")
        finally:
            conn.close()
        return path

    # ------------------------------------------------------------------
    # JSON <-> SQLite round-trips (migration + equivalence tests)
    # ------------------------------------------------------------------
    def export_json(self, filename: str = "explore.json") -> Optional[Path]:
        """Write the current records as a JSON mirror in the same
        directory; round-trips bit-identically (both formats serialize
        records with ``json.dumps(sort_keys=True)`` float semantics)."""
        if self.directory is None:
            return None
        mirror = ArtifactCache(self.directory, filename=filename)
        mirror.memory.update(self.memory)
        return mirror.save()

    @classmethod
    def import_json(
        cls,
        directory: Union[str, Path],
        json_filename: str = "explore.json",
        filename: str = "explore.sqlite3",
    ) -> "SqliteArtifactCache":
        """Build (and persist) a SQLite store from a JSON mirror."""
        source = ArtifactCache(directory, filename=json_filename)
        store = cls(directory, filename=filename)
        store.memory.update(source.memory)
        store.save()
        return store
