"""Append-only result journal for crash-exact resumable exploration.

The :class:`~repro.cache.store.ArtifactCache` mirror is a whole-file
snapshot: correct, but only as fresh as the last ``save()``.  A sweep
that dies mid-run between snapshots loses everything since the last
one.  The journal closes that gap with the classic write-ahead shape:

- every completed evaluation is **appended** to ``journal.jsonl`` in
  the run directory — one canonical-JSON line per record, flushed to
  the OS before the result is reported upward, so a SIGKILL loses at
  most the records whose lines never completed;
- :meth:`ResultJournal.load` replays the journal **tolerantly**: a
  truncated or garbled trailing line (the signature of a crash mid-
  append) is skipped, not fatal — the evaluation is simply recomputed,
  and since records are deterministic the resumed run is bit-identical
  to an uninterrupted one;
- on clean completion, :meth:`compact` folds the journal into the
  cache mirror (``space.json``) via the merge-on-save path and
  truncates the journal, so steady-state resume cost is one snapshot
  read plus a short tail.

Each shard appends to its **own** journal file (``journal-<shard>.jsonl``)
so appenders never interleave; ``load`` merges every ``journal*.jsonl``
in the directory.  Keys are the content-addressed point keys of
:meth:`repro.cache.space.ParameterSpace.point_key`, so a journal can
never resume the wrong space.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro.cache.store import ArtifactCache

#: cache-mirror filename used for compacted space results
MIRROR_FILENAME = "space.json"


class ResultJournal:
    """One run directory's journal + compacted mirror, as a unit."""

    def __init__(self, directory: Union[str, Path], shard: Optional[int] = None):
        self.directory = Path(directory)
        self.shard = shard
        name = "journal.jsonl" if shard is None else f"journal-{shard}.jsonl"
        self.path = self.directory / name
        self._handle = None
        #: lines dropped by the tolerant loader (crash-truncated tails)
        self.skipped_lines = 0

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def append(self, key: str, record: dict) -> None:
        """Durably append one completed evaluation."""
        if self._handle is None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
        line = json.dumps({"key": key, "record": record}, sort_keys=True)
        self._handle.write(line + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------
    # reading / compaction
    # ------------------------------------------------------------------
    def load(self) -> Dict[str, dict]:
        """All durable records: compacted mirror + every journal tail.

        Bad journal lines are counted in :attr:`skipped_lines` and
        skipped; a corrupt mirror is quarantined by the cache loader.
        Failed records are filtered out — a resume must re-attempt
        crashes, mirroring the cache-mirror contract.
        """
        records: Dict[str, dict] = {}
        if self.directory.exists():
            mirror = ArtifactCache(self.directory, filename=MIRROR_FILENAME)
            records.update(mirror.memory)
            self.skipped_lines = 0
            for path in sorted(self.directory.glob("journal*.jsonl")):
                for line in path.read_text(encoding="utf-8").splitlines():
                    if not line.strip():
                        continue
                    try:
                        entry = json.loads(line)
                        key, record = entry["key"], entry["record"]
                    except (ValueError, TypeError, KeyError):
                        self.skipped_lines += 1
                        continue
                    records[key] = record
        return {
            key: record
            for key, record in records.items()
            if record.get("status", "ok") == "ok"
        }

    def compact(self) -> None:
        """Fold every journal into the mirror and truncate the journals.

        Called on clean completion only; merge-on-save makes this safe
        even if another process compacts the same directory.
        """
        self.close()
        records = self.load()
        if not self.directory.exists():
            return
        mirror = ArtifactCache(self.directory, filename=MIRROR_FILENAME)
        for key, record in records.items():
            mirror.put(key, record)
        mirror.save()
        for path in sorted(self.directory.glob("journal*.jsonl")):
            try:
                path.unlink()
            except OSError:
                pass
