"""Stable content fingerprints for synthesis artifacts.

Every fingerprint is a SHA-256 digest over a *canonical encoding* of
the artifact: nested tuples of primitives, rendered with ``repr``.
``repr`` round-trips floats exactly and is stable across processes
(no ``PYTHONHASHSEED`` dependence), so equal artifacts fingerprint
identically in a CLI run, a worker process and a later warm run.

Two artifacts that are *behaviorally* equal but differ in internal
iteration order (node/arc insertion order, transition uids) fingerprint
**differently** on purpose: downstream stages (extraction, local
optimization, simulation) are deterministic functions of the concrete
representation, so only representation-identical artifacts are safe to
share when the incremental engine promises bit-identical results.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Union

from repro.afsm.machine import BurstModeMachine
from repro.cdfg.graph import Cdfg
from repro.channels.model import ChannelPlan
from repro.timing.delays import DelayModel


def stable_digest(payload: object) -> str:
    """SHA-256 hex digest of ``repr(payload)`` (payload should be
    nested tuples/lists of primitives with deterministic ``repr``)."""
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()


def _encode_cdfg(cdfg: Cdfg) -> tuple:
    nodes = tuple(
        (
            node.name,
            node.kind.value,
            node.fu,
            tuple(str(statement) for statement in node.statements),
            node.condition,
            cdfg.block_of(node.name),
            cdfg.branch_of(node.name),
        )
        for node in cdfg.nodes()
    )
    arcs = tuple(
        (
            arc.src,
            arc.dst,
            tuple(sorted(str(tag) for tag in arc.tags)),
            arc.backward,
            arc.label,
        )
        for arc in cdfg.arcs()
    )
    schedules = tuple((fu, tuple(cdfg.fu_schedule(fu))) for fu in cdfg.functional_units())
    return (
        "cdfg",
        nodes,
        arcs,
        schedules,
        tuple(sorted(cdfg.inputs.items())),
        tuple(sorted(cdfg.initial_registers.items())),
    )


def fingerprint_cdfg(cdfg: Cdfg) -> str:
    """Content fingerprint of a CDFG (nodes, arcs, schedules, values).

    Insertion order of nodes/arcs/schedules is part of the fingerprint
    (see module docstring); the graph's *name* and memoized analyses
    are not.
    """
    return stable_digest(_encode_cdfg(cdfg))


def _encode_plan(plan: ChannelPlan) -> tuple:
    return (
        "plan",
        tuple(
            (
                channel.name,
                channel.src_fu,
                tuple(sorted(channel.dst_fus)),
                tuple(channel.arcs),
            )
            for channel in plan.channels
        ),
    )


def fingerprint_plan(plan: ChannelPlan) -> str:
    """Content fingerprint of a channel plan (channel order included)."""
    return stable_digest(_encode_plan(plan))


def fingerprint_content(cdfg: Cdfg, plan: ChannelPlan) -> str:
    """Joint fingerprint of a transformed CDFG plus its effective
    channel plan — the key under which downstream synthesis artifacts
    (extraction, local optimization, simulation) are memoized."""
    return stable_digest(("content", _encode_cdfg(cdfg), _encode_plan(plan)))


def fingerprint_machine(machine: BurstModeMachine) -> str:
    """Content fingerprint of a burst-mode machine.

    Includes transition uids and declaration order: the local
    transforms iterate machines in uid order, so two machines are only
    interchangeable when their representations match exactly.
    """
    signals = tuple(
        (signal.name, signal.kind.value, signal.is_input) for signal in machine.signals()
    )
    transitions = tuple(
        (
            transition.uid,
            transition.src,
            transition.dst,
            str(transition.input_burst),
            str(transition.output_burst),
            tuple(sorted(transition.tags.items())),
        )
        for transition in machine.transitions()
    )
    return stable_digest(
        (
            "machine",
            machine.initial_state,
            tuple(machine.states()),
            signals,
            transitions,
        )
    )


def fingerprint_delays(delays: Optional[DelayModel]) -> str:
    """Fingerprint of a delay model (``None`` = the default model)."""
    if delays is None:
        return "default"
    return stable_digest(("delays", delays.cache_key()))


def fingerprint_registers(registers: Optional[Dict[str, Union[int, float]]]) -> str:
    """Fingerprint of a golden/reference register file (order-free)."""
    if registers is None:
        return "-"
    return stable_digest(("registers", tuple(sorted(registers.items()))))
