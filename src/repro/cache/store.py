"""The artifact cache: in-process memo + optional on-disk JSON mirror.

Records are small JSON-serializable dicts keyed by content-addressed
strings (built from the fingerprints of everything the record depends
on), so a record can never be served stale: mutate the CDFG or the
delay model and the key changes.

Disk layout: one JSON file (``explore.json`` by default) inside the
cache directory (``.repro-cache/`` by default), written atomically via
a temp file + rename.  Because floats are serialized with ``repr``
precision by :mod:`json`, a record round-trips bit-identically —
the property the cold-vs-warm equivalence tests pin down.

Every lookup is counted in the :mod:`repro.perf` registry
(``cache/hit`` / ``cache/miss``) and hits can additionally be marked
with zero-duration spans so ``repro profile`` stays honest about work
that was *not* redone.
"""

from __future__ import annotations

import atexit
import json
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Optional, Union

from repro import perf

#: lock sidecars this process has touched (cleaned up at normal exit)
_lock_cleanups = set()


def _remove_stale_lock(path: str) -> None:
    """Unlink a lock sidecar at interpreter exit if nobody holds it.

    Lock files are coordination scratch, not state: leaving them behind
    litters the repo root (and confuses ``git status``) for no benefit.
    The non-blocking probe means a sibling process still mid-write
    keeps its lock untouched.
    """
    try:
        import fcntl
    except ImportError:
        return
    try:
        handle = open(path, "a+", encoding="utf-8")
    except OSError:
        return
    try:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
    except OSError:
        handle.close()
        return  # another process holds it: not ours to clean
    try:
        os.unlink(path)
    except OSError:
        pass
    finally:
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        except OSError:
            pass
        handle.close()


@contextmanager
def file_lock(path: Union[str, Path]):
    """Advisory exclusive lock on a sidecar file (best-effort).

    Serializes cooperating writers (shards, concurrent benches) around
    read-merge-rename critical sections.  Degrades to a no-op where
    ``fcntl`` or the filesystem refuses — the rename itself is still
    atomic, so an unserialized writer can lose *other* writers' fresh
    entries but can never produce a torn file.
    """
    try:
        import fcntl
    except ImportError:  # non-POSIX: rename-atomicity only
        yield
        return
    try:
        handle = open(path, "a+", encoding="utf-8")
    except OSError:
        yield
        return
    if str(path) not in _lock_cleanups:
        _lock_cleanups.add(str(path))
        atexit.register(_remove_stale_lock, str(path))
    try:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        yield
    finally:
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        except OSError:
            pass
        handle.close()

#: default on-disk location (relative to the working directory)
DEFAULT_CACHE_DIR = ".repro-cache"

_FORMAT_VERSION = 1


class ArtifactCache:
    """Content-addressed memo for synthesis/exploration artifacts.

    ``directory=None`` keeps the cache purely in-process (still useful:
    the incremental engine shares records within one run).  With a
    directory, :meth:`load` merges the persisted records in and
    :meth:`save` writes the union back atomically.
    """

    def __init__(self, directory: Optional[Union[str, Path]] = None, filename: str = "explore.json"):
        self.directory = Path(directory) if directory is not None else None
        self.filename = filename
        self.memory: Dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.loaded_entries = 0
        if self.directory is not None:
            self.load()

    # ------------------------------------------------------------------
    @property
    def path(self) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / self.filename

    def load(self) -> int:
        """Merge the on-disk records into memory; returns the count.

        A cache that cannot be parsed is *quarantined* — renamed to
        ``<name>.corrupt-<timestamp>`` with a one-line warning — so the
        run proceeds cold without silently overwriting the evidence of
        what corrupted it.  A version mismatch is not corruption (the
        file belongs to another format) and just reads as cold.
        """
        path = self.path
        if path is None or not path.exists():
            return 0
        entries, reason = self._read_entries(path)
        if entries is None:
            if reason is not None:
                self._quarantine(path, reason)
            return 0
        for key, record in entries.items():
            self.memory.setdefault(key, record)
        self.loaded_entries = len(entries)
        return self.loaded_entries

    @staticmethod
    def _read_entries(path: Path):
        """Parse a mirror file: ``(entries, None)`` on success,
        ``(None, reason)`` when corrupt, ``(None, None)`` when merely
        unreadable or of another format version."""
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except OSError:
            return None, None  # unreadable (permissions, transient IO)
        except ValueError:
            return None, "not valid JSON"
        if not isinstance(data, dict):
            return None, "top-level payload is not an object"
        if data.get("version") != _FORMAT_VERSION:
            return None, None
        entries = data.get("entries")
        if not isinstance(entries, dict):
            return None, "'entries' is not an object"
        return entries, None

    @staticmethod
    def _quarantine(path: Path, reason: str) -> None:
        import time
        import warnings

        stamp = time.strftime("%Y%m%dT%H%M%S")
        target = path.with_name(f"{path.name}.corrupt-{stamp}")
        counter = 0
        while target.exists():
            counter += 1
            target = path.with_name(f"{path.name}.corrupt-{stamp}-{counter}")
        try:
            os.replace(path, target)
        except OSError:
            return  # cannot rename (read-only dir): cold run, file stays
        warnings.warn(
            f"quarantined corrupt artifact cache {path} -> {target.name} ({reason})",
            RuntimeWarning,
            stacklevel=3,
        )

    def save(self, merge: bool = True) -> Optional[Path]:
        """Atomically persist every record; no-op without a directory.

        With ``merge`` (the default), the current on-disk entries are
        re-read under an advisory lock and unioned in first (memory
        wins on key collisions — irrelevant in practice, since keys are
        content-addressed and colliding records are identical), so two
        processes saving concurrently converge to the union instead of
        the last writer clobbering the other's entries.
        """
        path = self.path
        if path is None:
            return None
        path.parent.mkdir(parents=True, exist_ok=True)
        with file_lock(path.with_name(path.name + ".lock")):
            entries = dict(self.memory)
            if merge and path.exists():
                on_disk, __ = self._read_entries(path)
                for key, record in (on_disk or {}).items():
                    entries.setdefault(key, record)
            payload = json.dumps(
                {"version": _FORMAT_VERSION, "entries": entries}, sort_keys=True
            )
            handle = tempfile.NamedTemporaryFile(
                "w", dir=str(path.parent), prefix=path.name, suffix=".tmp",
                delete=False, encoding="utf-8",
            )
            try:
                with handle:
                    handle.write(payload)
                os.replace(handle.name, path)
            except BaseException:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
                raise
        return path

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[dict]:
        record = self.memory.get(key)
        if record is None:
            self.misses += 1
            perf.count_event("cache/miss")
            return None
        self.hits += 1
        perf.count_event("cache/hit")
        return record

    def put(self, key: str, record: dict) -> dict:
        self.memory[key] = record
        self.stores += 1
        return record

    def __contains__(self, key: str) -> bool:
        return key in self.memory

    def __len__(self) -> int:
        return len(self.memory)

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self.memory),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "loaded": self.loaded_entries,
        }


def make_key(*parts: object) -> str:
    """Join key components into one cache key string."""
    return ":".join(str(part) for part in parts)
