"""Parameter spaces for distributed design-space exploration.

The historical sweep (:func:`repro.explore.explore_design_space`) is a
fixed grid: one CDFG, the GT-subset lattice crossed with two LT
subsets, one delay model, one seed.  A :class:`ParameterSpace`
generalizes every axis:

- **scenarios** — where the CDFG comes from: a registered workload
  (optionally with builder parameters), a Python-subset kernel file
  compiled by :mod:`repro.frontend` under chosen resource bounds, or a
  seeded random program (:func:`random_program` — the same generator
  family the Hypothesis suite draws from in ``tests/strategies.py``);
- **delay variants** — named :class:`~repro.timing.delays.DelayModel`
  distributions: uniform scalings of the default tables and/or
  per-``(fu, operator)`` interval overrides;
- **seeds** — delay-sampling seeds (integers or ``"nominal"``);
- **gt/lt subsets** — explicit lists, or the default prefix-closed
  grids.

A *context* is one ``(scenario, delay variant, seed)`` triple: every
point of a context shares a transform trie, so contexts are the unit
of shard affinity in :mod:`repro.cache.shards`.  Every context and
point is keyed by the existing content-addressed fingerprints
(:mod:`repro.cache.fingerprint`), so journaled results can never be
replayed against the wrong artifact: change the kernel source, the
delay tables or the seed and the key changes.

Spaces round-trip through a small JSON spec (``repro explore --space
FILE``)::

    {
      "schema": "repro-space/v1",
      "scenarios": [
        {"workload": "diffeq"},
        {"kernel": "examples/kernels/accumulate.py", "bounds": {"ALU": 2}},
        {"random": 7}
      ],
      "random_scenarios": {"count": 8, "base_seed": 100},
      "delays": [
        {"name": "nominal"},
        {"name": "slow-1.5x", "scale": 1.5},
        {"name": "hot-mul", "overrides": [["MUL1", "*", [9.0, 13.0]]]}
      ],
      "seeds": [9],
      "gt": "grid",
      "lt": "default"
    }
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from itertools import combinations
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.cache.fingerprint import (
    fingerprint_cdfg,
    fingerprint_delays,
    fingerprint_registers,
)
from repro.cache.store import make_key
from repro.cdfg.builder import CdfgBuilder
from repro.cdfg.graph import Cdfg
from repro.errors import SpaceError
from repro.local_transforms.scripts import STANDARD_LOCAL_SEQUENCE
from repro.timing.delays import DelayModel
from repro.transforms.scripts import STANDARD_SEQUENCE

SPACE_SCHEMA = "repro-space/v1"

#: generation tag folded into every context/point key; bump when the
#: record layout of the shard runner changes incompatibly
KEY_GENERATION = "s1"

# ----------------------------------------------------------------------
# seeded random programs (shared with tests/strategies.py)
# ----------------------------------------------------------------------

#: binding pools for random programs — ``tests/strategies.py`` imports
#: these so the Hypothesis fuzzers and the exploration scenarios draw
#: from one space
RANDOM_UNITS = ("FU_A", "FU_B", "FU_C")
RANDOM_REGISTERS = ("R0", "R1", "R2", "R3")
RANDOM_OPERATORS = ("+", "-", "*")

#: one random op: (dest, left, operator, right, fu)
RandomOp = Tuple[str, str, str, str, str]
#: (pre-ops, body-ops, iterations)
RandomProgram = Tuple[Tuple[RandomOp, ...], Tuple[RandomOp, ...], int]


def random_program(seed: int) -> RandomProgram:
    """Draw one ``(pre, body, iterations)`` program deterministically.

    Mirrors the shape of the Hypothesis ``programs()`` strategy (0-3
    straight-line ops, a 1-5 op loop body, 0-4 iterations) through a
    plain seeded :class:`random.Random`, so exploration scenarios are
    reproducible from their seed alone — no Hypothesis at run time.
    """
    rng = random.Random(seed)

    def op() -> RandomOp:
        return (
            rng.choice(RANDOM_REGISTERS),
            rng.choice(RANDOM_REGISTERS),
            rng.choice(RANDOM_OPERATORS),
            rng.choice(RANDOM_REGISTERS),
            rng.choice(RANDOM_UNITS),
        )

    pre = tuple(op() for _ in range(rng.randint(0, 3)))
    body = tuple(op() for _ in range(rng.randint(1, 5)))
    iterations = rng.randint(0, 4)
    return pre, body, iterations


def build_random_program(program: RandomProgram, name: str = "random") -> Cdfg:
    """Materialize a :func:`random_program` draw as a well-formed CDFG.

    This is the single builder behind both the Hypothesis strategy
    (``tests/strategies.py``) and random exploration scenarios, so a
    failing scenario replays directly as a fuzz case.
    """
    pre, body, iterations = program
    builder = CdfgBuilder(name)
    builder.input("one", 1.0)
    builder.input("limit", float(iterations))
    for index, (dest, left, operator, right, fu) in enumerate(pre):
        builder.op(f"{dest} := {left} {operator} {right}", fu=fu, name=f"pre{index}")
    with builder.loop("C", fu="CNT"):
        for index, (dest, left, operator, right, fu) in enumerate(body):
            builder.op(f"{dest} := {left} {operator} {right}", fu=fu, name=f"body{index}")
        builder.op("I := I + one", fu="CNT")
        builder.op("C := I < limit", fu="CNT")
    initial = {reg: float(i + 1) for i, reg in enumerate(RANDOM_REGISTERS)}
    initial["I"] = 0.0
    initial["C"] = 1.0 if iterations > 0 else 0.0
    return builder.build(initial=initial)


def random_cdfg(seed: int) -> Cdfg:
    """The random scenario builder: seed → CDFG, deterministically."""
    return build_random_program(random_program(seed), name=f"random-{seed}")


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """One CDFG source: a workload, a kernel file, or a random seed."""

    kind: str  # "workload" | "kernel" | "random"
    name: str
    workload: Optional[str] = None
    params: Tuple[Tuple[str, float], ...] = ()
    path: Optional[str] = None
    kernel: Optional[str] = None
    bounds: Tuple[Tuple[str, int], ...] = ()
    seed: Optional[int] = None

    def build(self) -> Cdfg:
        """Materialize the scenario's CDFG (a fresh graph every call)."""
        if self.kind == "workload":
            from repro.workloads import WORKLOADS

            try:
                builder = WORKLOADS[self.workload]
            except KeyError:
                raise SpaceError(f"unknown workload scenario {self.workload!r}") from None
            return builder(**dict(self.params))
        if self.kind == "kernel":
            from repro.errors import FrontendError
            from repro.frontend import load_kernel_file

            try:
                compiled = load_kernel_file(
                    self.path, kernel=self.kernel, bounds=dict(self.bounds) or None
                )
            except FrontendError as exc:
                raise SpaceError(f"kernel scenario {self.path!r}: {exc}") from None
            return compiled.build()
        if self.kind == "random":
            return random_cdfg(self.seed)
        raise SpaceError(f"unknown scenario kind {self.kind!r}")

    def to_dict(self) -> Dict[str, object]:
        if self.kind == "workload":
            doc: Dict[str, object] = {"workload": self.workload}
            if self.params:
                doc["params"] = dict(self.params)
            return doc
        if self.kind == "kernel":
            doc = {"kernel": self.path}
            if self.kernel:
                doc["function"] = self.kernel
            if self.bounds:
                doc["bounds"] = dict(self.bounds)
            return doc
        return {"random": self.seed}

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "Scenario":
        if not isinstance(doc, dict):
            raise SpaceError(f"scenario entries must be objects, got {doc!r}")
        if "workload" in doc:
            name = str(doc["workload"])
            params = doc.get("params") or {}
            if not isinstance(params, dict):
                raise SpaceError(f"scenario {name!r}: 'params' must be an object")
            return cls(
                kind="workload",
                name=name,
                workload=name,
                params=tuple(sorted((str(k), float(v)) for k, v in params.items())),
            )
        if "kernel" in doc:
            path = str(doc["kernel"])
            bounds = doc.get("bounds") or {}
            if not isinstance(bounds, dict):
                raise SpaceError(f"scenario {path!r}: 'bounds' must be an object")
            function = doc.get("function")
            label = Path(path).stem + (f":{function}" if function else "")
            return cls(
                kind="kernel",
                name=label,
                path=path,
                kernel=str(function) if function else None,
                bounds=tuple(sorted((str(k), int(v)) for k, v in bounds.items())),
            )
        if "random" in doc:
            seed = int(doc["random"])
            return cls(kind="random", name=f"random-{seed}", seed=seed)
        raise SpaceError(
            f"scenario needs one of 'workload' | 'kernel' | 'random', got {sorted(doc)}"
        )


# ----------------------------------------------------------------------
# delay variants
# ----------------------------------------------------------------------


def _scaled(interval: Tuple[float, float], scale: float) -> Tuple[float, float]:
    return (interval[0] * scale, interval[1] * scale)


@dataclass(frozen=True)
class DelayVariant:
    """A named delay-model distribution.

    ``scale`` multiplies every default interval uniformly;
    ``overrides`` pins specific ``(fu, operator)`` pairs (operator
    ``None`` = the whole unit).  The nominal variant (scale 1, no
    overrides) builds ``None`` so it fingerprints as — and shares
    cached artifacts with — the default model everywhere else.
    """

    name: str = "nominal"
    scale: float = 1.0
    overrides: Tuple[Tuple[str, Optional[str], Tuple[float, float]], ...] = ()

    @property
    def edge_scope(self) -> Optional[str]:
        """Delay-equivalence class for sharing trie-edge records.

        Transform decisions and flow-oracle verdicts compare sums of
        delays, so every *uniform scaling* of the default tables yields
        bit-identical edge records (the paper's speed-independence
        argument; pinned by ``tests/cache/test_shards.py``).  Pure-scale
        variants therefore share one scope; override variants return
        ``None``, falling back to exact delay-fingerprint scoping.
        """
        return None if self.overrides else "uniform-scale"

    def build(self) -> Optional[DelayModel]:
        if self.scale == 1.0 and not self.overrides:
            return None
        base = DelayModel()
        return DelayModel(
            operator_delays={
                op: _scaled(interval, self.scale)
                for op, interval in base.operator_delays.items()
            },
            copy_delay=_scaled(base.copy_delay, self.scale),
            structural_delay=_scaled(base.structural_delay, self.scale),
            overrides={
                (fu, operator): tuple(interval)
                for fu, operator, interval in self.overrides
            },
        )

    def to_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {"name": self.name}
        if self.scale != 1.0:
            doc["scale"] = self.scale
        if self.overrides:
            doc["overrides"] = [
                [fu, operator, list(interval)] for fu, operator, interval in self.overrides
            ]
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "DelayVariant":
        if not isinstance(doc, dict):
            raise SpaceError(f"delay entries must be objects, got {doc!r}")
        scale = float(doc.get("scale", 1.0))
        if scale <= 0.0:
            raise SpaceError(f"delay scale must be positive, got {scale}")
        raw = doc.get("overrides") or []
        overrides = []
        for entry in raw:
            try:
                fu, operator, interval = entry
                lo, hi = interval
            except (TypeError, ValueError):
                raise SpaceError(
                    f"delay override must be [fu, operator, [lo, hi]], got {entry!r}"
                ) from None
            overrides.append(
                (str(fu), None if operator is None else str(operator), (float(lo), float(hi)))
            )
        name = doc.get("name")
        if name is None:
            pieces = []
            if scale != 1.0:
                pieces.append(f"x{scale:g}")
            pieces.extend(f"{fu}.{op or '*'}" for fu, op, __ in overrides)
            name = "+".join(pieces) or "nominal"
        return cls(name=str(name), scale=scale, overrides=tuple(overrides))


NOMINAL_VARIANT = DelayVariant()


# ----------------------------------------------------------------------
# contexts and the space itself
# ----------------------------------------------------------------------

SeedSpec = Union[int, str]  # int or "nominal"


@dataclass
class SpaceContext:
    """One realized ``(scenario, delay variant, seed)`` triple.

    ``key`` is content-addressed over the built CDFG, the delay
    fingerprint, the seed and the golden register file — the namespace
    under which every point record of this context is journaled.
    """

    index: int
    scenario_index: int
    scenario: Scenario
    variant: DelayVariant
    seed_spec: SeedSpec
    cdfg: Cdfg = field(repr=False)
    delays: Optional[DelayModel] = field(repr=False, default=None)
    golden: Optional[Dict[str, float]] = field(repr=False, default=None)
    key: str = ""

    @property
    def seed(self):
        from repro.sim.seeding import NOMINAL

        return NOMINAL if self.seed_spec == "nominal" else int(self.seed_spec)

    @property
    def seed_key(self) -> str:
        return "nominal" if self.seed_spec == "nominal" else repr(int(self.seed_spec))

    @property
    def edge_scope(self) -> Optional[str]:
        return self.variant.edge_scope

    def labels(self) -> Dict[str, object]:
        """The per-point report columns identifying this context."""
        return {
            "scenario": self.scenario.name,
            "delay_model": self.variant.name,
            "sim_seed": self.seed_key,
        }


def default_gt_grid() -> List[Tuple[str, ...]]:
    """Every subset of the GT sequence, smallest first (the historical
    64-point explore grid's GT axis)."""
    return [
        subset
        for size in range(len(STANDARD_SEQUENCE) + 1)
        for subset in combinations(STANDARD_SEQUENCE, size)
    ]


def default_lt_grid() -> List[Tuple[str, ...]]:
    return [(), tuple(STANDARD_LOCAL_SEQUENCE)]


def _parse_subsets(value, sequence, axis: str) -> List[Tuple[str, ...]]:
    if value in (None, "grid", "default"):
        if axis == "gt":
            return default_gt_grid()
        return default_lt_grid()
    if not isinstance(value, list):
        raise SpaceError(f"'{axis}' must be \"grid\" or a list of subsets")
    known = set(sequence)
    subsets = []
    for subset in value:
        if not isinstance(subset, (list, tuple)):
            raise SpaceError(f"'{axis}' subsets must be lists, got {subset!r}")
        names = tuple(str(name).upper() for name in subset)
        unknown = [name for name in names if name not in known]
        if unknown:
            raise SpaceError(f"'{axis}' subset {list(subset)!r}: unknown passes {unknown}")
        subsets.append(names)
    if not subsets:
        raise SpaceError(f"'{axis}' axis is empty")
    return subsets


@dataclass
class ParameterSpace:
    """The cross product of every exploration axis.

    Point order is canonical — scenario-major, then delay variant,
    then seed, then the GT and LT axes — and every result report lists
    points in exactly this order, which is what makes a resumed run
    byte-identical to an uninterrupted one.
    """

    scenarios: List[Scenario]
    delay_variants: List[DelayVariant] = field(default_factory=lambda: [NOMINAL_VARIANT])
    seeds: List[SeedSpec] = field(default_factory=lambda: [9])
    gt_subsets: List[Tuple[str, ...]] = field(default_factory=default_gt_grid)
    lt_subsets: List[Tuple[str, ...]] = field(default_factory=default_lt_grid)
    verify: bool = True

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise SpaceError("a parameter space needs at least one scenario")
        if not self.delay_variants:
            raise SpaceError("a parameter space needs at least one delay variant")
        if not self.seeds:
            raise SpaceError("a parameter space needs at least one seed")

    # ------------------------------------------------------------------
    @property
    def context_count(self) -> int:
        return len(self.scenarios) * len(self.delay_variants) * len(self.seeds)

    @property
    def points_per_context(self) -> int:
        return len(self.gt_subsets) * len(self.lt_subsets)

    def __len__(self) -> int:
        return self.context_count * self.points_per_context

    def contexts(self) -> Iterator[SpaceContext]:
        """Realize every context: build the CDFG, the delay model, the
        golden register file and the content-addressed context key."""
        from repro.sim.seeding import NOMINAL
        from repro.sim.token_sim import simulate_tokens

        index = 0
        for scenario_index, scenario in enumerate(self.scenarios):
            for variant in self.delay_variants:
                delays = variant.build()
                for seed_spec in self.seeds:
                    cdfg = scenario.build()
                    golden = (
                        simulate_tokens(cdfg, seed=NOMINAL).registers
                        if self.verify
                        else None
                    )
                    context = SpaceContext(
                        index=index,
                        scenario_index=scenario_index,
                        scenario=scenario,
                        variant=variant,
                        seed_spec=seed_spec,
                        cdfg=cdfg,
                        delays=delays,
                        golden=golden,
                    )
                    context.key = make_key(
                        "ctx",
                        KEY_GENERATION,
                        fingerprint_cdfg(cdfg),
                        fingerprint_delays(delays),
                        context.seed_key,
                        fingerprint_registers(golden),
                    )
                    yield context
                    index += 1

    @staticmethod
    def point_key(context: SpaceContext, gt: Sequence[str], lt: Sequence[str]) -> str:
        """The journal/cache key of one point of one context."""
        return make_key(
            "space-point",
            context.key,
            "+".join(gt) or "-",
            "+".join(lt) or "-",
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": SPACE_SCHEMA,
            "scenarios": [scenario.to_dict() for scenario in self.scenarios],
            "delays": [variant.to_dict() for variant in self.delay_variants],
            "seeds": list(self.seeds),
            "gt": [list(subset) for subset in self.gt_subsets],
            "lt": [list(subset) for subset in self.lt_subsets],
            "verify": self.verify,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "ParameterSpace":
        if not isinstance(doc, dict):
            raise SpaceError("a space spec must be a JSON object")
        schema = doc.get("schema", SPACE_SCHEMA)
        if schema != SPACE_SCHEMA:
            raise SpaceError(f"unknown space schema {schema!r} (expected {SPACE_SCHEMA!r})")
        scenarios = [Scenario.from_dict(entry) for entry in doc.get("scenarios") or []]
        sugar = doc.get("random_scenarios")
        if sugar:
            if not isinstance(sugar, dict) or "count" not in sugar:
                raise SpaceError("'random_scenarios' needs {'count': N[, 'base_seed': S]}")
            base = int(sugar.get("base_seed", 0))
            scenarios.extend(
                Scenario.from_dict({"random": base + offset})
                for offset in range(int(sugar["count"]))
            )
        seeds: List[SeedSpec] = []
        for entry in doc.get("seeds") or [9]:
            if entry == "nominal":
                seeds.append("nominal")
            else:
                seeds.append(int(entry))
        delays = [DelayVariant.from_dict(entry) for entry in doc.get("delays") or [{}]]
        names = [variant.name for variant in delays]
        if len(set(names)) != len(names):
            raise SpaceError(f"duplicate delay variant names: {names}")
        return cls(
            scenarios=scenarios,
            delay_variants=delays,
            seeds=seeds,
            gt_subsets=_parse_subsets(doc.get("gt"), STANDARD_SEQUENCE, "gt"),
            lt_subsets=_parse_subsets(doc.get("lt"), STANDARD_LOCAL_SEQUENCE, "lt"),
            verify=bool(doc.get("verify", True)),
        )

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "ParameterSpace":
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            raise SpaceError(f"cannot read space file {path}: {exc}") from None
        try:
            doc = json.loads(text)
        except ValueError as exc:
            raise SpaceError(f"space file {path} is not valid JSON: {exc}") from None
        return cls.from_dict(doc)

    # ------------------------------------------------------------------
    @classmethod
    def for_workload(cls, workload: str, **kwargs) -> "ParameterSpace":
        """The historical 64-point explore grid as a one-scenario space."""
        return cls(
            scenarios=[Scenario.from_dict({"workload": workload})], **kwargs
        )


def bench_space(
    workloads: Sequence[str] = ("diffeq",),
    random_scenarios: int = 3,
    delay_scales: Sequence[float] = (1.0, 1.25, 1.5, 2.0),
    seeds: Sequence[SeedSpec] = (9,),
    base_seed: int = 0,
) -> ParameterSpace:
    """The synthetic scaling-bench space: named workloads plus seeded
    random scenarios, crossed with uniform delay scalings and the
    default GT/LT grids.  Defaults yield ``(len(workloads) +
    random_scenarios) * len(delay_scales) * len(seeds) * 64`` points —
    1024 with one workload."""
    scenarios = [Scenario.from_dict({"workload": name}) for name in workloads]
    scenarios.extend(
        Scenario.from_dict({"random": base_seed + offset})
        for offset in range(random_scenarios)
    )
    variants = [
        DelayVariant(name="nominal" if scale == 1.0 else f"x{scale:g}", scale=scale)
        for scale in delay_scales
    ]
    return ParameterSpace(
        scenarios=scenarios, delay_variants=variants, seeds=list(seeds)
    )
