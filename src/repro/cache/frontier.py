"""Incremental Pareto skyline over streaming design points.

The end-of-run frontier (:meth:`repro.explore.ExplorationResult.
pareto_points`) sorts the finished sweep; fine at 64 points, useless
for reporting mid-flight at 10k.  :class:`StreamingFrontier` maintains
the skyline *as points land*, in any order:

- a candidate dominated by the current skyline is rejected in one scan;
  an accepted candidate evicts every member it dominates — the skyline
  is exactly the non-dominated subset of everything offered so far
  (order-insensitive: a property test permutes arrival orders and pins
  set-equality with the sort-based frontier);
- a min-heap on ``(objectives, arrival)`` with lazy deletion gives O(1)
  peek at the current best point under the same lexicographic
  ``(channels, states, makespan)`` order ``ExplorationResult.best()``
  uses, without re-sorting per arrival;
- failed points are skipped on entry, mirroring the end-of-run
  frontier's ``status == "ok"`` filter.

Equal-objective points are *all* kept: :meth:`DesignPoint.dominates`
is strict, so ties are mutually non-dominating — again matching the
sort-based skyline.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.explore import DesignPoint


class StreamingFrontier:
    """Maintain the Pareto skyline incrementally as points arrive."""

    def __init__(self):
        self._skyline: List[DesignPoint] = []
        self._heap: List[Tuple[Tuple[float, ...], int, DesignPoint]] = []
        self._arrivals = 0
        #: points offered (ok-status only) / accepted into the skyline
        self.offered = 0
        self.accepted = 0

    def add(self, point: DesignPoint) -> bool:
        """Offer one point; True iff it joined the skyline."""
        if point.status != "ok":
            return False
        self.offered += 1
        for member in self._skyline:
            if member.dominates(point):
                return False
        survivors = [m for m in self._skyline if not point.dominates(m)]
        survivors.append(point)
        self._skyline = survivors
        self._arrivals += 1
        heapq.heappush(self._heap, (point.objectives(), self._arrivals, point))
        self.accepted += 1
        return True

    def points(self) -> List[DesignPoint]:
        """The current skyline, in canonical objective order."""
        return sorted(
            self._skyline,
            key=lambda p: (p.objectives(), p.global_transforms, p.local_transforms),
        )

    def best(self) -> Optional[DesignPoint]:
        """O(1) amortized peek at the lexicographic-best skyline point.

        Lazy deletion: heap entries evicted from the skyline are popped
        on the way to the first live one.
        """
        live = set(map(id, self._skyline))
        while self._heap and id(self._heap[0][2]) not in live:
            heapq.heappop(self._heap)
        return self._heap[0][2] if self._heap else None

    def __len__(self) -> int:
        return len(self._skyline)
