"""Profiling hooks and cache controls for the synthesis hot path.

Two small facilities, both deliberately dependency-free:

**Timed sections.**  :func:`timed_section` is a context manager that
accumulates wall time into a process-global registry, keyed by section
name.  The pass managers use it to attribute time to individual
transforms (``global/GT3``, ``local/LT5``, ...); callers can wrap any
code of their own.  Read the registry with :func:`section_timings`,
render it with :func:`format_timings`, clear it with
:func:`reset_timings`.

**Cache switch.**  The analysis caches introduced for scaling (memoized
:class:`~repro.transforms.unfold.UnfoldedReach` construction and
reachability closures, :class:`~repro.timing.delays.DelayModel`
interval memoization, anchored longest-path tables in
:mod:`repro.timing.analysis`) all consult :func:`caching_enabled`.
:func:`caching_disabled` turns them off for a scope — used by the
property tests that prove cached and uncached runs produce identical
designs, and handy when bisecting a suspected stale-cache bug.

>>> from repro.perf import timed_section, section_timings
>>> with timed_section("my-analysis"):
...     pass
>>> section_timings()["my-analysis"].calls
1
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator

__all__ = [
    "caching_enabled",
    "set_caching",
    "caching_disabled",
    "timed_section",
    "record_duration",
    "count_event",
    "section_timings",
    "reset_timings",
    "format_timings",
    "SectionStat",
]

# ----------------------------------------------------------------------
# cache switch
# ----------------------------------------------------------------------
_caching = True


def caching_enabled() -> bool:
    """True when the analysis caches are active (the default)."""
    return _caching


def set_caching(enabled: bool) -> bool:
    """Enable/disable the analysis caches; returns the previous state."""
    global _caching
    previous = _caching
    _caching = bool(enabled)
    return previous


@contextmanager
def caching_disabled() -> Iterator[None]:
    """Scope with every analysis cache bypassed (recompute everything)."""
    previous = set_caching(False)
    try:
        yield
    finally:
        set_caching(previous)


# ----------------------------------------------------------------------
# timed sections
# ----------------------------------------------------------------------
@dataclass
class SectionStat:
    """Accumulated wall time of one named section."""

    calls: int = 0
    total: float = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.calls if self.calls else 0.0


_sections: Dict[str, SectionStat] = {}


def record_duration(name: str, seconds: float) -> None:
    """Add ``seconds`` to section ``name`` (creates it on first use)."""
    stat = _sections.get(name)
    if stat is None:
        stat = _sections[name] = SectionStat()
    stat.calls += 1
    stat.total += seconds


def count_event(name: str) -> None:
    """Count one occurrence of ``name`` (zero duration).

    Used for events whose *count* is the signal — artifact-cache hits
    and misses (``cache/hit`` / ``cache/miss``) show up in
    ``--timings`` output next to the sections they saved.
    """
    record_duration(name, 0.0)


@contextmanager
def timed_section(name: str) -> Iterator[None]:
    """Accumulate the wall time of the enclosed block under ``name``."""
    start = time.perf_counter()
    try:
        yield
    finally:
        record_duration(name, time.perf_counter() - start)


def section_timings() -> Dict[str, SectionStat]:
    """A snapshot of the registry (name -> :class:`SectionStat`)."""
    return {name: SectionStat(stat.calls, stat.total) for name, stat in _sections.items()}


def reset_timings() -> None:
    """Clear the registry (e.g. between benchmark repetitions)."""
    _sections.clear()


def format_timings() -> str:
    """The registry as an aligned text table, slowest section first."""
    if not _sections:
        return "(no timed sections recorded)"
    rows = sorted(_sections.items(), key=lambda item: -item[1].total)
    width = max(len(name) for name, __ in rows)
    lines = [f"{'section':<{width}}  {'calls':>6}  {'total':>9}  {'mean':>9}"]
    for name, stat in rows:
        lines.append(
            f"{name:<{width}}  {stat.calls:>6}  {stat.total:>8.3f}s  {stat.mean:>8.4f}s"
        )
    return "\n".join(lines)
