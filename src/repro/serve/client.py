"""Blocking HTTP client for the job server.

Built on :mod:`http.client` so tests, benchmarks and the chaos drill
need no async plumbing (and no third-party HTTP stack).  The client
embodies the protocol's retry contract:

- Every request opens a fresh connection (the server answers
  ``Connection: close``), so a chaos-dropped connection is visible as
  a plain socket error, never a wedged keep-alive.
- :meth:`submit` **resubmits** on dropped connections and on ``429``
  backpressure, pacing itself with a
  :class:`~repro.resilience.pool.RetryPolicy`.  Resubmission is safe
  *because* submissions are content-addressed: the server dedups the
  second copy onto the first, so at-least-once delivery from the
  client composes with exactly-once execution at the store.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Dict, Optional, Tuple

from repro.errors import ReproError
from repro.resilience.pool import RetryPolicy


class ServeUnavailable(ReproError):
    """The server could not be reached (or kept shedding) in budget."""


class ServeClient:
    """Talks to one ``repro serve`` instance."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8321,
        timeout: float = 30.0,
        policy: Optional[RetryPolicy] = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.policy = policy or RetryPolicy(max_retries=5, base_delay=0.05)

    # ------------------------------------------------------------------
    def request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, dict]:
        """One raw round-trip; raises ``ConnectionError`` on drops."""
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            conn.request(
                method,
                path,
                body=payload,
                headers={"Content-Type": "application/json"} if payload else {},
            )
            response = conn.getresponse()
            text = response.read().decode("utf-8")
        except (http.client.BadStatusLine, http.client.RemoteDisconnected) as exc:
            raise ConnectionError(f"server dropped the connection: {exc}") from exc
        except socket.timeout as exc:
            raise ConnectionError(f"request timed out: {exc}") from exc
        finally:
            conn.close()
        try:
            document = json.loads(text) if text else {}
        except ValueError:
            document = {"error": f"unparseable response: {text[:200]!r}"}
        return response.status, document

    def _request_with_retries(
        self, method: str, path: str, body: Optional[dict] = None,
        retry_status: Tuple[int, ...] = (),
    ) -> Tuple[int, dict]:
        last_error: Optional[str] = None
        for attempt in range(self.policy.max_retries + 1):
            if attempt:
                time.sleep(self.policy.delay(attempt - 1))
            try:
                status, document = self.request(method, path, body)
            except (ConnectionError, OSError) as exc:
                last_error = str(exc)
                continue
            if status in retry_status:
                last_error = f"HTTP {status}: {document.get('error', '')}"
                continue
            return status, document
        raise ServeUnavailable(
            f"{method} {path} failed after "
            f"{self.policy.max_retries + 1} attempts ({last_error})"
        )

    # ------------------------------------------------------------------
    # typed endpoints
    # ------------------------------------------------------------------
    def submit(
        self, kind: str, params: dict, client: str = "", wait_shed: bool = True
    ) -> dict:
        """Submit one job, retrying drops and (optionally) ``429`` shed.

        Returns the job document; raises :class:`ServeUnavailable` when
        the budget runs out and :class:`ReproError` on a ``400``.
        """
        retry_status = (429, 503) if wait_shed else ()
        status, document = self._request_with_retries(
            "POST",
            "/jobs",
            {"kind": kind, "params": params, "client": client},
            retry_status=retry_status,
        )
        if status in (200, 202):
            return document["job"]
        raise ReproError(
            f"submission rejected (HTTP {status}): {document.get('error', '?')}"
        )

    def job(self, job_id: str) -> Optional[dict]:
        status, document = self._request_with_retries("GET", f"/jobs/{job_id}")
        return document.get("job") if status == 200 else None

    def wait(self, job_id: str, timeout: float = 60.0, poll: float = 0.05) -> dict:
        """Poll until the job is terminal; raises on deadline."""
        deadline = time.monotonic() + timeout
        from repro.serve.jobs import TERMINAL_STATES

        while time.monotonic() < deadline:
            job = self.job(job_id)
            if job is not None and job["state"] in TERMINAL_STATES:
                return job
            time.sleep(poll)
        raise ServeUnavailable(f"job {job_id} not terminal after {timeout:g}s")

    def run(self, kind: str, params: dict, client: str = "", timeout: float = 60.0) -> dict:
        """Submit-and-wait convenience: returns the terminal job."""
        job = self.submit(kind, params, client=client)
        if job["state"] in ("DONE", "FAILED", "TIMED_OUT") and (
            job.get("result") is not None or job["state"] != "DONE"
        ):
            return job
        return self.wait(job["job_id"], timeout=timeout)

    def jobs(self) -> list:
        __, document = self._request_with_retries("GET", "/jobs")
        return document.get("jobs", [])

    def stats(self) -> Dict[str, object]:
        __, document = self._request_with_retries("GET", "/stats")
        return document

    def healthz(self) -> Dict[str, object]:
        __, document = self._request_with_retries("GET", "/healthz")
        return document

    def drain(self) -> Dict[str, object]:
        __, document = self._request_with_retries("POST", "/drain")
        return document
