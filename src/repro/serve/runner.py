"""The worker pool behind the job server.

Wraps a :class:`~concurrent.futures.ProcessPoolExecutor` (or a thread
pool, for lightweight deployments and tests) behind an async call,
with the resilience discipline of :mod:`repro.resilience.pool` ported
to the serving path:

- **Per-job timeouts**, enforced twice: inside the worker via
  :func:`repro.resilience.injection.point_deadline` (``SIGALRM`` on
  the worker's main thread — the same watchdog ``repro explore
  --timeout`` uses), and as an ``asyncio.wait_for`` backstop with a
  grace period for executors where signals cannot fire (thread mode,
  non-Unix).  Either way the caller sees ``PointTimeout``.
- **BrokenProcessPool rebuild**: one worker dying (chaos kill, OOM)
  breaks the whole pool; the runner rebuilds it immediately (counted
  in :attr:`rebuilds`) and reports the failure as *transient* so the
  dispatcher retries the job under its
  :class:`~repro.resilience.pool.RetryPolicy` budget.  In-flight
  sibling jobs fail the same way and retry too — none are lost.

The runner never touches the job store: it executes and classifies;
the server owns state transitions.
"""

from __future__ import annotations

import asyncio
import multiprocessing
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, Optional

from repro.resilience.injection import PointTimeout, point_deadline
from repro.serve.jobs import execute_job

#: executor kinds the runner can host
EXECUTORS = ("process", "thread")

#: extra wall-clock slack the async backstop allows the in-worker
#: watchdog before assuming it could not fire
TIMEOUT_GRACE = 0.75


def _invoke(kind: str, params: dict, deadline: Optional[float]) -> dict:
    """Top-level worker entry point (must stay picklable)."""
    with point_deadline(deadline):
        return execute_job(kind, params)


class JobRunner:
    """Executes jobs on a pool; owns rebuild and timeout mechanics."""

    def __init__(self, workers: int = 2, executor: str = "process"):
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        self.workers = max(1, int(workers))
        self.executor_kind = executor
        self.rebuilds = 0
        self._pool = self._build()

    def _build(self):
        if self.executor_kind == "process":
            # fork-context workers inherit every FD open at the moment
            # they spawn — including sockets the server has *accepted*.
            # A worker forked mid-request keeps a copy of the client's
            # connection, so the server's close() never FINs and that
            # client blocks until its socket timeout.  Workers spawn
            # lazily (first dispatch, every pool rebuild), so the race
            # is unavoidable with plain fork.  The forkserver context
            # removes it: the master is started *here*, while the
            # runner is being built and no connections exist, and every
            # worker — including post-rebuild ones — forks from that
            # clean master instead of the serving process.
            from multiprocessing import forkserver

            forkserver.set_forkserver_preload(["repro.serve.jobs"])
            forkserver.ensure_running()
            context = multiprocessing.get_context("forkserver")
            return ProcessPoolExecutor(
                max_workers=self.workers, mp_context=context
            )
        return ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )

    def rebuild(self) -> None:
        """Replace a broken pool (old one torn down without waiting)."""
        try:
            self._pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        self.rebuilds += 1
        self._pool = self._build()

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait, cancel_futures=not wait)

    # ------------------------------------------------------------------
    async def execute(
        self, kind: str, params: dict, timeout: Optional[float] = None
    ) -> dict:
        """Run one job attempt; raises the classified failure.

        ``PointTimeout`` for deadline overruns (in-worker watchdog or
        the async backstop), ``BrokenProcessPool`` after an automatic
        rebuild for worker deaths, and whatever the job itself raised
        otherwise.
        """
        loop = asyncio.get_running_loop()
        # thread mode cannot arm SIGALRM off the main thread; pass no
        # in-worker deadline there and rely on the backstop alone
        deadline = timeout if self.executor_kind == "process" else None
        future = loop.run_in_executor(self._pool, _invoke, kind, params, deadline)
        backstop = None if timeout is None else timeout + TIMEOUT_GRACE
        try:
            return await asyncio.wait_for(future, backstop)
        except asyncio.TimeoutError:
            # the worker may still be grinding; the store's late-result
            # guard discards whatever it eventually produces
            raise PointTimeout(
                f"job exceeded its {timeout:g}s deadline (async backstop)"
            )
        except BrokenProcessPool:
            self.rebuild()
            raise

    def stats(self) -> Dict[str, object]:
        return {
            "executor": self.executor_kind,
            "workers": self.workers,
            "rebuilds": self.rebuilds,
        }
