"""Chaos harness for the job server: seeded fault plans + the drill.

Extends the :mod:`repro.resilience.injection` discipline (seeded,
deterministic, only-real-workers) from the synthesis pipeline to the
serving path.  Two layers of injected misbehaviour:

- **Request faults** — :class:`ServeFaultPlan` decides, per request
  index and seed, whether the server delays its response or drops the
  connection cold.  Clients see real socket errors and must resubmit;
  content-addressed dedup is what makes that safe.
- **Job faults** — the ``_chaos`` parameter side channel
  (:func:`repro.serve.jobs._apply_chaos`): sleep inside the worker,
  die once (``os._exit`` in a real pool worker, breaking the pool),
  or raise once (for in-process executors).

:func:`chaos_drill` is the acceptance drill the issue demands: a
fault-free baseline, then the same workload under drops, delays, a
worker kill, a mid-job crash (``kill -9`` semantics via
:meth:`~repro.serve.harness.ServerHarness.crash`), a restart, and a
scribbled result row — asserting **no job is lost, none is
double-executed, and every resumed result is byte-identical** to the
fault-free run.
"""

from __future__ import annotations

import random
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.resilience.pool import RetryPolicy
from repro.serve.harness import ServerHarness
from repro.serve.jobs import canonical_json, canonical_params, job_key
from repro.serve.server import ServerConfig
from repro.serve.store import JobStore


class ServeFaultPlan:
    """Seeded per-request fault decisions (deterministic by index)."""

    def __init__(
        self,
        seed: int = 0,
        drop_prob: float = 0.0,
        delay_prob: float = 0.0,
        delay: float = 0.02,
    ):
        self.seed = seed
        self.drop_prob = drop_prob
        self.delay_prob = delay_prob
        self.delay = delay

    def request_action(self, index: int) -> Optional[Tuple[str, float]]:
        """``("drop", 0)``, ``("delay", s)`` or ``None`` for request N.

        String-seeded per index (SHA-512 seeding, like
        :meth:`RetryPolicy.delay <repro.resilience.pool.RetryPolicy>`),
        so the same plan replays the same faults in any process.
        """
        rng = random.Random(f"serve-chaos:{self.seed}:{index}")
        roll = rng.random()
        if roll < self.drop_prob:
            return ("drop", 0.0)
        if roll < self.drop_prob + self.delay_prob:
            return ("delay", self.delay)
        return None


#: fast, kind-diverse workload for the drill (all finish in seconds)
DEFAULT_DRILL_JOBS: Tuple[Tuple[str, dict], ...] = (
    ("synthesize", {"workload": "gcd", "level": "gt+lt"}),
    ("synthesize", {"workload": "gcd", "level": "unoptimized"}),
    ("verify", {"workload": "gcd", "runs": 2, "seed": 7}),
    ("synthesize", {"workload": "fir", "level": "gt"}),
)


def _result_text(job: dict) -> str:
    return canonical_json(job.get("result"))


def chaos_drill(
    workdir: Union[str, Path],
    seed: int = 0,
    executor: str = "thread",
    jobs: Sequence[Tuple[str, dict]] = DEFAULT_DRILL_JOBS,
    drop_prob: float = 0.15,
    delay_prob: float = 0.2,
    crash_sleep: float = 1.2,
) -> Dict[str, object]:
    """Run the acceptance drill; returns a report with pass/fail checks.

    ``executor="thread"`` exercises the raise-once fault (in-process
    pools must survive); ``"process"`` upgrades it to a genuine worker
    kill (``os._exit`` → ``BrokenProcessPool`` → rebuild + retry).
    """
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    jobs = list(jobs)
    if len(jobs) < 3:
        raise ValueError("the drill needs at least three distinct jobs")
    policy = RetryPolicy(max_retries=3, base_delay=0.02, max_delay=0.2, seed=seed)

    # ------------------------------------------------------------------
    # phase 1: fault-free baseline
    # ------------------------------------------------------------------
    baseline: Dict[str, str] = {}
    keys: List[str] = []
    config = ServerConfig(workers=2, executor=executor, policy=policy)
    with ServerHarness(workdir / "baseline.sqlite3", config) as harness:
        client = harness.client()
        for kind, params in jobs:
            key = job_key(kind, canonical_params(kind, params))
            keys.append(key)
            job = client.run(kind, params, client="baseline", timeout=120.0)
            if job["state"] != "DONE":
                raise RuntimeError(
                    f"baseline {kind} job failed: {job['state']} {job['error']}"
                )
            baseline[key] = _result_text(job)

    # ------------------------------------------------------------------
    # phase 2: the same jobs under fire
    # ------------------------------------------------------------------
    store_path = workdir / "chaos.sqlite3"
    plan = ServeFaultPlan(
        seed=seed, drop_prob=drop_prob, delay_prob=delay_prob
    )
    die_mode = "kill_once" if executor == "process" else "raise_once"
    marker = workdir / f"chaos-{die_mode}.marker"
    chaos_config = ServerConfig(
        workers=2, executor=executor, policy=policy, chaos=plan
    )

    # 2a: submit the crash victim (held in the worker by a sleep),
    # wait until it is genuinely RUNNING, then kill the server cold
    harness = ServerHarness(store_path, chaos_config).start()
    client = harness.client()
    victim_kind, victim_params = jobs[0]
    victim = client.submit(
        victim_kind,
        dict(victim_params, _chaos={"sleep": crash_sleep}),
        client="drill",
    )
    victim_id = victim["job_id"]
    import time as _time

    deadline = _time.monotonic() + 30.0
    while _time.monotonic() < deadline:
        current = client.job(victim_id)
        if current is not None and current["state"] == "RUNNING":
            break
        _time.sleep(0.02)
    else:
        harness.crash()
        raise RuntimeError("crash victim never reached RUNNING")
    harness.crash()
    crashed_store = JobStore(store_path)
    state_after_crash = crashed_store.get(victim_id).state
    crashed_store.close()

    # 2b: restart on the same store; the victim must be recovered and
    # re-executed to the byte-identical baseline result
    harness = ServerHarness(store_path, chaos_config).start()
    client = harness.client()
    recovered_jobs = harness.server.recovered_jobs

    # the rest of the workload: one job that dies once mid-execution
    # (retried under the policy budget), the others plain — plus three
    # duplicate submissions to exercise coalescing under dropped
    # connections
    submitted_ids = {victim_id}
    for index, (kind, params) in enumerate(jobs[1:], start=1):
        run_params = dict(params)
        if index == 1:
            run_params["_chaos"] = {die_mode: str(marker)}
        job = client.submit(kind, run_params, client="drill")
        submitted_ids.add(job["job_id"])
    for __ in range(3):
        duplicate = client.submit(jobs[2][0], dict(jobs[2][1]), client="drill")
        submitted_ids.add(duplicate["job_id"])

    finals: Dict[str, dict] = {}
    for job_id in sorted(submitted_ids):
        finals[job_id] = client.wait(job_id, timeout=180.0)
    stats_mid = client.stats()
    harness.stop(drain=True)

    # 2c: scribble over one cached result row, restart, resubmit — the
    # store must quarantine the torn row and recompute identically
    corrupt_key = keys[2]
    store = JobStore(store_path)
    store.corrupt_result_row(corrupt_key)
    store.close()
    harness = ServerHarness(store_path, chaos_config).start()
    client = harness.client()
    healed = client.run(jobs[2][0], dict(jobs[2][1]), client="drill", timeout=120.0)
    stats_final = client.stats()
    harness.stop(drain=True)

    # ------------------------------------------------------------------
    # verdicts
    # ------------------------------------------------------------------
    checks: List[Dict[str, object]] = []

    def check(name: str, ok: bool, detail: str = "") -> None:
        checks.append({"name": name, "ok": bool(ok), "detail": detail})

    check(
        "crash leaves the job durable (RUNNING on disk)",
        state_after_crash == "RUNNING",
        f"state after crash: {state_after_crash}",
    )
    check(
        "restart recovers the in-flight job",
        recovered_jobs >= 1,
        f"recovered_jobs={recovered_jobs}",
    )
    check(
        "no job lost: every submission reached a terminal state",
        all(job["state"] in ("DONE", "FAILED", "TIMED_OUT") for job in finals.values()),
        str({job_id: job["state"] for job_id, job in finals.items()}),
    )
    check(
        "every job DONE (chaos never changed outcomes)",
        all(job["state"] == "DONE" for job in finals.values()),
        str({job_id: job["state"] for job_id, job in finals.items()}),
    )
    by_key = {job["key"]: job for job in finals.values()}
    mismatched = [
        key
        for key in keys
        if key in by_key and _result_text(by_key[key]) != baseline[key]
    ]
    check(
        "resumed + retried results byte-identical to fault-free run",
        not mismatched,
        f"mismatched keys: {mismatched}" if mismatched else "all equal",
    )
    counters = stats_final["store"]
    check(
        "no double execution (no late result was ever applied)",
        counters.get("ignored_results", 0) == 0,
        f"ignored_results={counters.get('ignored_results')}",
    )
    check(
        "worker death was retried under the policy budget",
        counters.get("retries", 0) >= 1 and marker.exists(),
        f"retries={counters.get('retries')}, marker={marker.exists()}",
    )
    check(
        "duplicate submissions were deduplicated",
        counters.get("dedup_hits", 0) >= 3,
        f"dedup_hits={counters.get('dedup_hits')}",
    )
    check(
        "torn result row quarantined and recomputed identically",
        counters.get("quarantined_rows", 0) >= 1
        and healed["state"] == "DONE"
        and _result_text(healed) == baseline[corrupt_key],
        f"quarantined_rows={counters.get('quarantined_rows')}, "
        f"healed={healed['state']}",
    )
    check(
        "store settled (nothing queued or running at the end)",
        counters["states"]["SUBMITTED"] == 0 and counters["states"]["RUNNING"] == 0,
        str(counters["states"]),
    )

    return {
        "ok": all(entry["ok"] for entry in checks),
        "checks": checks,
        "counters": counters,
        "requests_dropped": stats_final["server"]["dropped_connections"]
        + stats_mid["server"]["dropped_connections"],
        "executor": executor,
        "seed": seed,
        "jobs": len(jobs),
    }


def format_drill_report(report: Dict[str, object]) -> str:
    lines = [
        f"chaos drill: {'PASS' if report['ok'] else 'FAIL'} "
        f"(executor={report['executor']}, seed={report['seed']}, "
        f"{report['jobs']} jobs, "
        f"{report['requests_dropped']} connections dropped)"
    ]
    for entry in report["checks"]:
        mark = "ok " if entry["ok"] else "FAIL"
        lines.append(f"  [{mark}] {entry['name']}")
        if entry["detail"] and not entry["ok"]:
            lines.append(f"         {entry['detail']}")
    return "\n".join(lines)
