"""Synthesis-as-a-service: the crash-safe async job server.

``repro serve`` turns the pipeline into a durable HTTP/JSON service:
submissions are content-addressed and deduplicated, every lifecycle
transition is one committed SQLite-WAL transaction, workers retry
transient deaths under a jittered budget, admission control sheds
overload with ``429``, and a ``kill -9`` at any instant resumes
exactly on restart.  See ``DESIGN.md`` §18 for the architecture and
:mod:`repro.serve.chaos` for the drill that pins the guarantees down.
"""

from repro.serve.client import ServeClient, ServeUnavailable
from repro.serve.harness import ServerHarness
from repro.serve.jobs import (
    DONE,
    FAILED,
    JOB_KINDS,
    RUNNING,
    SUBMITTED,
    TERMINAL_STATES,
    TIMED_OUT,
    Job,
    canonical_params,
    classify_failure,
    execute_job,
    job_key,
)
from repro.serve.runner import JobRunner
from repro.serve.server import JobServer, ServerConfig, serve_forever
from repro.serve.store import JobStore

__all__ = [
    "DONE",
    "FAILED",
    "JOB_KINDS",
    "Job",
    "JobRunner",
    "JobServer",
    "JobStore",
    "RUNNING",
    "SUBMITTED",
    "ServeClient",
    "ServeUnavailable",
    "ServerConfig",
    "ServerHarness",
    "TERMINAL_STATES",
    "TIMED_OUT",
    "canonical_params",
    "classify_failure",
    "execute_job",
    "job_key",
    "serve_forever",
]
